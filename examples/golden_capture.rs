//! Prints the pinned report fields used by `tests/engine_equivalence.rs`.
//!
//! Run on a known-good tree to regenerate the golden table:
//!
//! ```text
//! cargo run --release --example golden_capture
//! ```

use acic_sim::{functional, IcacheOrg, SimConfig, Simulator};
use acic_trace::TraceSource;
use acic_workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};

fn orgs() -> Vec<(&'static str, IcacheOrg)> {
    vec![
        ("lru", IcacheOrg::Lru),
        ("srrip", IcacheOrg::Srrip),
        ("acic", IcacheOrg::acic_default()),
    ]
}

fn run_one<W: TraceSource>(tag: &str, wl: &W) {
    for (name, org) in orgs() {
        let r = Simulator::run(&SimConfig::default().with_org(org.clone()), wl);
        println!(
            "(\"{tag}/{name}/timing\", [{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}]),",
            r.total_instructions,
            r.total_cycles,
            r.measured_instructions,
            r.measured_cycles,
            r.l1i.demand_accesses,
            r.l1i.demand_misses,
            r.l1i.demand_fills,
            r.l1i.evictions,
            r.branch.mispredicts,
            r.prefetch.issued,
            r.dram_accesses,
            r.context_switches,
            r.acic.map_or(0, |a| a.decisions),
        );
        let f = functional::run_functional(&org, wl);
        println!(
            "(\"{tag}/{name}/functional\", [{}, {}, {}, {}, {}, {}, 0, 0, 0, 0, 0, {}, {}]),",
            f.instructions,
            f.accesses,
            0,
            0,
            f.l1i.demand_accesses,
            f.l1i.demand_misses,
            f.context_switches,
            f.acic.map_or(0, |a| a.decisions),
        );
    }
}

fn main() {
    let single = SyntheticWorkload::with_instructions(AppProfile::web_search(), 200_000);
    run_one("1ten", &single);
    let multi = MultiTenantWorkload::new(10_000)
        .tenant(AppProfile::web_search(), 50_000)
        .tenant(AppProfile::tpc_c(), 50_000)
        .tenant(AppProfile::media_streaming(), 50_000)
        .tenant(AppProfile::data_serving(), 50_000)
        .build();
    run_one("4ten", &multi);
}

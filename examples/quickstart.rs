//! Quickstart: simulate one datacenter workload under the baseline
//! LRU i-cache and under ACIC, and compare.
//!
//! Run: `cargo run --release --example quickstart`

use acic_sim::{IcacheOrg, SimConfig, Simulator};
use acic_workloads::{AppProfile, SyntheticWorkload};

fn main() {
    // 1. Pick a workload profile (the paper's media-streaming-like
    //    application) and generate a deterministic 1M-instruction
    //    synthetic trace.
    let workload = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 1_000_000);
    println!(
        "workload: {} ({} code blocks, {} request types)",
        workload.profile().name,
        workload.program().code_blocks(),
        workload.program().types.len(),
    );

    // 2. Simulate the Table-II core with the LRU baseline (FDP
    //    prefetching on, as in the paper's baseline platform).
    let baseline_cfg = SimConfig::default();
    let baseline = Simulator::run(&baseline_cfg, &workload);
    println!(
        "baseline LRU : {:>8} cycles, IPC {:.3}, L1i MPKI {:.2}",
        baseline.measured_cycles,
        baseline.ipc(),
        baseline.l1i_mpki()
    );

    // 3. Same core, but the L1i is ACIC: a 16-entry i-Filter plus the
    //    two-level admission predictor and CSHR (Table I parameters).
    let acic_cfg = baseline_cfg.with_org(IcacheOrg::acic_default());
    let acic = Simulator::run(&acic_cfg, &workload);
    let stats = acic.acic.expect("ACIC organization reports its stats");
    println!(
        "ACIC         : {:>8} cycles, IPC {:.3}, L1i MPKI {:.2}",
        acic.measured_cycles,
        acic.ipc(),
        acic.l1i_mpki()
    );

    // 4. The headline numbers.
    println!(
        "speedup {:.4}, MPKI reduction {:.1}%, i-Filter victims admitted {:.0}%",
        acic.speedup_over(&baseline),
        acic.mpki_reduction_over(&baseline) * 100.0,
        stats.admit_fraction() * 100.0,
    );

    // 5. And the theoretical ceiling: Belady's OPT via the two-pass
    //    reuse oracle.
    let opt = Simulator::run(&baseline_cfg.with_org(IcacheOrg::Opt), &workload);
    println!(
        "OPT ceiling  : speedup {:.4}, MPKI reduction {:.1}%",
        opt.speedup_over(&baseline),
        opt.mpki_reduction_over(&baseline) * 100.0,
    );
}

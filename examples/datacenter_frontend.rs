//! The paper's §II motivation study, reproduced on the synthetic
//! datacenter suite: reuse-distance distributions (Figure 1a) and the
//! burstiness Markov chain (Figure 1b).
//!
//! Run: `cargo run --release --example datacenter_frontend`

use acic_trace::{BlockRuns, MarkovChain, ReuseBucket, StackDistanceAnalyzer, TraceSource};
use acic_workloads::{AppProfile, SyntheticWorkload};

fn main() {
    println!("Reuse-distance distribution per application (Figure 1a):\n");
    print!("{:<16}", "application");
    for b in ReuseBucket::ALL {
        print!(" {:>11}", b.label());
    }
    println!();
    for profile in AppProfile::datacenter_suite() {
        let wl = SyntheticWorkload::with_instructions(profile, 500_000);
        let blocks: Vec<_> = wl.iter().map(|i| i.pc().block()).collect();
        let fractions = StackDistanceAnalyzer::histogram(&blocks).fractions();
        print!("{:<16}", wl.name());
        for b in ReuseBucket::ALL {
            print!(" {:>10.2}%", fractions[b as usize] * 100.0);
        }
        println!();
    }

    // Figure 1b: burstiness as a Markov chain over distance ranges,
    // at block-access granularity, for media streaming.
    println!("\nMarkov chain of successive reuse distances, media streaming (Figure 1b):\n");
    let wl = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 500_000);
    let seq: Vec<_> = BlockRuns::new(wl.iter()).map(|r| r.block).collect();
    let chain = MarkovChain::from_sequence(&seq);
    print!("{:<12}", "from \\ to");
    for to in ReuseBucket::ALL {
        print!(" {:>11}", to.label());
    }
    println!();
    for from in ReuseBucket::ALL {
        print!("{:<12}", from.label());
        for to in ReuseBucket::ALL {
            print!(" {:>11.3}", chain.transition_probability(from, to));
        }
        println!();
    }
    println!(
        "\nThe heavy diagonal/first-column mass is the paper's \"burstiness\": once a\n\
         block is referenced it keeps being referenced, then jumps to a long gap."
    );
}

//! Build a custom application profile and watch ACIC adapt to it.
//!
//! Two synthetic services share one machine shape but differ in
//! request-type skew: the "spiky" service has a few dominant request
//! types (whose code deserves i-cache residency), while the "flat"
//! service spreads requests evenly (little worth retaining). ACIC's
//! admit rate and benefit should differ accordingly — the dynamic
//! adaptation argument of the paper's Figure 13.
//!
//! Run: `cargo run --release --example custom_workload`

use acic_sim::{IcacheOrg, SimConfig, Simulator};
use acic_workloads::{AppProfile, SyntheticWorkload};

fn service(name: &str, type_skew: f64, seed: u64) -> AppProfile {
    AppProfile {
        name: name.to_string(),
        seed,
        type_skew,
        warm_fns: 130,
        request_types: 20,
        fanout: 7,
        cold_visit_prob: 0.3,
        ..AppProfile::media_streaming()
    }
}

fn main() {
    let cfg = SimConfig::default();
    for profile in [
        service("spiky-service", 1.0, 0xc0ffee),
        service("flat-service", 0.05, 0xc0ffef),
    ] {
        let workload = SyntheticWorkload::with_instructions(profile, 1_000_000);
        let baseline = Simulator::run(&cfg, &workload);
        let acic = Simulator::run(&cfg.with_org(IcacheOrg::acic_default()), &workload);
        let stats = acic.acic.expect("ACIC stats");
        println!(
            "{:<14} baseline MPKI {:>5.2} | ACIC MPKI {:>5.2} ({:+.1}%) | victims admitted {:>5.1}% | decisions {}",
            workload.profile().name,
            baseline.l1i_mpki(),
            acic.l1i_mpki(),
            acic.mpki_reduction_over(&baseline) * -100.0,
            stats.admit_fraction() * 100.0,
            stats.decisions,
        );
    }
    println!(
        "\nACIC filters harder where request popularity is skewed — the static\n\
         insert-always policy cannot make that distinction (paper §IV-G)."
    );
}

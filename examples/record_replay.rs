//! Record/replay: freeze a workload into a packed `.acictrace`
//! container, replay it from disk, and confirm the replayed run is
//! bit-identical to the generator-backed run.
//!
//! This is the workflow behind `experiments --record-traces <dir>` /
//! `--traces <dir>`: a trace is generated (or captured elsewhere)
//! once, frozen into the compact packed format, and every later
//! experiment replays the container instead of re-running the
//! generator.
//!
//! Run: `cargo run --release --example record_replay`

use acic_sim::{IcacheOrg, SimConfig, Simulator};
use acic_trace::{PackedTrace, TraceSource};
use acic_workloads::{AppProfile, WorkloadSpec};

fn main() {
    let instructions = 500_000u64;

    // 1. Freeze a 2-tenant interleave once. The packed form keeps the
    //    full instruction stream — ASID switch boundaries included —
    //    at a few bytes per 24-byte `Instr` record.
    let spec = WorkloadSpec::MultiTenant {
        profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
        quantum: 20_000,
    };
    let frozen = spec.materialize(instructions);
    println!(
        "frozen '{}': {} instructions, {:.2} B/instr ({} KiB packed vs {} KiB as Instr records)",
        frozen.name(),
        frozen.len(),
        frozen.bytes_per_instr(),
        frozen.payload_bytes() / 1024,
        frozen.len() * 24 / 1024,
    );

    // 2. Record it as a versioned, checksummed container.
    let path = std::env::temp_dir().join("record_replay_demo.acictrace");
    frozen.write_to(&path).expect("write container");
    println!("recorded to {}", path.display());

    // 3. Replay from disk. A corrupt or truncated container would be
    //    rejected here instead of silently skewing results.
    let replayed = PackedTrace::read_from(&path).expect("container validates");
    assert_eq!(replayed, frozen);

    // 4. Same simulation, two sources: the live generator and the
    //    replayed container. The reports must match bit for bit —
    //    replay carries the workload name, so even the seeded
    //    components initialize identically.
    let cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
    let from_generator = Simulator::run(&cfg, &spec.generator(instructions));
    let from_replay = Simulator::run(&cfg, &replayed);
    assert_eq!(format!("{from_generator:?}"), format!("{from_replay:?}"));
    println!(
        "replay bit-identical: {} cycles, IPC {:.3}, L1i MPKI {:.2}, {} context switches",
        from_replay.total_cycles,
        from_replay.ipc(),
        from_replay.l1i_mpki(),
        from_replay.context_switches,
    );

    std::fs::remove_file(&path).ok();
}

//! Policy shootout: run every i-cache organization the paper compares
//! (Figure 10's legend) on one application and rank them.
//!
//! Run: `cargo run --release --example policy_shootout [app-name]`

use acic_sim::{IcacheOrg, SimConfig, Simulator};
use acic_workloads::{AppProfile, SyntheticWorkload};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data-caching".to_string());
    let profile = AppProfile::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown app {name:?}; using data-caching");
        AppProfile::data_caching()
    });
    let workload = SyntheticWorkload::with_instructions(profile, 1_000_000);

    let cfg = SimConfig::default();
    let baseline = Simulator::run(&cfg, &workload);
    println!(
        "{}: baseline LRU+FDP MPKI {:.2}, IPC {:.3}\n",
        workload.profile().name,
        baseline.l1i_mpki(),
        baseline.ipc()
    );

    let mut results = Vec::new();
    for org in IcacheOrg::figure10_set() {
        let report = Simulator::run(&cfg.with_org(org.clone()), &workload);
        results.push((
            org.label(),
            report.speedup_over(&baseline),
            report.mpki_reduction_over(&baseline),
        ));
    }
    results.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!(
        "{:<24} {:>8} {:>14}",
        "organization", "speedup", "MPKI reduction"
    );
    for (label, speedup, reduction) in results {
        println!("{label:<24} {speedup:>8.4} {:>13.1}%", reduction * 100.0);
    }
}

//! Umbrella crate for the ACIC (HPCA 2023) reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests
//! can reach the whole system through one dependency:
//!
//! * [`types`] — addresses, counters, histories, LRU stamps, hashing.
//! * [`trace`] — instruction traces, stack distances, the Belady
//!   oracle.
//! * [`workloads`] — the synthetic datacenter/SPEC workload generator.
//! * [`cache`] — caches, replacement/bypass policies, victim caches.
//! * [`core`] — ACIC itself: i-Filter, HRT/PT predictor, CSHR.
//! * [`sim`] — the trace-driven cycle-level CPU simulator.
//! * [`energy`] — storage and chip-energy accounting.
//! * [`bench`] — the experiment harness behind every figure/table.
//!
//! See README.md for a tour and DESIGN.md for the system inventory.

pub use acic_bench as bench;
pub use acic_cache as cache;
pub use acic_core as core;
pub use acic_energy as energy;
pub use acic_sim as sim;
pub use acic_trace as trace;
pub use acic_types as types;
pub use acic_workloads as workloads;

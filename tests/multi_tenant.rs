//! Multi-tenant / ASID integration tests.
//!
//! The load-bearing guarantee of the ASID refactor is that the
//! single-tenant hot path is **unchanged**: a 1-tenant
//! `InterleavedTrace` must produce bit-identical reports and stats to
//! driving the child trace directly, for every execution path. The
//! property tests here pin that down across quanta and budgets for
//! LRU, SRRIP and ACIC, plus the timing simulator; the remaining
//! tests exercise the genuinely multi-tenant semantics (aliasing,
//! flush-on-switch, tagged survival).

use acic_repro::sim::functional::{run_functional, FunctionalReport};
use acic_repro::sim::{BranchSwitchMode, IcacheOrg, PrefetcherKind, SimConfig, Simulator};
use acic_repro::trace::{InterleavedTrace, TraceSource, VecTrace};
use acic_repro::workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};
use proptest::prelude::*;

/// The workload and its 1-tenant interleaved twin. The twin borrows
/// the child's *name* so every derived seed matches too.
fn solo_pair(
    profile: AppProfile,
    n: u64,
) -> (SyntheticWorkload, InterleavedTrace<SyntheticWorkload>) {
    let direct = SyntheticWorkload::with_instructions(profile.clone(), n);
    let name = direct.name().to_string();
    let child = SyntheticWorkload::with_instructions(profile, n);
    (
        direct,
        InterleavedTrace::with_name(vec![child], 1_000, name),
    )
}

fn assert_reports_identical(a: &FunctionalReport, b: &FunctionalReport) {
    assert_eq!(a.app, b.app);
    assert_eq!(a.org, b.org);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.l1i, b.l1i, "cache stats must be bit-identical");
    assert_eq!(b.context_switches, 0, "1 tenant never switches");
    match (&a.acic, &b.acic) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.decisions, y.decisions);
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.bypassed, y.bypassed);
            assert_eq!(x.free_admissions, y.free_admissions);
            assert_eq!(x.insert_delta, y.insert_delta);
        }
        _ => panic!("ACIC stats presence must match"),
    }
}

proptest! {
    /// The refactor's no-regression guard: a 1-tenant interleave is
    /// bit-identical to the untagged single-trace path for LRU, SRRIP
    /// and ACIC, whatever the quantum or budget.
    #[test]
    fn one_tenant_interleave_is_bit_identical_functional(
        n in 10_000u64..30_000,
        quantum in 1u64..5_000,
        org_idx in 0usize..3,
    ) {
        let org = [IcacheOrg::Lru, IcacheOrg::Srrip, IcacheOrg::acic_default()][org_idx].clone();
        let direct = SyntheticWorkload::with_instructions(AppProfile::web_search(), n);
        let name = direct.name().to_string();
        let child = SyntheticWorkload::with_instructions(AppProfile::web_search(), n);
        let mt = InterleavedTrace::with_name(vec![child], quantum, name);
        let a = run_functional(&org, &direct);
        let b = run_functional(&org, &mt);
        assert_reports_identical(&a, &b);
    }
}

#[test]
fn one_tenant_interleave_matches_for_every_scenario_org() {
    // The three organizations of the multi_tenant figure, including
    // the flush-on-switch baseline: with one tenant there are no
    // switches, so even LruFlush must match plain behavior.
    for org in [
        IcacheOrg::Lru,
        IcacheOrg::LruFlush,
        IcacheOrg::Srrip,
        IcacheOrg::acic_default(),
    ] {
        let (direct, mt) = solo_pair(AppProfile::tpc_c(), 40_000);
        let a = run_functional(&org, &direct);
        let b = run_functional(&org, &mt);
        assert_eq!(a.l1i, b.l1i, "org {:?}", org);
        assert_eq!(a.accesses, b.accesses, "org {:?}", org);
    }
    // LruFlush and Lru are themselves identical single-tenant.
    let (direct, _) = solo_pair(AppProfile::tpc_c(), 40_000);
    let flush = run_functional(&IcacheOrg::LruFlush, &direct);
    let plain = run_functional(&IcacheOrg::Lru, &direct);
    assert_eq!(flush.l1i.demand_misses, plain.l1i.demand_misses);
}

#[test]
fn one_tenant_interleave_is_identical_in_the_timing_simulator() {
    let cfg = SimConfig::default();
    for org in [IcacheOrg::Lru, IcacheOrg::acic_default()] {
        let (direct, mt) = solo_pair(AppProfile::web_search(), 30_000);
        let a = Simulator::run(&cfg.with_org(org.clone()), &direct);
        let b = Simulator::run(&cfg.with_org(org.clone()), &mt);
        assert_eq!(a.total_cycles, b.total_cycles, "org {:?}", org);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
        assert_eq!(a.branch.mispredicts, b.branch.mispredicts);
        assert_eq!(b.context_switches, 0);
    }
}

#[test]
fn tenants_at_identical_virtual_addresses_do_not_alias() {
    // Two tenants running the *same instruction stream*: every PC
    // coincides, so an untagged cache would let tenant 1 free-ride on
    // tenant 0's fills. With ASID tags each must miss on its own.
    let instrs: Vec<_> = SyntheticWorkload::with_instructions(AppProfile::sibench(), 5_000)
        .iter()
        .collect();
    let t0 = VecTrace::with_name(instrs.clone(), "clone-a");
    let t1 = VecTrace::with_name(instrs, "clone-b");
    // One giant quantum: tenant 0 runs fully, then tenant 1.
    let mt = InterleavedTrace::new(vec![t0.clone(), t1], 5_000);
    let solo = run_functional(&IcacheOrg::Lru, &t0);
    let both = run_functional(&IcacheOrg::Lru, &mt);
    assert_eq!(both.context_switches, 1);
    assert!(
        both.l1i.demand_misses >= 2 * solo.l1i.demand_misses,
        "tenant 1 must take its own cold misses ({} vs 2*{})",
        both.l1i.demand_misses,
        solo.l1i.demand_misses
    );
}

#[test]
fn flush_on_switch_misses_at_least_as_much_as_asid_tagged() {
    let build = || {
        MultiTenantWorkload::new(5_000)
            .suite_tenants(3, 30_000)
            .build()
    };
    let flush = run_functional(&IcacheOrg::LruFlush, &build());
    let tagged = run_functional(&IcacheOrg::Lru, &build());
    assert_eq!(flush.context_switches, tagged.context_switches);
    assert!(flush.context_switches > 0, "multi-tenant must switch");
    assert!(
        flush.l1i.demand_misses >= tagged.l1i.demand_misses,
        "flushing every switch cannot beat ASID tags ({} vs {})",
        flush.l1i.demand_misses,
        tagged.l1i.demand_misses
    );
    assert!(
        flush.l1i.flushed_lines > 0,
        "flushes must actually drop lines"
    );
    assert_eq!(tagged.l1i.flushed_lines, 0);
}

#[test]
fn timing_simulator_counts_switches_and_survives_multi_tenant() {
    let wl = MultiTenantWorkload::new(4_000)
        .suite_tenants(2, 12_000)
        .build();
    let expected_switches = {
        // Quanta boundaries where the ASID actually changes.
        let mut prev = None;
        let mut n = 0u64;
        for i in wl.iter() {
            if prev.is_some_and(|p| p != i.asid()) {
                n += 1;
            }
            prev = Some(i.asid());
        }
        n
    };
    for org in [
        IcacheOrg::LruFlush,
        IcacheOrg::Lru,
        IcacheOrg::acic_default(),
    ] {
        let cfg = SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        }
        .with_org(org.clone());
        let r = Simulator::run(&cfg, &wl);
        assert_eq!(r.total_instructions, 24_000, "org {:?}", org);
        assert_eq!(r.context_switches, expected_switches, "org {:?}", org);
        assert!(r.ipc() > 0.01, "org {:?}", org);
    }
}

#[test]
fn composed_len_hint_contract_is_exact() {
    // TraceSource contract: composed sources report exact hints when
    // all children do; the simulator's cycle bound and warm-up window
    // depend on it.
    let wl = MultiTenantWorkload::new(1_000)
        .suite_tenants(4, 5_000)
        .build();
    assert_eq!(wl.len_hint(), Some(20_000));
    assert_eq!(wl.iter().count(), 20_000);
    // And reset semantics: a second pass replays the first exactly.
    let a: Vec<_> = wl.iter().collect();
    let b: Vec<_> = wl.iter().collect();
    assert_eq!(a, b);
}

#[test]
fn branch_tag_mode_is_identity_single_tenant_and_runs_multi_tenant() {
    // Single tenant: no switches ever happen and ASID 0 XOR-tags to
    // the raw PC, so Flush and Tag must be bit-identical.
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 25_000);
    let flush = Simulator::run(&SimConfig::default(), &wl);
    let tag = Simulator::run(
        &SimConfig::default().with_branch_switch(BranchSwitchMode::Tag),
        &wl,
    );
    assert_eq!(flush.total_cycles, tag.total_cycles);
    assert_eq!(flush.branch.mispredicts, tag.branch.mispredicts);
    assert_eq!(flush.branch.btb.misses, tag.branch.btb.misses);

    // Multi-tenant: Tag mode keeps predictor state across switches —
    // it must run deterministically, observe the same switch count,
    // and (state surviving) never look up colder BTB state than the
    // flushing configuration.
    let build = || {
        MultiTenantWorkload::new(3_000)
            .suite_tenants(2, 10_000)
            .build()
    };
    let cfg_tag = SimConfig::default().with_branch_switch(BranchSwitchMode::Tag);
    let a = Simulator::run(&cfg_tag, &build());
    let b = Simulator::run(&cfg_tag, &build());
    assert_eq!(
        a.total_cycles, b.total_cycles,
        "Tag mode must be deterministic"
    );
    let f = Simulator::run(&SimConfig::default(), &build());
    assert_eq!(a.context_switches, f.context_switches);
    assert!(a.context_switches > 0);
    assert!(
        a.branch.btb.misses <= f.branch.btb.misses,
        "tagged BTB state survives switches ({} vs {} misses)",
        a.branch.btb.misses,
        f.branch.btb.misses
    );
}

#[test]
fn frozen_multi_tenant_replay_is_bit_identical_in_both_simulators() {
    // The trace-freeze refactor's multi-tenant guarantee: packing an
    // interleaved stream (explicit ASID-switch records, remainder-
    // exact budget split) and replaying it produces bit-identical
    // reports to driving the live interleaver, functional and timing,
    // for an ASID-sensitive organization.
    use acic_repro::trace::PackedTrace;
    use acic_repro::workloads::WorkloadSpec;

    // 25_001 over 2 tenants exercises the remainder distribution.
    let n = 25_001u64;
    let spec = WorkloadSpec::MultiTenant {
        profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
        quantum: 3_000,
    };
    let live = spec.generator(n);
    let frozen = spec.materialize(n);
    assert_eq!(frozen.len(), n, "budget split must be remainder-exact");
    assert!(frozen.iter().eq(live.iter()), "stream must round-trip");
    // Disk round-trip included: replay what a recorded file yields.
    let replayed = PackedTrace::from_bytes(&frozen.to_bytes()).expect("container round-trips");

    let org = IcacheOrg::acic_default();
    let f_live = run_functional(&org, &live);
    let f_frozen = run_functional(&org, &replayed);
    assert!(f_live.context_switches > 0, "interleave must switch");
    assert_eq!(f_live.context_switches, f_frozen.context_switches);
    assert_eq!(f_live.accesses, f_frozen.accesses);
    assert_eq!(f_live.l1i, f_frozen.l1i, "cache stats bit-identical");
    let (a, b) = (
        f_live.acic.expect("ACIC stats"),
        f_frozen.acic.expect("ACIC stats"),
    );
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.bypassed, b.bypassed);
    assert_eq!(a.insert_delta, b.insert_delta);

    let cfg = SimConfig::default().with_org(org);
    let t_live = Simulator::run(&cfg, &live);
    let t_frozen = Simulator::run(&cfg, &replayed);
    assert_eq!(format!("{t_live:?}"), format!("{t_frozen:?}"));
}

//! Sampled-engine behavior: schedule mechanics, extrapolation
//! plumbing, and the headline speed/accuracy contract.

use acic_sim::{Engine, IcacheOrg, SampleSchedule, SimConfig, Simulator};
use acic_trace::VecTrace;
use acic_workloads::{AppProfile, SyntheticWorkload};
use std::time::Instant;

fn sampled_cfg(org: IcacheOrg, schedule: SampleSchedule) -> SimConfig {
    SimConfig::default().with_org(org).with_schedule(schedule)
}

#[test]
fn periodic_schedule_reports_sampled_stats() {
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 500_000);
    let r = Engine::run(
        &sampled_cfg(
            IcacheOrg::Lru,
            SampleSchedule::Periodic {
                period: 100_000,
                warmup_len: 20_000,
                detailed_len: 10_000,
            },
        ),
        &wl,
    );
    let s = r.sampled.expect("periodic run extrapolates");
    assert!(s.windows >= 4, "windows = {}", s.windows);
    assert_eq!(r.total_instructions, 500_000, "whole trace consumed");
    assert!(s.detailed_instructions > 0);
    assert!(s.warmup_instructions > 0);
    assert!(s.ipc_mean > 0.0 && s.ipc_mean.is_finite());
    assert!(s.ipc_ci95 >= 0.0 && s.ipc_ci95.is_finite());
    assert!(s.mpki_ci95 >= 0.0 && s.mpki_ci95.is_finite());
    assert!(s.est_total_cycles > 0.0);
    assert!(
        (r.total_cycles as f64 - s.est_total_cycles).abs() <= 1.0,
        "total_cycles holds the rounded extrapolation"
    );
    assert!(r.ipc() > 0.0 && r.l1i_mpki() >= 0.0);
    // The estimators agree with their SampledStats counterparts.
    assert!(
        (r.l1i_mpki() - s.est_total_misses * 1000.0 / r.total_instructions as f64).abs() < 1e-9
    );
}

#[test]
fn sampled_runs_are_deterministic() {
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 600_000);
    let cfg = sampled_cfg(
        IcacheOrg::acic_default(),
        SampleSchedule::Periodic {
            period: 150_000,
            warmup_len: 40_000,
            detailed_len: 15_000,
        },
    );
    let a = Engine::run(&cfg, &wl);
    let b = Engine::run(&cfg, &wl);
    assert_eq!(a.measured_cycles, b.measured_cycles);
    assert_eq!(a.measured_instructions, b.measured_instructions);
    assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    assert_eq!(a.sampled, b.sampled);
}

#[test]
fn tiny_traces_degenerate_to_full_detail() {
    // A trace that cannot fit the initial warmup plus one
    // warmup+detailed window is simulated in full.
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 30_000);
    let full = Engine::run(&SimConfig::default(), &wl);
    let sampled = Engine::run(
        &SimConfig::default().with_schedule(SampleSchedule::default_sampled()),
        &wl,
    );
    assert!(sampled.sampled.is_none(), "degenerated to Full");
    assert_eq!(full.total_cycles, sampled.total_cycles);
    assert_eq!(full.l1i.demand_misses, sampled.l1i.demand_misses);
}

#[test]
fn skip_fast_path_matches_walked_fast_forward() {
    // The same schedule over the same trace must produce identical
    // results whether fast-forward skips O(1) (materialized VecTrace)
    // or generates-and-discards (synthetic source): the skip is
    // position-exact.
    let gen = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 800_000);
    let vec = VecTrace::from_source(&gen);
    let cfg = sampled_cfg(
        IcacheOrg::Lru,
        SampleSchedule::Periodic {
            period: 200_000,
            warmup_len: 50_000,
            detailed_len: 20_000,
        },
    );
    let a = Engine::run(&cfg, &gen);
    let b = Engine::run(&cfg, &vec);
    assert_eq!(a.measured_cycles, b.measured_cycles);
    assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    assert_eq!(a.sampled, b.sampled);
}

#[test]
fn sampled_oracle_org_stays_in_sync() {
    // OPT needs the reuse oracle; sampling must keep the cursor in
    // lockstep (fast-forward walks runs instead of skipping). The
    // run must complete and OPT must stay no worse than LRU.
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 400_000);
    let sched = SampleSchedule::Periodic {
        period: 100_000,
        warmup_len: 30_000,
        detailed_len: 10_000,
    };
    let lru = Engine::run(&sampled_cfg(IcacheOrg::Lru, sched), &wl);
    let opt = Engine::run(&sampled_cfg(IcacheOrg::Opt, sched), &wl);
    assert!(opt.sampled.is_some() && lru.sampled.is_some());
    assert!(
        opt.l1i_mpki() <= lru.l1i_mpki() * 1.05,
        "OPT {} vs LRU {}",
        opt.l1i_mpki(),
        lru.l1i_mpki()
    );
}

#[test]
fn sampled_windows_cover_measured_instruction_budget() {
    // Same workload, different organizations: window boundaries are
    // trace-determined, so measured instruction counts line up and
    // speedup_over stays usable on sampled reports.
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 600_000);
    let sched = SampleSchedule::Periodic {
        period: 150_000,
        warmup_len: 40_000,
        detailed_len: 15_000,
    };
    let lru = Engine::run(&sampled_cfg(IcacheOrg::Lru, sched), &wl);
    let acic = Engine::run(&sampled_cfg(IcacheOrg::acic_default(), sched), &wl);
    // Boundaries are trace-aligned; interior snapshots land at retire
    // granularity, so counts agree closely but not exactly.
    let (a, b) = (lru.measured_instructions, acic.measured_instructions);
    let diff = a.abs_diff(b) as f64 / a.max(b) as f64;
    assert!(diff < 0.01, "windows diverged: {a} vs {b}");
    let s = acic.speedup_over(&lru);
    assert!(s.is_finite() && s > 0.0, "speedup {s}");
}

/// The headline contract (ISSUE 3 acceptance): with the documented
/// default schedule, a 20 M-instruction detailed ACIC cell runs an
/// order of magnitude faster than full detail while staying within 2%
/// on both MPKI and IPC. The same measurement is recorded in
/// `BENCH_baseline.json` (schema v3, `sampled` section) by
/// `throughput_baseline`.
///
/// The accuracy bounds are deterministic (same trace, same schedule →
/// identical simulated results) and asserted strictly at 2%. The
/// wall-clock ratio is host-dependent: across repeated runs on the
/// build host it measures 9.2–11.0× (the detailed-fidelity work
/// itself shrinks 35×; the warm pass is the floor), so the assertion
/// uses an 8× regression floor — far above any plausible noise, low
/// enough not to flake on a loaded machine — while the measured value
/// is printed and recorded in the committed baseline.
///
/// Runs only under `--release` (`cargo test --release`): the
/// wall-clock assertion is meaningless at opt-level 0, and the
/// full-detail leg would take minutes there. Debug builds skip with a
/// note. Scale down via `ACIC_SAMPLED_TEST_INSTRUCTIONS` if needed;
/// the accuracy assertions hold at the default 20 M.
#[test]
fn default_sampled_schedule_hits_10x_within_2pct() {
    if cfg!(debug_assertions) {
        eprintln!("skipping sampled speedup contract: release-only test");
        return;
    }
    let n: u64 = std::env::var("ACIC_SAMPLED_TEST_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000_000);
    // Materialize once: both legs simulate the identical trace and
    // neither pays the generator.
    let wl = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        n,
    ));
    let full_cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
    let sampled_cfg = full_cfg.with_schedule(SampleSchedule::default_sampled());

    let t0 = Instant::now();
    let full = Simulator::run(&full_cfg, &wl);
    let full_secs = t0.elapsed().as_secs_f64();

    // Best-of-2 on the short leg: the wall-clock ratio is the only
    // nondeterministic quantity here, and the minimum is the least
    // noisy estimate of true cost.
    let mut sampled_secs = f64::INFINITY;
    let mut sampled = None;
    for _ in 0..2 {
        let t1 = Instant::now();
        let r = Simulator::run(&sampled_cfg, &wl);
        sampled_secs = sampled_secs.min(t1.elapsed().as_secs_f64());
        sampled = Some(r);
    }
    let sampled = sampled.expect("ran");

    // The window-parallel mode runs a different (independent-window)
    // schedule; its fidelity against full detail is a separate
    // contract, enforced at the same 2% IPC bound. Worker count is
    // pinned bit-identical elsewhere (tests/window_parallel.rs), so
    // one parallel run suffices here.
    let windowed = Engine::run_windowed(&sampled_cfg, &wl, 4);

    let ipc_err = (sampled.ipc() - full.ipc()).abs() / full.ipc();
    let mpki_err = (sampled.l1i_mpki() - full.l1i_mpki()).abs() / full.l1i_mpki();
    let w_ipc_err = (windowed.ipc() - full.ipc()).abs() / full.ipc();
    let w_mpki_err = (windowed.l1i_mpki() - full.l1i_mpki()).abs() / full.l1i_mpki();
    let speedup = full_secs / sampled_secs;
    eprintln!(
        "sampled contract: full {:.2}s ipc {:.4} mpki {:.4} | sampled {:.2}s ipc {:.4} mpki {:.4} \
         | speedup {:.1}x ipc_err {:.2}% mpki_err {:.2}% windows {} \
         | windowed ipc {:.4} mpki {:.4} ipc_err {:.2}% mpki_err {:.2}% windows {}",
        full_secs,
        full.ipc(),
        full.l1i_mpki(),
        sampled_secs,
        sampled.ipc(),
        sampled.l1i_mpki(),
        speedup,
        ipc_err * 100.0,
        mpki_err * 100.0,
        sampled.sampled.map_or(0, |s| s.windows),
        windowed.ipc(),
        windowed.l1i_mpki(),
        w_ipc_err * 100.0,
        w_mpki_err * 100.0,
        windowed.sampled.map_or(0, |s| s.windows),
    );
    assert!(
        ipc_err <= 0.02,
        "IPC error {:.2}% exceeds 2%",
        ipc_err * 100.0
    );
    assert!(
        mpki_err <= 0.02,
        "MPKI error {:.2}% exceeds 2%",
        mpki_err * 100.0
    );
    assert!(
        w_ipc_err <= 0.02,
        "window-parallel IPC error {:.2}% exceeds 2%",
        w_ipc_err * 100.0
    );
    assert!(
        w_mpki_err <= 0.02,
        "window-parallel MPKI error {:.2}% exceeds 2%",
        w_mpki_err * 100.0
    );
    assert!(
        speedup >= 8.0,
        "speedup {speedup:.1}x fell below the 8x regression floor \
         (target ~10x; full {full_secs:.2}s, sampled {sampled_secs:.2}s)"
    );
}

//! The `Full` schedule must be the pre-engine simulator, bit for bit.
//!
//! The golden table below was captured from the tree *before* the
//! engine refactor (commit 450b279's `Simulator::run` / functional
//! loops) via `cargo run --release --example golden_capture`. Every
//! later change to the hot path must keep these numbers byte-stable:
//! a `Full`-schedule engine run and the functional simulator are
//! required to reproduce the original loops exactly, on LRU, SRRIP,
//! and ACIC, single- and 4-tenant, timing and functional.

use acic_sim::{functional, IcacheOrg, SampleSchedule, SimConfig, Simulator};
use acic_trace::TraceSource;
use acic_workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};

/// Pinned report fields, in `golden_capture`'s order:
/// `[total_instructions, total_cycles, measured_instructions,
/// measured_cycles, l1i_demand_accesses, l1i_demand_misses,
/// l1i_demand_fills, l1i_evictions, branch_mispredicts,
/// prefetch_issued, dram_accesses, context_switches,
/// acic_decisions]`. Functional rows reuse the layout with timing
/// fields zeroed and `accesses` in the `total_cycles` slot.
const GOLDEN: &[(&str, [u64; 13])] = &[
    (
        "1ten/lru/timing",
        [
            200000, 270762, 179995, 204920, 17550, 682, 668, 1380, 1194, 2172, 6832, 0, 0,
        ],
    ),
    (
        "1ten/lru/functional",
        [200000, 19538, 0, 0, 19538, 1914, 0, 0, 0, 0, 0, 0, 0],
    ),
    (
        "1ten/srrip/timing",
        [
            200000, 270881, 179995, 205058, 17550, 722, 708, 1424, 1194, 2202, 6832, 0, 0,
        ],
    ),
    (
        "1ten/srrip/functional",
        [200000, 19538, 0, 0, 19538, 1865, 0, 0, 0, 0, 0, 0, 0],
    ),
    (
        "1ten/acic/timing",
        [
            200000, 270839, 179995, 204997, 17550, 716, 702, 0, 1194, 2281, 6832, 0, 1458,
        ],
    ),
    (
        "1ten/acic/functional",
        [200000, 19538, 0, 0, 19538, 1942, 0, 0, 0, 0, 0, 0, 1414],
    ),
    (
        "4ten/lru/timing",
        [
            200000, 489198, 180000, 397436, 17421, 3031, 2991, 4177, 2753, 3555, 11235, 19, 0,
        ],
    ),
    (
        "4ten/lru/functional",
        [200000, 19347, 0, 0, 19347, 4768, 0, 0, 0, 0, 0, 19, 0],
    ),
    (
        "4ten/srrip/timing",
        [
            200000, 489196, 180000, 397410, 17421, 3029, 2990, 4142, 2753, 3489, 11235, 19, 0,
        ],
    ),
    (
        "4ten/srrip/functional",
        [200000, 19347, 0, 0, 19347, 4651, 0, 0, 0, 0, 0, 19, 0],
    ),
    (
        "4ten/acic/timing",
        [
            200000, 489130, 180000, 397368, 17421, 3031, 2992, 0, 2753, 3556, 11235, 19, 4240,
        ],
    ),
    (
        "4ten/acic/functional",
        [200000, 19347, 0, 0, 19347, 4768, 0, 0, 0, 0, 0, 19, 4240],
    ),
];

fn golden(tag: &str) -> [u64; 13] {
    GOLDEN
        .iter()
        .find(|(t, _)| *t == tag)
        .unwrap_or_else(|| panic!("no golden row {tag}"))
        .1
}

fn orgs() -> Vec<(&'static str, IcacheOrg)> {
    vec![
        ("lru", IcacheOrg::Lru),
        ("srrip", IcacheOrg::Srrip),
        ("acic", IcacheOrg::acic_default()),
    ]
}

fn single_tenant() -> SyntheticWorkload {
    SyntheticWorkload::with_instructions(AppProfile::web_search(), 200_000)
}

fn four_tenant() -> impl TraceSource {
    MultiTenantWorkload::new(10_000)
        .tenant(AppProfile::web_search(), 50_000)
        .tenant(AppProfile::tpc_c(), 50_000)
        .tenant(AppProfile::media_streaming(), 50_000)
        .tenant(AppProfile::data_serving(), 50_000)
        .build()
}

fn check_timing<W: TraceSource>(tag: &str, wl: &W, org: IcacheOrg) {
    let g = golden(tag);
    let r = Simulator::run(&SimConfig::default().with_org(org), wl);
    let got = [
        r.total_instructions,
        r.total_cycles,
        r.measured_instructions,
        r.measured_cycles,
        r.l1i.demand_accesses,
        r.l1i.demand_misses,
        r.l1i.demand_fills,
        r.l1i.evictions,
        r.branch.mispredicts,
        r.prefetch.issued,
        r.dram_accesses,
        r.context_switches,
        r.acic.map_or(0, |a| a.decisions),
    ];
    assert_eq!(got, g, "{tag} diverged from the pre-engine simulator");
    assert!(r.sampled.is_none(), "Full runs report no sampled stats");
}

fn check_functional<W: TraceSource>(tag: &str, wl: &W, org: &IcacheOrg) {
    let g = golden(tag);
    let f = functional::run_functional(org, wl);
    let got = [
        f.instructions,
        f.accesses,
        0,
        0,
        f.l1i.demand_accesses,
        f.l1i.demand_misses,
        0,
        0,
        0,
        0,
        0,
        f.context_switches,
        f.acic.map_or(0, |a| a.decisions),
    ];
    assert_eq!(got, g, "{tag} diverged from the pre-engine functional loop");
}

#[test]
fn full_schedule_matches_pre_engine_goldens_single_tenant() {
    let wl = single_tenant();
    for (name, org) in orgs() {
        check_timing(&format!("1ten/{name}/timing"), &wl, org.clone());
        check_functional(&format!("1ten/{name}/functional"), &wl, &org);
    }
}

#[test]
fn full_schedule_matches_pre_engine_goldens_four_tenant() {
    let wl = four_tenant();
    for (name, org) in orgs() {
        check_timing(&format!("4ten/{name}/timing"), &wl, org.clone());
        check_functional(&format!("4ten/{name}/functional"), &wl, &org);
    }
}

#[test]
fn explicit_full_schedule_is_the_default_path() {
    // `schedule: Full` spelled out must be byte-identical to the
    // default config (they are the same variant, but this pins the
    // engine's dispatch, not just the enum).
    let wl = single_tenant();
    let a = Simulator::run(&SimConfig::default(), &wl);
    let b = Simulator::run(
        &SimConfig::default().with_schedule(SampleSchedule::Full),
        &wl,
    );
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    assert_eq!(a.measured_cycles, b.measured_cycles);
}

/// An all-detailed periodic schedule (no fast-forward, no warmup —
/// every instruction simulated in the cycle loop) sees the exact
/// demand-access sequence of a Full run; with the prefetcher off, the
/// contents evolution is a pure function of that sequence, so demand
/// misses and fills must match Full exactly even though the windowed
/// cycle counts differ (pipeline drains at window boundaries).
#[test]
fn all_detailed_schedule_preserves_miss_counts() {
    use acic_sim::PrefetcherKind;
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 60_000);
    for org in [IcacheOrg::Lru, IcacheOrg::Srrip] {
        // warmup_fraction 0 so both runs count every access: the
        // §IV-A exclusion boundary is cycle-based in a Full run but
        // instruction-based in a sampled one, and this test is about
        // the access sequence, not the exclusion bookkeeping.
        let base = SimConfig {
            prefetcher: PrefetcherKind::None,
            warmup_fraction: 0.0,
            ..SimConfig::default()
        }
        .with_org(org);
        let full = Simulator::run(&base, &wl);
        let sampled = Simulator::run(
            &base.with_schedule(SampleSchedule::Periodic {
                period: 10_000,
                warmup_len: 0,
                detailed_len: 10_000,
            }),
            &wl,
        );
        assert_eq!(full.l1i.demand_accesses, sampled.l1i.demand_accesses);
        assert_eq!(full.l1i.demand_misses, sampled.l1i.demand_misses);
        assert_eq!(full.l1i.demand_fills, sampled.l1i.demand_fills);
        assert_eq!(full.total_instructions, sampled.total_instructions);
        assert!(sampled.sampled.is_some());
    }
}

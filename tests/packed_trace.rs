//! Property tests pinning the packed trace format: `VecTrace` ↔
//! `PackedTrace` round-trips bit for bit (including ASID switch
//! boundaries), index-jump `skip` is equivalent to walking, and the
//! on-disk container rejects corruption and truncation at arbitrary
//! offsets.

use acic_repro::trace::{
    BlockRuns, BranchClass, GroupedRuns, Instr, PackedTrace, TraceSource, VecTrace, SKIP_STRIDE,
};
use acic_repro::types::{Addr, Asid};
use proptest::prelude::*;

/// Builds a plausible instruction stream from raw fuzz words: mostly
/// sequential PCs with branch redirects, loads/stores with mixed
/// locality, and ASID switches at fuzz-chosen points.
fn stream_from_words(words: &[u64], switch_mask: u64) -> Vec<Instr> {
    let mut pc = 0x40_0000u64;
    let mut asid = Asid::HOST;
    let mut out = Vec::with_capacity(words.len());
    for (k, &w) in words.iter().enumerate() {
        if switch_mask != 0 && k as u64 % switch_mask == switch_mask - 1 {
            asid = Asid::new((w % 5) as u16);
        }
        let instr = match w % 10 {
            0 | 1 => Instr::load(Addr::new(pc), Addr::new((w >> 8) % (1 << 34))),
            2 => Instr::store(Addr::new(pc), Addr::new((w >> 8) % (1 << 34))),
            3 => Instr::long_alu(Addr::new(pc)),
            4 | 5 => {
                let class = match (w >> 16) % 5 {
                    0 => BranchClass::Conditional,
                    1 => BranchClass::Direct,
                    2 => BranchClass::Call,
                    3 => BranchClass::Return,
                    _ => BranchClass::Indirect,
                };
                Instr::branch(
                    Addr::new(pc),
                    Addr::new((w >> 20) % (1 << 30)),
                    w & 4 != 0,
                    class,
                )
            }
            _ => Instr::alu(Addr::new(pc)),
        };
        pc = instr.next_pc().raw();
        out.push(instr.with_asid(asid));
    }
    out
}

proptest! {
    #[test]
    fn vec_and_packed_traces_are_interchangeable(
        words in proptest::collection::vec(any::<u64>(), 0..600),
        switch_mask in 0u64..40,
    ) {
        let instrs = stream_from_words(&words, switch_mask);
        let vec_trace = VecTrace::with_name(instrs.clone(), "prop");
        let packed = PackedTrace::from_source(&vec_trace);
        prop_assert_eq!(packed.len(), instrs.len() as u64);
        prop_assert_eq!(packed.len_hint(), vec_trace.len_hint());
        // Identical Instr streams, including every ASID boundary.
        let decoded: Vec<Instr> = packed.iter().collect();
        prop_assert_eq!(&decoded, &instrs);
        // And therefore identical run grouping (the unit every cache
        // model consumes) — ASID changes split runs in both.
        let a: Vec<_> = BlockRuns::new(vec_trace.iter()).collect();
        let b: Vec<_> = BlockRuns::new(packed.iter()).collect();
        prop_assert_eq!(a, b);
        // Closing the loop: re-materializing the packed stream into a
        // VecTrace reproduces the original.
        let back: VecTrace = packed.iter().collect();
        prop_assert_eq!(back.iter().collect::<Vec<_>>(), instrs);
    }

    #[test]
    fn skip_then_iter_matches_the_walked_generator_path(
        words in proptest::collection::vec(any::<u64>(), 1..400),
        reps in 1usize..40,
        skip_to in any::<u64>(),
    ) {
        // Tile the fuzz stream so skips regularly cross index-stride
        // boundaries.
        let tile = stream_from_words(&words, 7);
        let instrs: Vec<Instr> = std::iter::repeat_with(|| tile.clone())
            .take(reps)
            .flatten()
            .collect();
        let packed = PackedTrace::from_instrs("skip-prop", instrs.clone());
        let n = skip_to % (instrs.len() as u64 + 10);
        // Index-jump path...
        let mut fast = packed.iter();
        let skipped = PackedTrace::skip(&mut fast, n);
        prop_assert_eq!(skipped, n.min(instrs.len() as u64));
        // ...must land exactly where the element-by-element walk does.
        let walked: Vec<Instr> = instrs.iter().copied().skip(n as usize).collect();
        prop_assert_eq!(fast.collect::<Vec<_>>(), walked);
    }

    #[test]
    fn grouped_runs_skip_hand_off_is_boundary_exact(
        words in proptest::collection::vec(any::<u64>(), 40..400),
        consume in 0u64..40,
        gap in 0u64..6000,
    ) {
        // The engine's fast-forward path: consume some runs, skip a
        // gap through GroupedRuns, resume grouping. The resumed run
        // boundaries must match a plain walk over the same stream.
        let instrs = stream_from_words(&words, 11);
        let tiled: Vec<Instr> = std::iter::repeat_with(|| instrs.clone())
            .take(30)
            .flatten()
            .collect();
        let packed = PackedTrace::from_instrs("ff-prop", tiled.clone());

        let mut runs = GroupedRuns::new(packed.iter());
        let mut consumed = 0u64;
        for _ in 0..consume {
            match runs.next() {
                Some(r) => consumed += r.instrs.len() as u64,
                None => break,
            }
        }
        let dropped = runs.skip_instrs_with(gap, PackedTrace::skip);
        prop_assert!(dropped <= gap);
        let resumed = runs.next();

        let mut slow = GroupedRuns::new(tiled.iter().copied());
        let mut slow_consumed = 0u64;
        while slow_consumed < consumed {
            slow_consumed += slow.next().expect("same stream").instrs.len() as u64;
        }
        let slow_dropped = slow.skip_instrs_with(gap, acic_repro::trace::skip_instrs);
        prop_assert_eq!(dropped, slow_dropped);
        prop_assert_eq!(resumed, slow.next());
    }

    #[test]
    fn container_survives_serialization_and_rejects_bit_flips(
        words in proptest::collection::vec(any::<u64>(), 1..300),
        flip in any::<u64>(),
    ) {
        let instrs = stream_from_words(&words, 13);
        let packed = PackedTrace::from_instrs("disk-prop", instrs);
        let bytes = packed.to_bytes();
        let back = PackedTrace::from_bytes(&bytes).expect("own container parses");
        prop_assert_eq!(&back, &packed);

        // Any single bit flip must be rejected, except inside the
        // stored checksum itself (still a mismatch) — i.e. everywhere.
        let bit = flip % (bytes.len() as u64 * 8);
        let mut corrupt = bytes.clone();
        corrupt[(bit / 8) as usize] ^= 1 << (bit % 8);
        prop_assert!(
            PackedTrace::from_bytes(&corrupt).is_err(),
            "bit flip at {} accepted", bit
        );

        // Any truncation must be rejected.
        let cut = (flip % bytes.len() as u64) as usize;
        prop_assert!(PackedTrace::from_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn skip_strides_are_exercised() {
    // Belt and braces for the property above: make sure the tiled
    // streams actually cross SKIP_STRIDE so the index-jump path runs.
    let tile = stream_from_words(&[1, 12, 23, 34, 45, 56, 67, 78, 89, 90], 3);
    let instrs: Vec<Instr> = std::iter::repeat_with(|| tile.clone())
        .take(2 * SKIP_STRIDE as usize / tile.len() + 2)
        .flatten()
        .collect();
    assert!(instrs.len() as u64 > 2 * SKIP_STRIDE);
    let packed = PackedTrace::from_instrs("stride", instrs.clone());
    let mut it = packed.iter();
    assert_eq!(PackedTrace::skip(&mut it, SKIP_STRIDE + 3), SKIP_STRIDE + 3);
    assert_eq!(it.next(), Some(instrs[SKIP_STRIDE as usize + 3]));
}

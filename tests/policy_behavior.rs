//! Behavioral cross-checks of the compared policies: each prior
//! scheme must exhibit its defining behavior on crafted access
//! patterns (independent of the full simulator).

use acic_repro::cache::policy::PolicyKind;
use acic_repro::cache::victim::vvc::VvcIcache;
use acic_repro::cache::{
    AccessCtx, CacheGeometry, IcacheContents, PlainIcache, SetAssocCache, VictimCachedIcache,
};
use acic_repro::types::BlockAddr;

fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
    AccessCtx::demand(BlockAddr::new(b), i)
}

/// Runs a block sequence through a cache, returning the miss count.
fn misses(kind: PolicyKind, geom: CacheGeometry, seq: &[u64]) -> u64 {
    let mut cache = SetAssocCache::new(geom, kind.build(geom));
    let mut misses = 0;
    for (i, &b) in seq.iter().enumerate() {
        let c = ctx(b, i as u64);
        if !cache.access(&c) {
            misses += 1;
            cache.fill(&c);
        }
    }
    misses
}

#[test]
fn srrip_protects_reused_blocks_from_streams() {
    // The defining RRIP behavior: a re-referenced block (RRPV 0)
    // outlives stream blocks still at their long insertion RRPV,
    // whatever the recency order says. Under LRU the re-referenced
    // block would be evicted here (it is the least recent).
    let geom = CacheGeometry::from_sets_ways(1, 4);
    let mut cache = SetAssocCache::new(geom, PolicyKind::Srrip.build(geom));
    cache.fill(&ctx(0, 0));
    cache.access(&ctx(0, 1)); // promote block 0 to RRPV 0
    for (i, b) in [10u64, 11, 12].iter().enumerate() {
        cache.fill(&ctx(*b, 2 + i as u64));
    }
    // Make block 0 the least recently *touched* line, then stream.
    for (i, b) in [20u64, 21, 22].iter().enumerate() {
        cache.fill(&ctx(*b, 10 + i as u64));
        assert!(
            cache.contains(BlockAddr::new(0)),
            "re-referenced block evicted by stream block {b} (i={i})"
        );
    }
}

#[test]
fn ship_beats_lru_on_cyclic_thrash() {
    // Cyclic reuse over 1.5x the associativity: LRU misses every
    // access; SHiP's signature counters learn the blocks do get
    // re-referenced and distant-insert newcomers, retaining a subset.
    let geom = CacheGeometry::from_sets_ways(1, 4);
    let seq: Vec<u64> = (0..1200).map(|i| i % 6).collect();
    let lru = misses(PolicyKind::Lru, geom, &seq);
    let ship = misses(PolicyKind::Ship, geom, &seq);
    assert_eq!(lru, 1200, "cyclic thrash defeats LRU completely");
    assert!(ship < lru / 2 + 60, "SHiP {ship} vs LRU {lru}");
}

#[test]
fn policies_agree_on_pure_lru_friendly_pattern() {
    // A working set that fits: after the cold pass, nobody misses.
    let geom = CacheGeometry::from_sets_ways(2, 4);
    let seq: Vec<u64> = (0..50)
        .flat_map(|_| (0u64..8).collect::<Vec<_>>())
        .collect();
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Ship,
        PolicyKind::Ghrp,
        PolicyKind::Slru,
    ] {
        let m = misses(kind, geom, &seq);
        assert_eq!(m, 8, "{kind:?} misses on a fitting working set");
    }
}

#[test]
fn victim_cache_rescues_conflict_misses() {
    // Three blocks conflicting in a 2-way set, round-robin: LRU alone
    // misses every access; a victim cache catches the ping-pong.
    let geom = CacheGeometry::from_sets_ways(1, 2);
    let seq: Vec<u64> = (0..120).map(|i| i % 3).collect();

    let mut plain = PlainIcache::new(geom, PolicyKind::Lru);
    let mut plain_misses = 0u64;
    for (i, &b) in seq.iter().enumerate() {
        let c = ctx(b, i as u64);
        if !plain.access(&c).hit {
            plain_misses += 1;
            plain.fill(&c);
        }
    }

    let mut vc = VictimCachedIcache::new(geom, PolicyKind::Lru, 4);
    let mut vc_misses = 0u64;
    for (i, &b) in seq.iter().enumerate() {
        let c = ctx(b, i as u64);
        if !vc.access(&c).hit {
            vc_misses += 1;
            vc.fill(&c);
        }
    }
    assert!(
        vc_misses * 4 < plain_misses,
        "victim cache {vc_misses} vs plain {plain_misses}"
    );
}

#[test]
fn vvc_virtual_hits_cost_extra_latency() {
    // Five blocks conflicting in one home set (2 ways) while the
    // other sets stay idle: evicted victims park in receiver sets and
    // are recovered as slow "virtual hits".
    let geom = CacheGeometry::from_sets_ways(4, 2);
    let mut vvc = VvcIcache::new(geom);
    let mut virtual_hits = 0;
    for i in 0..2000u64 {
        let b = (i % 5) * 4; // blocks 0,4,8,12,16 — all set 0
        let c = ctx(b, i);
        let out = vvc.access(&c);
        if out.hit && out.extra_latency > 0 {
            virtual_hits += 1;
        }
        if !out.hit {
            vvc.fill(&c);
        }
    }
    assert!(
        vvc.placed_victims > 0,
        "victims were never parked in receiver sets"
    );
    assert!(virtual_hits > 0, "no virtual hits ever happened");
}

#[test]
fn opt_is_lower_bound_among_all_policies_on_random_traffic() {
    use acic_repro::trace::ReuseOracle;
    let geom = CacheGeometry::from_sets_ways(2, 2);
    // Deterministic pseudo-random sequence over 12 blocks.
    let mut x = 77u64;
    let seq: Vec<u64> = (0..800)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) % 12
        })
        .collect();
    let blocks: Vec<BlockAddr> = seq.iter().map(|&b| BlockAddr::new(b)).collect();
    let oracle = ReuseOracle::from_sequence(&blocks);

    let mut opt_misses = 0u64;
    let mut cache = SetAssocCache::new(geom, PolicyKind::Opt.build(geom));
    let mut cur = oracle.cursor();
    for (i, &b) in blocks.iter().enumerate() {
        cur.advance(b);
        let c = AccessCtx::demand(b, i as u64).with_next_use(cur.next_use_of(b));
        if !cache.access(&c) {
            opt_misses += 1;
            cache.fill(&c);
        }
    }

    for kind in [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Ship,
        PolicyKind::Ghrp,
        PolicyKind::Slru,
        PolicyKind::Random { seed: 3 },
    ] {
        let m = misses(kind, geom, &seq);
        assert!(
            opt_misses <= m,
            "{kind:?} ({m}) beat OPT ({opt_misses}) — impossible"
        );
    }
}

//! DESIGN.md §7 invariants checked against driven ACIC organizations.

use acic_repro::cache::{AccessCtx, IcacheContents};
use acic_repro::core::{AcicConfig, AcicIcache, PredictorKind};
use acic_repro::trace::TraceSource;
use acic_repro::types::BlockAddr;
use acic_repro::workloads::{AppProfile, SyntheticWorkload};

/// Drives an AcicIcache functionally (no timing) with a real workload
/// stream, checking invariants as it goes.
fn drive(config: AcicConfig, instructions: u64, check_every: u64) -> AcicIcache {
    let wl = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), instructions);
    let mut icache = AcicIcache::new(config);
    let mut idx = 0u64;
    let mut last_block: Option<BlockAddr> = None;
    for instr in wl.iter() {
        let block = instr.pc().block();
        if last_block == Some(block) && !instr.is_taken_branch() {
            continue; // same fetch group
        }
        last_block = Some(block);
        idx += 1;
        icache.tick(idx);
        let ctx = AccessCtx::demand(block, idx);
        if !icache.access(&ctx).hit {
            icache.fill(&ctx);
        }
        if idx.is_multiple_of(check_every) {
            assert_filter_cache_exclusive(&icache);
        }
    }
    icache
}

fn assert_filter_cache_exclusive(icache: &AcicIcache) {
    if let Some(filter) = icache.filter() {
        assert!(filter.len() <= filter.capacity());
        for block in filter.resident_blocks() {
            assert!(
                !icache.cache().contains(block),
                "block {block} is in both the i-Filter and the i-cache"
            );
        }
    }
}

#[test]
fn filter_and_cache_stay_exclusive_under_load() {
    let icache = drive(AcicConfig::default(), 60_000, 512);
    assert_filter_cache_exclusive(&icache);
    assert!(icache.stats().demand_accesses > 0);
}

#[test]
fn decisions_account_for_all_filter_victims() {
    let icache = drive(AcicConfig::default(), 60_000, u64::MAX);
    let s = icache.acic_stats();
    assert_eq!(s.decisions, s.admitted + s.bypassed);
    // CSHR opened one comparison per decided victim.
    assert_eq!(icache.cshr_stats().inserted, s.decisions);
}

#[test]
fn cshr_resolutions_never_exceed_insertions() {
    let icache = drive(AcicConfig::default(), 60_000, u64::MAX);
    let c = icache.cshr_stats();
    assert!(c.victim_first + c.contender_first + c.evicted_unresolved <= c.inserted);
}

#[test]
fn never_admit_keeps_cache_frozen_after_warmup() {
    let icache = drive(
        AcicConfig {
            predictor: PredictorKind::NeverAdmit,
            ..AcicConfig::default()
        },
        60_000,
        u64::MAX,
    );
    let s = icache.acic_stats();
    assert_eq!(s.admitted, 0);
    // The cache only ever received free admissions (invalid ways).
    assert!(icache.cache().resident_blocks().len() <= 512 + 16);
}

#[test]
fn always_admit_matches_filtered_icache_contents() {
    // AcicIcache with AlwaysAdmit must behave exactly like the
    // generic FilteredIcache with AlwaysAdmit (two implementations of
    // the same organization).
    use acic_repro::cache::bypass::AlwaysAdmit;
    use acic_repro::cache::CacheGeometry;
    use acic_repro::core::FilteredIcache;

    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 40_000);
    let mut a = AcicIcache::new(AcicConfig {
        predictor: PredictorKind::AlwaysAdmit,
        ..AcicConfig::default()
    });
    let mut b = FilteredIcache::new(CacheGeometry::l1i_32k(), 16, Box::new(AlwaysAdmit));
    let mut idx = 0u64;
    let mut last = None;
    for instr in wl.iter() {
        let block = instr.pc().block();
        if last == Some(block) && !instr.is_taken_branch() {
            continue;
        }
        last = Some(block);
        idx += 1;
        let ctx = AccessCtx::demand(block, idx);
        let ha = a.access(&ctx).hit;
        let hb = b.access(&ctx).hit;
        assert_eq!(ha, hb, "divergence at access {idx} (block {block})");
        if !ha {
            a.fill(&ctx);
            b.fill(&ctx);
        }
    }
    assert_eq!(a.stats().demand_misses, b.stats().demand_misses);
}

#[test]
fn storage_accounting_matches_paper_table_one() {
    let cfg = AcicConfig::default();
    assert_eq!(cfg.filter_bits(), 9200);
    assert_eq!(cfg.hrt_bits(), 4096);
    assert_eq!(cfg.pt_bits(), 80);
    assert_eq!(cfg.pt_queue_bits(), 800);
    assert_eq!(cfg.cshr_bits(), 7680);
    assert!((cfg.storage_kib() - 2.67).abs() < 0.01);
}

#[test]
fn sensitivity_configs_are_all_constructible() {
    for cfg in [
        AcicConfig {
            hrt_entries: 2048,
            ..AcicConfig::default()
        },
        AcicConfig {
            hrt_entries: 512,
            ..AcicConfig::default()
        },
        AcicConfig {
            history_bits: 8,
            ..AcicConfig::default()
        },
        AcicConfig {
            history_bits: 10,
            ..AcicConfig::default()
        },
        AcicConfig {
            pt_counter_bits: 2,
            ..AcicConfig::default()
        },
        AcicConfig {
            pt_counter_bits: 8,
            ..AcicConfig::default()
        },
        AcicConfig {
            filter_entries: 8,
            ..AcicConfig::default()
        },
        AcicConfig {
            filter_entries: 32,
            ..AcicConfig::default()
        },
        AcicConfig {
            cshr_tag_bits: 7,
            ..AcicConfig::default()
        },
        AcicConfig {
            cshr_tag_bits: 15,
            ..AcicConfig::default()
        },
    ] {
        let icache = AcicIcache::new(cfg);
        assert!(icache.config().storage_bits() > 0);
    }
}

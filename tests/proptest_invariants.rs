//! Property-based tests (proptest) on the core data structures and
//! the DESIGN.md §7 invariants.

use acic_repro::cache::policy::{AnyPolicy, PolicyKind};
use acic_repro::cache::{AccessCtx, CacheGeometry, SetAssocCache};
use acic_repro::core::{Cshr, IFilter};
use acic_repro::trace::{ReuseOracle, StackDistanceAnalyzer, NO_NEXT_USE};
use acic_repro::types::hash::fold;
use acic_repro::types::{BlockAddr, HistoryReg, LruStamps, SatCounter};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn sat_counter_stays_in_range(width in 1u32..=16, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SatCounter::new_weakly_high(width);
        for up in ops {
            c.update(up);
            prop_assert!(c.value() <= c.max());
        }
    }

    #[test]
    fn history_register_is_width_limited(width in 1u32..=32, bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut h = HistoryReg::new(width);
        for b in bits {
            h.push(b);
            if width < 32 {
                prop_assert!(h.value() < (1u32 << width));
            }
        }
    }

    #[test]
    fn fold_output_fits(bits in 1u32..=20, x in any::<u64>()) {
        prop_assert!(fold(x, bits) < (1u64 << bits));
    }

    #[test]
    fn lru_recency_order_is_permutation(ways in 1usize..=16, touches in proptest::collection::vec(any::<u16>(), 0..100)) {
        let mut lru = LruStamps::new(ways);
        for t in touches {
            lru.touch(t as usize % ways);
        }
        let order = lru.recency_order();
        let set: HashSet<usize> = order.iter().copied().collect();
        prop_assert_eq!(set.len(), ways);
        prop_assert_eq!(*order.last().unwrap(), lru.lru_way());
    }

    #[test]
    fn cache_never_duplicates_blocks(
        accesses in proptest::collection::vec(0u64..64, 1..400),
    ) {
        let geom = CacheGeometry::from_sets_ways(4, 4);
        let mut cache = SetAssocCache::new(geom, PolicyKind::Lru.build(geom));
        for (i, b) in accesses.iter().enumerate() {
            let ctx = AccessCtx::demand(BlockAddr::new(*b), i as u64);
            if !cache.access(&ctx) {
                cache.fill(&ctx);
            }
            // Iterator variant: this runs once per access, so avoid
            // materializing a Vec just to count.
            let mut resident = 0usize;
            let mut unique = HashSet::new();
            for block in cache.iter_resident() {
                resident += 1;
                unique.insert(block);
            }
            prop_assert_eq!(unique.len(), resident, "duplicate block cached");
            prop_assert!(resident <= geom.lines());
        }
    }

    #[test]
    fn lru_cache_hits_match_reference_model(
        accesses in proptest::collection::vec(0u64..48, 1..300),
    ) {
        // Reference: per-set LRU stacks as plain vectors.
        let geom = CacheGeometry::from_sets_ways(4, 2);
        let mut cache = SetAssocCache::new(geom, PolicyKind::Lru.build(geom));
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for (i, b) in accesses.iter().enumerate() {
            let ctx = AccessCtx::demand(BlockAddr::new(*b), i as u64);
            let hit = cache.access(&ctx);
            if !hit {
                cache.fill(&ctx);
            }
            let set = (*b % 4) as usize;
            let stack = &mut model[set];
            let model_hit = stack.contains(b);
            if let Some(pos) = stack.iter().position(|x| x == b) {
                stack.remove(pos);
            }
            stack.insert(0, *b);
            stack.truncate(2);
            prop_assert_eq!(hit, model_hit, "at access {} (block {})", i, b);
        }
    }

    #[test]
    fn devirtualized_dispatch_matches_boxed_dispatch(
        accesses in proptest::collection::vec((0u64..96, any::<bool>()), 1..400),
        kind_sel in 0usize..8,
    ) {
        // The enum-dispatched policy (hot path) must be
        // bit-identical in behavior to the legacy trait-object
        // dispatch it replaced, for every deterministic policy,
        // under mixed demand/prefetch streams.
        let kinds = [
            PolicyKind::Lru,
            PolicyKind::Random { seed: 42 },
            PolicyKind::Srrip,
            PolicyKind::Ship,
            PolicyKind::Hawkeye { prefetch_aware: false },
            PolicyKind::Hawkeye { prefetch_aware: true },
            PolicyKind::Ghrp,
            PolicyKind::Slru,
        ];
        let kind = kinds[kind_sel];
        let geom = CacheGeometry::from_sets_ways(4, 4);
        let mut devirt = SetAssocCache::new(geom, kind.build(geom));
        let mut boxed =
            SetAssocCache::new(geom, AnyPolicy::from(kind.build_boxed(geom)));
        for (i, (b, is_prefetch)) in accesses.iter().enumerate() {
            let ctx = if *is_prefetch {
                AccessCtx::prefetch(BlockAddr::new(*b), i as u64)
            } else {
                AccessCtx::demand(BlockAddr::new(*b), i as u64)
            };
            let hit_a = devirt.access(&ctx);
            let hit_b = boxed.access(&ctx);
            prop_assert_eq!(hit_a, hit_b, "hit divergence at access {} ({:?})", i, kind);
            if !hit_a {
                let ev_a = devirt.fill(&ctx);
                let ev_b = boxed.fill(&ctx);
                prop_assert_eq!(ev_a, ev_b, "eviction divergence at access {} ({:?})", i, kind);
            }
            prop_assert!(
                devirt.iter_resident().eq(boxed.iter_resident()),
                "contents divergence at access {} ({:?})",
                i,
                kind
            );
        }
        let (sa, sb) = (devirt.stats(), boxed.stats());
        prop_assert_eq!(sa.demand_misses, sb.demand_misses);
        prop_assert_eq!(sa.prefetch_misses, sb.prefetch_misses);
        prop_assert_eq!(sa.evictions, sb.evictions);
    }

    #[test]
    fn ifilter_capacity_and_membership(
        blocks in proptest::collection::vec(0u64..40, 1..300),
    ) {
        let mut f = IFilter::new(16);
        let mut victims = 0usize;
        for b in &blocks {
            let blk = BlockAddr::new(*b);
            if !f.access(blk) && f.insert(blk).is_some() {
                victims += 1;
            }
            prop_assert!(f.len() <= 16);
            prop_assert!(f.contains(blk), "just-inserted block missing");
        }
        let _ = victims;
    }

    #[test]
    fn cshr_occupancy_bounded_and_resolutions_consistent(
        events in proptest::collection::vec((0u16..64, 0u16..64, 0usize..64, any::<bool>()), 1..300),
    ) {
        let mut cshr = Cshr::new(8, 4, 64);
        for (victim, contender, set, search_victim) in events {
            if victim != contender {
                cshr.insert(victim, contender, set);
            }
            prop_assert!(cshr.occupancy() <= cshr.capacity());
            let probe = if search_victim { victim } else { contender };
            for r in cshr.search(probe, set) {
                // A resolution's outcome must match which field we hit.
                if r.victim_won {
                    prop_assert_eq!(r.victim_ptag, probe);
                }
            }
        }
        let s = cshr.stats();
        prop_assert!(s.victim_first + s.contender_first + s.evicted_unresolved <= s.inserted);
    }

    #[test]
    fn stack_distance_zero_iff_immediate_repeat(
        seq in proptest::collection::vec(0u64..30, 2..200),
    ) {
        let blocks: Vec<BlockAddr> = seq.iter().map(|&b| BlockAddr::new(b)).collect();
        let dists = StackDistanceAnalyzer::analyze(&blocks);
        for i in 1..blocks.len() {
            if blocks[i] == blocks[i - 1] {
                prop_assert_eq!(dists[i], Some(0));
            }
            if let Some(d) = dists[i] {
                // Bounded by number of distinct blocks seen so far.
                let distinct: HashSet<_> = blocks[..i].iter().collect();
                prop_assert!((d as usize) < distinct.len());
            }
        }
    }

    #[test]
    fn oracle_next_use_chains_are_consistent(
        seq in proptest::collection::vec(0u64..20, 1..200),
    ) {
        let blocks: Vec<BlockAddr> = seq.iter().map(|&b| BlockAddr::new(b)).collect();
        let oracle = ReuseOracle::from_sequence(&blocks);
        for i in 0..blocks.len() {
            let nx = oracle.next_use_at(i);
            if nx != NO_NEXT_USE {
                prop_assert!(nx > i as u64);
                prop_assert_eq!(blocks[nx as usize], blocks[i]);
                // No access to the same block strictly between.
                for j in i + 1..nx as usize {
                    prop_assert_ne!(blocks[j], blocks[i]);
                }
            }
            prop_assert_eq!(oracle.next_use_from(blocks[i], i as u64), i as u64);
        }
    }

    #[test]
    fn opt_policy_beats_or_ties_lru_on_any_sequence(
        seq in proptest::collection::vec(0u64..24, 50..400),
    ) {
        let blocks: Vec<BlockAddr> = seq.iter().map(|&b| BlockAddr::new(b)).collect();
        let oracle = ReuseOracle::from_sequence(&blocks);
        let geom = CacheGeometry::from_sets_ways(2, 2);

        let mut lru_misses = 0u64;
        let mut cache = SetAssocCache::new(geom, PolicyKind::Lru.build(geom));
        for (i, &b) in blocks.iter().enumerate() {
            let ctx = AccessCtx::demand(b, i as u64);
            if !cache.access(&ctx) {
                lru_misses += 1;
                cache.fill(&ctx);
            }
        }

        let mut opt_misses = 0u64;
        let mut cache = SetAssocCache::new(geom, PolicyKind::Opt.build(geom));
        let mut cursor = oracle.cursor();
        for (i, &b) in blocks.iter().enumerate() {
            cursor.advance(b);
            let ctx = AccessCtx::demand(b, i as u64).with_next_use(cursor.next_use_of(b));
            if !cache.access(&ctx) {
                opt_misses += 1;
                cache.fill(&ctx);
            }
        }
        // Belady MIN with forced insertion can in principle tie but
        // not materially lose; allow a tiny slack for the forced-fill
        // variant on adversarial sequences.
        prop_assert!(
            opt_misses <= lru_misses + 2,
            "OPT {} vs LRU {}",
            opt_misses,
            lru_misses
        );
    }
}

//! Equivalence proptests pinning every flat hot-path table to its
//! retained legacy implementation (ISSUE-4 tentpole: the layout
//! reworks must be behaviorally invisible).
//!
//! * packed-lane [`Cshr`] vs. array-of-structs [`LegacyCshr`] over
//!   randomized insert/search sequences;
//! * ring-buffered [`TwoLevelPredictor`] vs. `VecDeque`-queued
//!   [`LegacyTwoLevelPredictor`] over randomized train/tick/flush
//!   sequences in both update modes;
//! * open-addressed [`MissTracker`] vs. `HashMap`-backed
//!   [`LegacyMissTracker`] over randomized insert/lookup/full
//!   sequences with a monotone clock;
//! * flat-ring/open-addressed Hawkeye [`SampledSet`] vs. the
//!   map/deque [`LegacySampledSet`] over randomized OPTgen access
//!   sequences, plus [`BlockTimeMap`] vs. `HashMap` directly.

use acic_repro::cache::policy::hawkeye::{BlockTimeMap, LegacySampledSet, SampledSet};
use acic_repro::core::{AcicConfig, Cshr, LegacyCshr, LegacyTwoLevelPredictor, TwoLevelPredictor};
use acic_repro::core::{ResolutionBuf, UpdateMode};
use acic_repro::sim::mem::{LegacyMissTracker, MissTracker};
use acic_repro::types::{Asid, BlockAddr, TaggedBlock};
use proptest::prelude::*;
use std::collections::HashMap;

/// One CSHR operation: open a comparison or probe a tag.
#[derive(Clone, Debug)]
enum CshrOp {
    Insert {
        victim: u16,
        contender: u16,
        set: usize,
    },
    Search {
        probe: u16,
        set: usize,
    },
}

fn cshr_op() -> impl Strategy<Value = CshrOp> {
    prop_oneof![
        (0u16..64, 0u16..64, 0usize..64).prop_map(|(victim, contender, set)| CshrOp::Insert {
            victim,
            contender,
            set
        }),
        (0u16..64, 0usize..64).prop_map(|(probe, set)| CshrOp::Search { probe, set }),
    ]
}

proptest! {
    #[test]
    fn flat_cshr_matches_legacy(
        sets in prop_oneof![Just(1usize), Just(2), Just(8)],
        ways in 1usize..=32,
        ops in proptest::collection::vec(cshr_op(), 1..300),
    ) {
        let mut flat = Cshr::new(sets, ways, 64);
        let mut legacy = LegacyCshr::new(sets, ways, 64);
        let mut buf = ResolutionBuf::new();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                CshrOp::Insert { victim, contender, set } => {
                    prop_assert_eq!(
                        flat.insert(victim, contender, set),
                        legacy.insert(victim, contender, set),
                        "insert {} diverged", i
                    );
                }
                CshrOp::Search { probe, set } => {
                    flat.search_into(probe, set, &mut buf);
                    let legacy_out = legacy.search(probe, set);
                    prop_assert_eq!(buf.as_slice(), legacy_out.as_slice(),
                        "search {} diverged", i);
                }
            }
        }
        prop_assert_eq!(flat.stats(), legacy.stats());
        prop_assert_eq!(flat.occupancy(), legacy.occupancy());
    }

    #[test]
    fn ring_predictor_matches_legacy(
        pipelined in any::<bool>(),
        queue_slots in 1usize..=12,
        ops in proptest::collection::vec((0u16..40, any::<bool>(), 0u64..4, any::<bool>()), 1..400),
    ) {
        let cfg = AcicConfig {
            update_mode: if pipelined { UpdateMode::Pipelined } else { UpdateMode::Instant },
            pt_queue_slots: queue_slots,
            ..AcicConfig::default()
        };
        let mut ring = TwoLevelPredictor::new(&cfg);
        let mut legacy = LegacyTwoLevelPredictor::new(&cfg);
        let mut now = 0u64;
        for &(ptag, won, advance, tick) in &ops {
            // A bursty clock: several trains can share a cycle, and
            // ticks fire irregularly (exercises both the HRT
            // write-port conflict and the ring's earliest-due gate).
            now += advance;
            ring.train(ptag, won, now);
            legacy.train(ptag, won, now);
            if tick {
                ring.tick(now);
                legacy.tick(now);
            }
            prop_assert_eq!(ring.predict(ptag), legacy.predict(ptag));
        }
        prop_assert_eq!(ring.dropped_updates, legacy.dropped_updates);
        ring.flush();
        legacy.flush();
        for pattern in 0..16 {
            prop_assert_eq!(ring.pt_value(pattern), legacy.pt_value(pattern),
                "pattern {} diverged after flush", pattern);
        }
    }

    #[test]
    fn flat_mshr_matches_legacy(
        capacity in 1usize..=16,
        ops in proptest::collection::vec((0u64..32, 0u16..3, 0u64..30, 1u64..400), 1..300),
    ) {
        let mut flat = MissTracker::new(capacity);
        let mut legacy = LegacyMissTracker::new(capacity);
        let mut now = 0u64;
        for &(block, asid, advance, latency) in &ops {
            now += advance;
            let b = BlockAddr::new(0x100 + block).with_asid(Asid::new(asid));
            prop_assert_eq!(flat.lookup(b, now), legacy.lookup(b, now));
            let was_full = legacy.full(now);
            prop_assert_eq!(flat.full(now), was_full);
            if !was_full {
                flat.insert(b, now + latency);
                legacy.insert(b, now + latency);
            }
            prop_assert_eq!(flat.occupancy(now), legacy.occupancy(now));
            prop_assert_eq!(flat.earliest_ready(), legacy.earliest_ready());
        }
    }

    #[test]
    fn flat_hawkeye_sampler_matches_legacy(
        ways in 1u8..=8,
        ops in proptest::collection::vec((0u64..96, 0u16..3, 0u16..512), 1..600),
    ) {
        let mut flat = SampledSet::default();
        let mut legacy = LegacySampledSet::default();
        for (i, &(block, asid, sig)) in ops.iter().enumerate() {
            let b = BlockAddr::new(block).with_asid(Asid::new(asid));
            prop_assert_eq!(
                flat.optgen_step(b, sig, ways),
                legacy.optgen_step(b, sig, ways),
                "optgen step {} diverged", i
            );
        }
    }

    #[test]
    fn block_time_map_matches_hashmap(
        ops in proptest::collection::vec((0u64..64, 0u64..1000, 0u16..512, any::<bool>()), 1..300),
        cutoff in 0u64..1000,
    ) {
        let mut flat = BlockTimeMap::new();
        let mut reference: HashMap<TaggedBlock, (u64, u16)> = HashMap::new();
        for &(block, time, sig, trim) in &ops {
            let b = TaggedBlock::untagged(BlockAddr::new(block));
            flat.insert(b, time, sig);
            reference.insert(b, (time, sig));
            if trim {
                flat.trim(cutoff);
                reference.retain(|_, &mut (t, _)| t >= cutoff);
            }
            prop_assert_eq!(flat.len(), reference.len());
            prop_assert_eq!(flat.get(b), reference.get(&b).copied());
        }
        for (&b, &v) in &reference {
            prop_assert_eq!(flat.get(b), Some(v));
        }
    }
}

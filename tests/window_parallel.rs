//! Window-parallel execution pins: the worker count must be
//! unobservable in the output.
//!
//! `Engine::run_windowed` derives a `WindowPlan` before any window
//! runs, executes every window on a private fresh checkpoint, and
//! reduces outcomes in canonical window order — so running the plan on
//! one worker *is* the serial execution of the windowed schedule, and
//! any other worker count must pool bit-identical `SampledStats` and
//! identical statistics blocks. These tests pin that across
//! organizations (including the oracle-backed ones), multi-tenant
//! interleaves, generator-backed, materialized, and
//! `.acictrace`-replayed traces, and worker counts {1, 2, 7}.

use acic_sim::{Engine, IcacheOrg, SampleSchedule, SimConfig, SimReport, WindowPlan};
use acic_trace::{PackedTrace, TraceSource, VecTrace};
use acic_workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};

fn sched() -> SampleSchedule {
    SampleSchedule::Periodic {
        period: 150_000,
        warmup_len: 40_000,
        detailed_len: 15_000,
    }
}

fn cfg(org: IcacheOrg) -> SimConfig {
    SimConfig::default().with_org(org).with_schedule(sched())
}

/// Full bit-identity: every counter the report carries, not just the
/// pooled estimators. `SampledStats` is `PartialEq` over raw `f64`s,
/// so equality there is bit-level, not approximate.
fn assert_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.sampled, b.sampled, "{what}: pooled SampledStats");
    assert_eq!(a.total_instructions, b.total_instructions, "{what}");
    assert_eq!(a.total_cycles, b.total_cycles, "{what}");
    assert_eq!(a.measured_instructions, b.measured_instructions, "{what}");
    assert_eq!(a.measured_cycles, b.measured_cycles, "{what}");
    assert_eq!(a.l1i, b.l1i, "{what}: l1i");
    assert_eq!(a.l1d, b.l1d, "{what}: l1d");
    assert_eq!(a.l2, b.l2, "{what}: l2");
    assert_eq!(a.l3, b.l3, "{what}: l3");
    assert_eq!(a.dram_accesses, b.dram_accesses, "{what}");
    assert_eq!(a.branch, b.branch, "{what}: branch");
    assert_eq!(a.prefetch, b.prefetch, "{what}: prefetch");
    assert_eq!(a.context_switches, b.context_switches, "{what}");
    assert_eq!(a.acic, b.acic, "{what}: acic");
    assert_eq!(a.cshr, b.cshr, "{what}: cshr");
}

fn pin_worker_counts<W: TraceSource + Sync>(cfg: &SimConfig, wl: &W, what: &str) -> SimReport {
    let serial = Engine::run_windowed(cfg, wl, 1);
    assert!(
        serial.sampled.is_some(),
        "{what}: windowed run must be sampled"
    );
    for workers in [2usize, 7] {
        let parallel = Engine::run_windowed(cfg, wl, workers);
        assert_identical(&serial, &parallel, &format!("{what} @ {workers} workers"));
    }
    serial
}

#[test]
fn worker_count_is_unobservable_across_organizations() {
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 600_000);
    for org in [IcacheOrg::Lru, IcacheOrg::Srrip, IcacheOrg::acic_default()] {
        let label = format!("{org:?}");
        let r = pin_worker_counts(&cfg(org), &wl, &label);
        assert!(r.ipc() > 0.0, "{label}: ipc");
        let s = r.sampled.unwrap();
        assert!(s.windows >= 3, "{label}: windows = {}", s.windows);
        assert!(s.detailed_instructions > 0, "{label}");
    }
}

#[test]
fn oracle_cursor_handoff_is_deterministic() {
    // OPT consults the reuse oracle; windowed mode hands each worker a
    // cursor pre-seeked to its window's first block run. The handoff
    // must be position-exact for every worker count.
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 500_000);
    let r = pin_worker_counts(&cfg(IcacheOrg::Opt), &wl, "opt");
    assert!(r.l1i.demand_misses > 0, "opt simulated real traffic");
}

#[test]
fn bounded_reach_plans_stay_deterministic() {
    // Bounded-reach plans (`WindowPlan::with_warm_reach`) exercise the
    // paths a default full-prefix plan leaves trivial: a nonzero O(1)
    // skip to each warm start and mid-trace oracle cursor seeks.
    // Fidelity is explicitly out of scope for bounded reaches (module
    // docs); worker-count determinism is not.
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 500_000);
    let c = cfg(IcacheOrg::Opt);
    let plan = WindowPlan::with_warm_reach(500_000, sched(), c.warmup_fraction, Some(60_000))
        .expect("plannable");
    assert!(
        plan.windows.iter().skip(1).all(|w| w.warm_start > 0),
        "bounded reach must leave real prefixes to skip"
    );
    let serial = Engine::run_windowed_with(&c, &wl, 1, &plan);
    assert!(serial.sampled.is_some());
    for workers in [2usize, 7] {
        let parallel = Engine::run_windowed_with(&c, &wl, workers, &plan);
        assert_identical(
            &serial,
            &parallel,
            &format!("bounded reach @ {workers} workers"),
        );
    }
}

#[test]
fn multi_tenant_interleaves_pool_identically() {
    let wl = MultiTenantWorkload::new(5_000)
        .suite_tenants(3, 200_000)
        .build();
    let r = pin_worker_counts(&cfg(IcacheOrg::acic_default()), &wl, "multi-tenant");
    assert!(
        r.context_switches > 0,
        "windowed interiors must observe tenant switches"
    );
}

#[test]
fn replayed_traces_match_generator_backed_runs() {
    // The same stream through all three source kinds: generated on
    // the fly, materialized in memory, and round-tripped through an
    // on-disk `.acictrace` replay. Window planning keys off positions,
    // not source internals, so all of them — at any worker count —
    // must produce the identical report.
    let generated = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 600_000);
    let materialized = VecTrace::from_source(&generated);
    let packed = PackedTrace::from_source(&materialized);
    let dir = std::env::temp_dir().join(format!("acic-window-parallel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("media-streaming-600k.acictrace");
    packed.write_to(&path).expect("write trace");
    let replayed = PackedTrace::read_from(&path).expect("replay trace");
    std::fs::remove_dir_all(&dir).ok();

    let c = cfg(IcacheOrg::acic_default());
    let from_gen = pin_worker_counts(&c, &generated, "generator-backed");
    let from_vec = pin_worker_counts(&c, &materialized, "materialized");
    let from_disk = pin_worker_counts(&c, &replayed, "replayed");
    assert_identical(&from_gen, &from_vec, "generator vs materialized");
    assert_identical(&from_gen, &from_disk, "generator vs replayed");
}

#[test]
fn zero_workers_mean_one() {
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 400_000);
    let c = cfg(IcacheOrg::Lru);
    let zero = Engine::run_windowed(&c, &wl, 0);
    let one = Engine::run_windowed(&c, &wl, 1);
    assert_identical(&zero, &one, "workers 0 vs 1");
}

#[test]
fn short_traces_fall_back_to_the_serial_engine() {
    // Too short to sample: the planner refuses and run_windowed must
    // defer to Engine::run's degenerate-to-full behavior, identically
    // for every worker count.
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 30_000);
    let c = SimConfig::default().with_schedule(SampleSchedule::default_sampled());
    let serial = Engine::run(&c, &wl);
    for workers in [1usize, 4] {
        let windowed = Engine::run_windowed(&c, &wl, workers);
        assert!(windowed.sampled.is_none(), "degenerated to Full");
        assert_eq!(serial.total_cycles, windowed.total_cycles);
        assert_eq!(serial.l1i.demand_misses, windowed.l1i.demand_misses);
    }
}

#[test]
fn full_schedules_fall_back_to_the_serial_engine() {
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 100_000);
    let c = SimConfig::default();
    let serial = Engine::run(&c, &wl);
    let windowed = Engine::run_windowed(&c, &wl, 4);
    assert_eq!(serial.total_cycles, windowed.total_cycles);
    assert_eq!(serial.l1i, windowed.l1i);
    assert!(windowed.sampled.is_none());
}

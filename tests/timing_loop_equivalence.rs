//! Property-based dense-vs-event-horizon equivalence.
//!
//! The event-horizon loop (`TimingLoop::EventHorizon`) is a pure
//! scheduling optimization: it must produce the *bit-identical*
//! [`SimReport`] the dense cycle-by-cycle reference loop produces, on
//! every configuration. `tests/engine_equivalence.rs` pins a handful
//! of golden cells; this suite searches the configuration space —
//! random organizations, prefetchers, sample schedules, workload
//! profiles, and single- vs multi-tenant traces — and compares the
//! two loops' full reports via their `Debug` rendering (`SimReport`
//! deliberately has no `PartialEq`; the formatted form covers every
//! field, including nested stats).
//!
//! A windowed leg repeats the comparison through
//! `Engine::run_windowed_with_loop` with 1 and 2 workers: the
//! window-parallel path must also be loop-invariant, and
//! worker-count-invariant under either loop.

use acic_sim::{Engine, IcacheOrg, PrefetcherKind, SampleSchedule, SimConfig, TimingLoop};
use acic_trace::VecTrace;
use acic_workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};
use proptest::prelude::*;

/// Organizations under test: the three headline policies plus the
/// flush-on-switch LRU (exercises the ASID path).
fn org(idx: usize) -> IcacheOrg {
    let orgs = [
        IcacheOrg::Lru,
        IcacheOrg::LruFlush,
        IcacheOrg::Srrip,
        IcacheOrg::acic_default(),
    ];
    orgs[idx % orgs.len()].clone()
}

fn prefetcher(idx: usize) -> PrefetcherKind {
    let kinds = [
        PrefetcherKind::None,
        PrefetcherKind::Fdp,
        PrefetcherKind::Entangling,
    ];
    kinds[idx % kinds.len()]
}

/// Short schedules sized for the small proptest traces: a Full run
/// and two Periodic shapes whose windows tile a few-thousand
/// instruction trace several times over.
fn schedule(idx: usize) -> SampleSchedule {
    let schedules = [
        SampleSchedule::Full,
        SampleSchedule::Periodic {
            period: 2_000,
            warmup_len: 600,
            detailed_len: 300,
        },
        SampleSchedule::Periodic {
            period: 1_200,
            warmup_len: 200,
            detailed_len: 500,
        },
    ];
    schedules[idx % schedules.len()]
}

fn profile(idx: usize) -> AppProfile {
    let profiles = [
        AppProfile::web_search(),
        AppProfile::tpc_c(),
        AppProfile::media_streaming(),
        AppProfile::gcc(),
    ];
    profiles[idx % profiles.len()].clone()
}

fn config(org_idx: usize, pf_idx: usize, sched_idx: usize) -> SimConfig {
    SimConfig::default()
        .with_org(org(org_idx))
        .with_prefetcher(prefetcher(pf_idx))
        .with_schedule(schedule(sched_idx))
}

/// Debug-render a report for comparison. `SimReport` has no
/// `PartialEq`; the derived `Debug` covers every field.
fn render(r: &acic_sim::SimReport) -> String {
    format!("{r:?}")
}

proptest! {
    /// Serial engine: dense and event-horizon reports are
    /// bit-identical on random (org, prefetcher, schedule, profile,
    /// length) points.
    #[test]
    fn serial_dense_matches_event_horizon(
        org_idx in 0usize..4,
        pf_idx in 0usize..3,
        sched_idx in 0usize..3,
        prof_idx in 0usize..4,
        instructions in 2_000u64..10_000,
    ) {
        let cfg = config(org_idx, pf_idx, sched_idx);
        let trace = VecTrace::from_source(&SyntheticWorkload::with_instructions(
            profile(prof_idx),
            instructions,
        ));
        let dense = Engine::run_with_loop(&cfg, &trace, TimingLoop::Dense);
        let event = Engine::run_with_loop(&cfg, &trace, TimingLoop::EventHorizon);
        prop_assert_eq!(
            render(&dense),
            render(&event),
            "dense vs event mismatch: org={:?} pf={:?} sched={:?} n={}",
            org(org_idx), prefetcher(pf_idx), schedule(sched_idx), instructions
        );
    }

    /// Multi-tenant traces (context switches, ASID-tagged state):
    /// same bit-identity requirement.
    #[test]
    fn multi_tenant_dense_matches_event_horizon(
        org_idx in 0usize..4,
        pf_idx in 0usize..3,
        quantum in 500u64..2_000,
        per_tenant in 2_000u64..6_000,
    ) {
        let cfg = config(org_idx, pf_idx, 0);
        let wl = MultiTenantWorkload::new(quantum)
            .tenant(AppProfile::web_search(), per_tenant)
            .tenant(AppProfile::tpc_c(), per_tenant)
            .build();
        let trace = VecTrace::from_source(&wl);
        let dense = Engine::run_with_loop(&cfg, &trace, TimingLoop::Dense);
        let event = Engine::run_with_loop(&cfg, &trace, TimingLoop::EventHorizon);
        prop_assert_eq!(
            render(&dense),
            render(&event),
            "multi-tenant mismatch: org={:?} pf={:?} quantum={}",
            org(org_idx), prefetcher(pf_idx), quantum
        );
    }

    /// Windowed sampled runs: the event loop must match dense through
    /// the window-parallel path, and stay worker-count invariant (1
    /// vs 2 workers) under the event loop.
    #[test]
    fn windowed_dense_matches_event_horizon(
        org_idx in 0usize..4,
        pf_idx in 0usize..3,
        prof_idx in 0usize..4,
        instructions in 6_000u64..14_000,
    ) {
        let cfg = config(org_idx, pf_idx, 1);
        let trace = VecTrace::from_source(&SyntheticWorkload::with_instructions(
            profile(prof_idx),
            instructions,
        ));
        let dense = Engine::run_windowed_with_loop(&cfg, &trace, 1, TimingLoop::Dense);
        let event1 = Engine::run_windowed_with_loop(&cfg, &trace, 1, TimingLoop::EventHorizon);
        let event2 = Engine::run_windowed_with_loop(&cfg, &trace, 2, TimingLoop::EventHorizon);
        let dense_s = render(&dense);
        let event1_s = render(&event1);
        prop_assert_eq!(
            dense_s,
            event1_s.clone(),
            "windowed dense vs event mismatch: org={:?} pf={:?} n={}",
            org(org_idx), prefetcher(pf_idx), instructions
        );
        prop_assert_eq!(
            event1_s,
            render(&event2),
            "event loop not worker-count invariant: org={:?} pf={:?} n={}",
            org(org_idx), prefetcher(pf_idx), instructions
        );
    }
}

//! Cross-crate integration tests: whole-simulator behavior that no
//! single crate can check alone.

use acic_repro::sim::{IcacheOrg, PrefetcherKind, SimConfig, Simulator};
use acic_repro::workloads::{AppProfile, SyntheticWorkload};

const N: u64 = 80_000;

fn workload(profile: AppProfile) -> SyntheticWorkload {
    SyntheticWorkload::with_instructions(profile, N)
}

#[test]
fn simulation_is_deterministic_across_processes_and_runs() {
    let wl = workload(AppProfile::data_caching());
    let cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
    let a = Simulator::run(&cfg, &wl);
    let b = Simulator::run(&cfg, &wl);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    assert_eq!(a.branch.mispredicts, b.branch.mispredicts);
    assert_eq!(a.acic.unwrap().decisions, b.acic.unwrap().decisions);
}

#[test]
fn every_figure10_org_completes_on_every_app_class() {
    // One filtering app, one churny app, one SPEC app.
    for profile in [
        AppProfile::media_streaming(),
        AppProfile::tpc_c(),
        AppProfile::x264(),
    ] {
        let wl = workload(profile);
        for org in IcacheOrg::figure10_set() {
            let r = Simulator::run(&SimConfig::default().with_org(org.clone()), &wl);
            assert_eq!(r.total_instructions, N, "{} under {}", r.app, org.label());
            assert!(r.ipc() > 0.0, "{} under {}", r.app, org.label());
        }
    }
}

#[test]
fn opt_replacement_never_misses_more_than_lru() {
    for profile in [AppProfile::media_streaming(), AppProfile::wikipedia()] {
        let wl = workload(profile);
        let cfg = SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        };
        let lru = Simulator::run(&cfg, &wl);
        let opt = Simulator::run(&cfg.with_org(IcacheOrg::Opt), &wl);
        assert!(
            opt.l1i.demand_misses <= lru.l1i.demand_misses,
            "{}: OPT {} > LRU {}",
            lru.app,
            opt.l1i.demand_misses,
            lru.l1i.demand_misses
        );
    }
}

#[test]
fn larger_cache_never_misses_more_under_lru() {
    let wl = workload(AppProfile::web_search());
    let cfg = SimConfig {
        prefetcher: PrefetcherKind::None,
        ..SimConfig::default()
    };
    let base = Simulator::run(&cfg, &wl);
    let bigger = Simulator::run(&cfg.with_org(IcacheOrg::Larger36k), &wl);
    // 36 KB/9-way strictly contains the 32 KB/8-way contents under
    // LRU (same sets, one extra way), so misses cannot increase.
    assert!(bigger.l1i.demand_misses <= base.l1i.demand_misses);
}

#[test]
fn prefetching_helps_the_front_end() {
    let wl = workload(AppProfile::web_serving());
    let none = Simulator::run(
        &SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        },
        &wl,
    );
    let fdp = Simulator::run(&SimConfig::default(), &wl);
    assert!(fdp.l1i.demand_misses < none.l1i.demand_misses);
    assert!(fdp.measured_cycles <= none.measured_cycles);
}

#[test]
fn acic_sits_between_baseline_and_opt_on_filtering_apps() {
    // The paper's headline relationship, on an app with learnable
    // admission structure.
    let wl = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 400_000);
    let cfg = SimConfig::default();
    let lru = Simulator::run(&cfg, &wl);
    let acic = Simulator::run(&cfg.with_org(IcacheOrg::acic_default()), &wl);
    let opt = Simulator::run(&cfg.with_org(IcacheOrg::Opt), &wl);
    assert!(
        acic.l1i_mpki() < lru.l1i_mpki(),
        "ACIC {:.3} vs LRU {:.3}",
        acic.l1i_mpki(),
        lru.l1i_mpki()
    );
    assert!(
        opt.l1i_mpki() <= acic.l1i_mpki(),
        "OPT {:.3} vs ACIC {:.3}",
        opt.l1i_mpki(),
        acic.l1i_mpki()
    );
}

#[test]
fn warmup_window_is_excluded_from_measurements() {
    let wl = workload(AppProfile::sibench());
    let r = Simulator::run(&SimConfig::default(), &wl);
    assert!(r.measured_instructions < r.total_instructions);
    assert!(r.measured_cycles < r.total_cycles);
    // Roughly 10% excluded.
    let excluded = r.total_instructions - r.measured_instructions;
    let expected = (N as f64 * 0.10) as u64;
    assert!(
        excluded.abs_diff(expected) <= expected / 2 + 64,
        "excluded {excluded} vs expected ~{expected}"
    );
}

#[test]
fn oracle_attachment_does_not_change_timing() {
    // The oracle is instrumentation: attaching it must not perturb
    // the simulated machine.
    let wl = workload(AppProfile::finagle_http());
    let plain = Simulator::run(&SimConfig::default(), &wl);
    let oracled = Simulator::run(
        &SimConfig {
            attach_oracle: true,
            ..SimConfig::default()
        },
        &wl,
    );
    assert_eq!(plain.total_cycles, oracled.total_cycles);
    assert_eq!(plain.l1i.demand_misses, oracled.l1i.demand_misses);
}

#[test]
fn entangling_prefetcher_runs_and_reduces_misses() {
    let wl = workload(AppProfile::neo4j_analytics());
    let none = Simulator::run(
        &SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        },
        &wl,
    );
    let ent = Simulator::run(
        &SimConfig {
            prefetcher: PrefetcherKind::Entangling,
            ..SimConfig::default()
        },
        &wl,
    );
    assert!(ent.l1i.demand_misses <= none.l1i.demand_misses);
}

#[test]
fn energy_model_shows_leakage_tracking_runtime() {
    use acic_repro::energy::EnergyModel;
    let wl = workload(AppProfile::data_serving());
    let base = Simulator::run(&SimConfig::default(), &wl);
    let model = EnergyModel::default();
    let e = model.evaluate(&base);
    assert!(e.total_j() > 0.0);
    // Leakage at ~2 W over total_cycles/4 GHz seconds.
    let expected_leak = 1.9 * base.total_cycles as f64 / 4.0e9;
    assert!((e.leakage_j - expected_leak).abs() / expected_leak < 0.05);
}

//! Cache geometry: size, associativity, and derived set counts.

use acic_types::{BlockAddr, TaggedBlock, BLOCK_BYTES};

/// Geometry of a set-associative cache.
///
/// The number of sets must come out a power of two (the usual
/// constraint for simple index extraction); associativity may be any
/// positive value, which is what lets us model the paper's 36 KB
/// 9-way study (§IV-F).
///
/// # Examples
///
/// ```
/// use acic_cache::CacheGeometry;
///
/// let l1i = CacheGeometry::l1i_32k();
/// assert_eq!(l1i.sets(), 64);
/// assert_eq!(l1i.ways(), 8);
/// assert_eq!(l1i.size_bytes(), 32 * 1024);
///
/// let bigger = CacheGeometry::l1i_36k();
/// assert_eq!(bigger.sets(), 64);
/// assert_eq!(bigger.ways(), 9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry from total size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the arguments don't produce a positive power-of-two
    /// number of 64 B sets.
    pub fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let line_bytes = BLOCK_BYTES as usize;
        assert_eq!(
            size_bytes % (ways * line_bytes),
            0,
            "size must be a multiple of ways * 64B"
        );
        let sets = size_bytes / (ways * line_bytes);
        assert!(
            sets.is_power_of_two(),
            "number of sets ({sets}) must be a power of two"
        );
        CacheGeometry { sets, ways }
    }

    /// Creates a geometry directly from sets and ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `ways` is 0.
    pub fn from_sets_ways(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "associativity must be positive");
        CacheGeometry { sets, ways }
    }

    /// The paper's baseline L1i: 32 KB, 8-way (Table II).
    pub fn l1i_32k() -> Self {
        CacheGeometry::new(32 * 1024, 8)
    }

    /// The paper's larger-i-cache comparison point: 36 KB, 9-way
    /// (§IV-F).
    pub fn l1i_36k() -> Self {
        CacheGeometry::new(36 * 1024, 9)
    }

    /// The paper's L1d: 48 KB, 8-way... rounded to a power-of-two set
    /// count (48 KB / 8 ways / 64 B = 96 sets, which is not a power of
    /// two; we model 64 sets x 12 ways = 48 KB, preserving capacity).
    pub fn l1d_48k() -> Self {
        CacheGeometry::from_sets_ways(64, 12)
    }

    /// The paper's unified L2: 512 KB, 8-way.
    pub fn l2_512k() -> Self {
        CacheGeometry::new(512 * 1024, 8)
    }

    /// The paper's unified L3: 2 MB, 16-way.
    pub fn l3_2m() -> Self {
        CacheGeometry::new(2 * 1024 * 1024, 16)
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.lines() * BLOCK_BYTES as usize
    }

    /// Set index of a (host-space) block.
    #[inline]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        block.set_index(self.sets)
    }

    /// Set index of a tagged block identity. Identical to
    /// [`CacheGeometry::set_of`] for the host space; for tenants the
    /// ASID participates through [`TaggedBlock::ident`] (landing in
    /// the tag bits at realistic set counts — VIPT indexing).
    #[inline]
    pub fn set_of_tagged(&self, block: TaggedBlock) -> usize {
        block.set_index(self.sets)
    }

    /// Flat line index for (set, way).
    #[inline]
    pub fn line_index(&self, set: usize, way: usize) -> usize {
        debug_assert!(set < self.sets && way < self.ways);
        set * self.ways + way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_geometries() {
        assert_eq!(CacheGeometry::l1i_32k().lines(), 512);
        assert_eq!(CacheGeometry::l2_512k().sets(), 1024);
        assert_eq!(CacheGeometry::l3_2m().sets(), 2048);
        assert_eq!(CacheGeometry::l1d_48k().size_bytes(), 48 * 1024);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let g = CacheGeometry::l1i_32k();
        assert_eq!(g.set_of(BlockAddr::new(0)), 0);
        assert_eq!(g.set_of(BlockAddr::new(63)), 63);
        assert_eq!(g.set_of(BlockAddr::new(64)), 0);
        assert_eq!(g.set_of(BlockAddr::new(65)), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        let _ = CacheGeometry::new(48 * 1024, 8);
    }

    #[test]
    fn thirty_six_kb_is_nine_way() {
        let g = CacheGeometry::l1i_36k();
        assert_eq!(g.lines(), 576);
        assert_eq!(g.size_bytes(), 36 * 1024);
    }
}

//! Hawkeye / Harmony — Belady-trained replacement (Jain & Lin, ISCA
//! 2016/2018), with the paper's parameters: 64-entry occupancy
//! vectors, an 8K-entry predictor of 3-bit counters, 3-bit RRIP
//! (Table IV).
//!
//! Hawkeye reconstructs what Belady's OPT *would have done* on sampled
//! sets (OPTgen) and trains a predictor: signatures whose accesses OPT
//! would have kept are cache-friendly, others cache-averse. Harmony is
//! the prefetch-aware variant: prefetch and demand accesses train
//! separate signatures so prefetched-but-dead blocks don't pollute the
//! demand signature.
//!
//! Adaptation note: as with SHiP and GHRP, the fetch stream has no
//! load PC, so signatures are hashes of the block address (plus a
//! prefetch bit in Harmony mode).

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::hash::{fold, mix64};
use acic_types::{SatCounter, TaggedBlock};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Occupancy-vector window length (Table IV: 64 entries).
const WINDOW: usize = 64;
/// Predictor entries (8K, Table IV).
const PREDICTOR_ENTRIES: usize = 8192;
/// RRIP width (3-bit, Table IV).
const RRPV_BITS: u32 = 3;
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;

/// One sampled set's OPTgen state.
#[derive(Debug, Default)]
struct SampledSet {
    /// Occupancy per time quantum, oldest first; index 0 corresponds
    /// to time `base_time`.
    occupancy: VecDeque<u8>,
    /// Set-local logical time of the next access.
    time: u64,
    /// Block identity -> (last access time, signature used at that
    /// access). Keyed by tagged identity so tenants' overlapping VAs
    /// never merge OPTgen generations.
    last: HashMap<TaggedBlock, (u64, u16)>,
}

/// Per-line replacement metadata.
#[derive(Clone, Copy, Debug, Default)]
struct LineMeta {
    rrpv: u8,
    signature: u16,
    friendly: bool,
}

/// Hawkeye (or Harmony when `prefetch_aware`) replacement policy.
#[derive(Debug)]
pub struct HawkeyePolicy {
    ways: usize,
    sample_mask: usize,
    prefetch_aware: bool,
    lines: Vec<LineMeta>,
    predictor: Vec<SatCounter>,
    sampled: HashMap<usize, SampledSet>,
}

impl HawkeyePolicy {
    /// Creates Hawkeye state; `prefetch_aware` selects Harmony.
    pub fn new(geom: CacheGeometry, prefetch_aware: bool) -> Self {
        // Sample roughly one in eight sets (at least one).
        let stride = (geom.sets() / 8).max(1);
        HawkeyePolicy {
            ways: geom.ways(),
            sample_mask: stride,
            prefetch_aware,
            lines: vec![LineMeta::default(); geom.lines()],
            predictor: vec![SatCounter::new(3, 4); PREDICTOR_ENTRIES],
            sampled: HashMap::new(),
        }
    }

    fn signature(&self, block: TaggedBlock, is_prefetch: bool) -> u16 {
        let hashed = if self.prefetch_aware && is_prefetch {
            mix64(block.ident()) ^ 0x5bd1_e995
        } else {
            mix64(block.ident())
        };
        fold(hashed, 13) as u16
    }

    fn is_sampled(&self, set: usize) -> bool {
        set.is_multiple_of(self.sample_mask)
    }

    fn predict_friendly(&self, sig: u16) -> bool {
        self.predictor[sig as usize % PREDICTOR_ENTRIES].is_high()
    }

    fn train(&mut self, sig: u16, friendly: bool) {
        self.predictor[sig as usize % PREDICTOR_ENTRIES].update(friendly);
    }

    /// Runs OPTgen for one access to a sampled set; trains the
    /// predictor with what OPT would have done.
    fn optgen_access(&mut self, set: usize, ctx: &AccessCtx<'_>) {
        let ways = self.ways as u8;
        let sig = self.signature(ctx.tagged(), ctx.is_prefetch);
        let entry = self.sampled.entry(set).or_default();
        let now = entry.time;
        entry.time += 1;

        let mut train: Option<(u16, bool)> = None;
        if let Some(&(t_prev, prev_sig)) = entry.last.get(&ctx.tagged()) {
            let window_start = now.saturating_sub(entry.occupancy.len() as u64);
            if t_prev >= window_start {
                let start = (t_prev - window_start) as usize;
                let fits = entry.occupancy.iter().skip(start).all(|&o| o < ways);
                if fits {
                    for o in entry.occupancy.iter_mut().skip(start) {
                        *o += 1;
                    }
                }
                train = Some((prev_sig, fits));
            }
        }
        entry.last.insert(ctx.tagged(), (now, sig));
        entry.occupancy.push_back(0);
        if entry.occupancy.len() > WINDOW {
            entry.occupancy.pop_front();
            // Lazily trim stale block entries to bound memory.
            if entry.last.len() > 4 * WINDOW {
                let cutoff = now.saturating_sub(WINDOW as u64);
                entry.last.retain(|_, &mut (t, _)| t >= cutoff);
            }
        }
        if let Some((sig, friendly)) = train {
            self.train(sig, friendly);
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl ReplacementPolicy for HawkeyePolicy {
    fn name(&self) -> &'static str {
        if self.prefetch_aware {
            "harmony"
        } else {
            "hawkeye"
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        if self.is_sampled(set) {
            self.optgen_access(set, ctx);
        }
        let sig = self.signature(ctx.tagged(), ctx.is_prefetch);
        let friendly = self.predict_friendly(sig);
        let i = self.idx(set, way);
        self.lines[i].signature = sig;
        self.lines[i].friendly = friendly;
        // Hits always promote: a line being used is not dead, whatever
        // the predictor thought at fill time.
        self.lines[i].rrpv = 0;
    }

    fn on_miss(&mut self, set: usize, ctx: &AccessCtx<'_>) {
        if self.is_sampled(set) {
            self.optgen_access(set, ctx);
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        let sig = self.signature(ctx.tagged(), ctx.is_prefetch);
        let friendly = self.predict_friendly(sig);
        let i = self.idx(set, way);
        if friendly {
            // Age other friendly lines so older friendly blocks become
            // eviction candidates before newer ones.
            let base = self.idx(set, 0);
            for w in 0..self.ways {
                let l = &mut self.lines[base + w];
                if w != way && l.friendly && l.rrpv < RRPV_MAX - 1 {
                    l.rrpv += 1;
                }
            }
        }
        self.lines[i] = LineMeta {
            rrpv: if friendly { 0 } else { RRPV_MAX },
            signature: sig,
            friendly,
        };
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        // Detrain: evicting a cache-friendly line means the predictor
        // overpromised — OPT would not have kept it around.
        let i = self.idx(set, way);
        if self.lines[i].friendly {
            let sig = self.lines[i].signature;
            self.train(sig, false);
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.lines[i] = LineMeta {
            rrpv: RRPV_MAX,
            ..LineMeta::default()
        };
    }

    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        self.peek_victim(set, blocks, ctx)
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = set * self.ways;
        // Prefer a cache-averse line (RRPV max), else the oldest
        // friendly line (highest RRPV).
        self.lines[base..base + self.ways]
            .iter()
            .enumerate()
            .max_by_key(|&(i, l)| (l.rrpv, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn optgen_trains_friendly_on_short_reuse() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = HawkeyePolicy::new(geom, false);
        // Repeated accesses to the same block in a sampled set: OPT
        // would always hit -> signature becomes friendly.
        for i in 0..20 {
            p.on_miss(0, &ctx(8, i));
        }
        let sig = p.signature(tb(8), false);
        assert!(p.predictor[sig as usize % PREDICTOR_ENTRIES].value() >= 4);
    }

    #[test]
    fn optgen_trains_averse_on_overflow() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = HawkeyePolicy::new(geom, false);
        // Stream many distinct blocks then revisit: occupancy full ->
        // averse. Blocks all map to set 0 (1 set).
        for round in 0..6u64 {
            for b in 0..8u64 {
                p.on_miss(0, &ctx(b, round * 8 + b));
            }
        }
        let sig = p.signature(tb(3), false);
        assert!(
            p.predictor[sig as usize % PREDICTOR_ENTRIES].value() < 4,
            "streaming signature should be averse"
        );
    }

    #[test]
    fn averse_fills_are_evicted_first() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = HawkeyePolicy::new(geom, false);
        // Make block 5's signature averse manually.
        let sig5 = p.signature(tb(5), false);
        p.predictor[sig5 as usize % PREDICTOR_ENTRIES].set(0);
        let mut c = SetAssocCache::new(geom, p);
        c.fill(&ctx(1, 0));
        c.fill(&ctx(5, 1));
        let evicted = c.fill(&ctx(9, 2));
        assert_eq!(evicted, Some(tb(5)));
    }

    #[test]
    fn harmony_separates_prefetch_signatures() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let p = HawkeyePolicy::new(geom, true);
        let b = tb(77);
        assert_ne!(p.signature(b, false), p.signature(b, true));
        let p = HawkeyePolicy::new(geom, false);
        assert_eq!(p.signature(b, false), p.signature(b, true));
    }

    #[test]
    fn occupancy_window_is_bounded() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = HawkeyePolicy::new(geom, false);
        for i in 0..1000u64 {
            p.on_miss(0, &ctx(i % 100, i));
        }
        let s = p.sampled.get(&0).unwrap();
        assert!(s.occupancy.len() <= WINDOW);
        assert!(s.last.len() <= 4 * WINDOW + 1);
    }
}

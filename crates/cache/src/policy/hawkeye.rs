//! Hawkeye / Harmony — Belady-trained replacement (Jain & Lin, ISCA
//! 2016/2018), with the paper's parameters: 64-entry occupancy
//! vectors, an 8K-entry predictor of 3-bit counters, 3-bit RRIP
//! (Table IV).
//!
//! Hawkeye reconstructs what Belady's OPT *would have done* on sampled
//! sets (OPTgen) and trains a predictor: signatures whose accesses OPT
//! would have kept are cache-friendly, others cache-averse. Harmony is
//! the prefetch-aware variant: prefetch and demand accesses train
//! separate signatures so prefetched-but-dead blocks don't pollute the
//! demand signature.
//!
//! Adaptation note: as with SHiP and GHRP, the fetch stream has no
//! load PC, so signatures are hashes of the block address (plus a
//! prefetch bit in Harmony mode).
//!
//! # Hot-path layout
//!
//! The OPTgen sampler used to live in a `HashMap<usize, SampledSet>`
//! keyed by set index, each set holding a `VecDeque` occupancy vector
//! and a `HashMap` of last-access times. All three are flat now:
//! sampled sets sit in a dense `Vec` indexed by `set / stride`, the
//! occupancy vector is a fixed ring, and last-access times live in a
//! small open-addressed table ([`BlockTimeMap`]) with exact-key
//! semantics — behaviorally identical to the map it replaces (pinned
//! by proptest in `tests/hot_structs_equivalence.rs` against
//! [`LegacySampledSet`]).

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::hash::{fold, mix64};
use acic_types::{SatCounter, TaggedBlock};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Occupancy-vector window length (Table IV: 64 entries).
const WINDOW: usize = 64;
/// Predictor entries (8K, Table IV).
const PREDICTOR_ENTRIES: usize = 8192;
/// RRIP width (3-bit, Table IV).
const RRPV_BITS: u32 = 3;
const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;

/// Sentinel for an empty [`BlockTimeMap`] slot (unreachable by real
/// identities; see the tag store's encoding argument).
const EMPTY_IDENT: u64 = u64::MAX;

/// Open-addressed (block -> last access time, signature) table with
/// exact-key semantics — a drop-in for the sampler's former
/// `HashMap<TaggedBlock, (u64, u16)>`. Sized so the sampler's trim
/// bound (`4 * WINDOW` entries plus the one being inserted) keeps the
/// load factor near 25%; deletion happens only through wholesale
/// [`BlockTimeMap::trim`] rebuilds, so probing never meets tombstones.
#[derive(Debug, Clone)]
pub struct BlockTimeMap {
    ids: Vec<u64>,
    asids: Vec<u16>,
    times: Vec<u64>,
    sigs: Vec<u16>,
    mask: usize,
    len: usize,
}

impl BlockTimeMap {
    /// Slot count: next power of two comfortably above the sampler's
    /// maximum occupancy (`4 * WINDOW + 1`).
    const SLOTS: usize = 1024;

    /// The sampler trims at `4 * WINDOW` entries and the insert guard
    /// fires at half the table; tie the two at compile time so a
    /// larger `WINDOW` cannot silently turn into a runtime panic.
    const _SLOTS_COVER_TRIM_BOUND: () = assert!(4 * WINDOW < Self::SLOTS / 2);

    /// Creates an empty map.
    pub fn new() -> Self {
        BlockTimeMap {
            ids: vec![EMPTY_IDENT; Self::SLOTS],
            asids: vec![0; Self::SLOTS],
            times: vec![0; Self::SLOTS],
            sigs: vec![0; Self::SLOTS],
            mask: Self::SLOTS - 1,
            len: 0,
        }
    }

    #[inline]
    fn probe(&self, id: u64, asid: u16) -> (usize, bool) {
        let mut slot = mix64(id) as usize & self.mask;
        loop {
            if self.ids[slot] == EMPTY_IDENT {
                return (slot, false);
            }
            if self.ids[slot] == id && self.asids[slot] == asid {
                return (slot, true);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Last access time and signature recorded for `block`.
    #[inline]
    pub fn get(&self, block: TaggedBlock) -> Option<(u64, u16)> {
        let (slot, found) = self.probe(block.ident(), block.asid.raw());
        found.then(|| (self.times[slot], self.sigs[slot]))
    }

    /// Records `block`'s access time and signature.
    ///
    /// # Panics
    ///
    /// Panics if the caller exceeds the sampler's trim bound (the
    /// sampler trims at `4 * WINDOW` entries, far below capacity).
    pub fn insert(&mut self, block: TaggedBlock, time: u64, sig: u16) {
        let id = block.ident();
        let asid = block.asid.raw();
        let (slot, found) = self.probe(id, asid);
        if !found {
            assert!(self.len < Self::SLOTS / 2, "BlockTimeMap over-filled");
            self.ids[slot] = id;
            self.asids[slot] = asid;
            self.len += 1;
        }
        self.times[slot] = time;
        self.sigs[slot] = sig;
    }

    /// Number of blocks tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry with time below `cutoff` (the sampler's lazy
    /// staleness trim), rebuilding the table in place: survivors
    /// (bounded by the trim threshold, far fewer than the slot count)
    /// move through a small scratch buffer and the existing lanes are
    /// reused — no slot-array reallocation.
    pub fn trim(&mut self, cutoff: u64) {
        let mut survivors: Vec<(u64, u16, u64, u16)> = Vec::with_capacity(self.len);
        for i in 0..self.ids.len() {
            if self.ids[i] != EMPTY_IDENT && self.times[i] >= cutoff {
                survivors.push((self.ids[i], self.asids[i], self.times[i], self.sigs[i]));
            }
        }
        self.ids.fill(EMPTY_IDENT);
        self.len = survivors.len();
        for &(id, asid, time, sig) in &survivors {
            let (slot, _) = self.probe(id, asid);
            self.ids[slot] = id;
            self.asids[slot] = asid;
            self.times[slot] = time;
            self.sigs[slot] = sig;
        }
    }
}

impl Default for BlockTimeMap {
    fn default() -> Self {
        BlockTimeMap::new()
    }
}

/// One sampled set's OPTgen state, all-flat: a fixed ring for the
/// occupancy vector and a [`BlockTimeMap`] for last-access times.
#[derive(Debug, Clone)]
pub struct SampledSet {
    /// Occupancy ring; logical index 0 is the oldest quantum.
    occ: [u8; WINDOW + 1],
    occ_start: usize,
    occ_len: usize,
    /// Set-local logical time of the next access.
    time: u64,
    /// Block identity -> (last access time, signature used at that
    /// access). Keyed by tagged identity so tenants' overlapping VAs
    /// never merge OPTgen generations.
    last: BlockTimeMap,
}

impl Default for SampledSet {
    fn default() -> Self {
        SampledSet::new()
    }
}

impl SampledSet {
    /// Creates an empty sampled set.
    pub fn new() -> Self {
        SampledSet {
            occ: [0; WINDOW + 1],
            occ_start: 0,
            occ_len: 0,
            time: 0,
            last: BlockTimeMap::new(),
        }
    }

    #[inline]
    fn occ_idx(&self, logical: usize) -> usize {
        (self.occ_start + logical) % (WINDOW + 1)
    }

    /// Occupancy-vector length (test hook).
    pub fn occ_len(&self) -> usize {
        self.occ_len
    }

    /// Tracked-block count (test hook).
    pub fn last_len(&self) -> usize {
        self.last.len()
    }

    /// Runs one OPTgen access for `block` with signature `sig`;
    /// returns the (signature, cache-friendly) training outcome, if
    /// this access closed a reuse interval inside the window.
    pub fn optgen_step(&mut self, block: TaggedBlock, sig: u16, ways: u8) -> Option<(u16, bool)> {
        let now = self.time;
        self.time += 1;

        let mut train: Option<(u16, bool)> = None;
        if let Some((t_prev, prev_sig)) = self.last.get(block) {
            let window_start = now.saturating_sub(self.occ_len as u64);
            if t_prev >= window_start {
                let start = (t_prev - window_start) as usize;
                let fits = (start..self.occ_len).all(|i| self.occ[self.occ_idx(i)] < ways);
                if fits {
                    for i in start..self.occ_len {
                        self.occ[self.occ_idx(i)] += 1;
                    }
                }
                train = Some((prev_sig, fits));
            }
        }
        self.last.insert(block, now, sig);
        // push_back(0)
        let tail = self.occ_idx(self.occ_len);
        self.occ[tail] = 0;
        self.occ_len += 1;
        if self.occ_len > WINDOW {
            // pop_front
            self.occ_start = (self.occ_start + 1) % (WINDOW + 1);
            self.occ_len -= 1;
            // Lazily trim stale block entries to bound memory.
            if self.last.len() > 4 * WINDOW {
                let cutoff = now.saturating_sub(WINDOW as u64);
                self.last.trim(cutoff);
            }
        }
        train
    }
}

/// The original map/deque-backed sampled set, retained as the
/// behavioral reference for [`SampledSet`] (equivalence-pinned by
/// proptest).
#[derive(Debug, Default)]
pub struct LegacySampledSet {
    occupancy: VecDeque<u8>,
    time: u64,
    last: HashMap<TaggedBlock, (u64, u16)>,
}

impl LegacySampledSet {
    /// Runs one OPTgen access (same contract as
    /// [`SampledSet::optgen_step`]).
    pub fn optgen_step(&mut self, block: TaggedBlock, sig: u16, ways: u8) -> Option<(u16, bool)> {
        let now = self.time;
        self.time += 1;

        let mut train: Option<(u16, bool)> = None;
        if let Some(&(t_prev, prev_sig)) = self.last.get(&block) {
            let window_start = now.saturating_sub(self.occupancy.len() as u64);
            if t_prev >= window_start {
                let start = (t_prev - window_start) as usize;
                let fits = self.occupancy.iter().skip(start).all(|&o| o < ways);
                if fits {
                    for o in self.occupancy.iter_mut().skip(start) {
                        *o += 1;
                    }
                }
                train = Some((prev_sig, fits));
            }
        }
        self.last.insert(block, (now, sig));
        self.occupancy.push_back(0);
        if self.occupancy.len() > WINDOW {
            self.occupancy.pop_front();
            if self.last.len() > 4 * WINDOW {
                let cutoff = now.saturating_sub(WINDOW as u64);
                self.last.retain(|_, &mut (t, _)| t >= cutoff);
            }
        }
        train
    }
}

/// Per-line replacement metadata.
#[derive(Clone, Copy, Debug, Default)]
struct LineMeta {
    rrpv: u8,
    signature: u16,
    friendly: bool,
}

/// Hawkeye (or Harmony when `prefetch_aware`) replacement policy.
#[derive(Debug)]
pub struct HawkeyePolicy {
    ways: usize,
    sample_mask: usize,
    prefetch_aware: bool,
    lines: Vec<LineMeta>,
    predictor: Vec<SatCounter>,
    /// Dense sampler array: sampled set `s` (where
    /// `s % sample_mask == 0`) lives at index `s / sample_mask`.
    sampled: Vec<SampledSet>,
}

impl HawkeyePolicy {
    /// Creates Hawkeye state; `prefetch_aware` selects Harmony.
    pub fn new(geom: CacheGeometry, prefetch_aware: bool) -> Self {
        // Sample roughly one in eight sets (at least one).
        let stride = (geom.sets() / 8).max(1);
        let sampled_sets = (geom.sets().saturating_sub(1)) / stride + 1;
        HawkeyePolicy {
            ways: geom.ways(),
            sample_mask: stride,
            prefetch_aware,
            lines: vec![LineMeta::default(); geom.lines()],
            predictor: vec![SatCounter::new(3, 4); PREDICTOR_ENTRIES],
            sampled: vec![SampledSet::new(); sampled_sets],
        }
    }

    fn signature(&self, block: TaggedBlock, is_prefetch: bool) -> u16 {
        let hashed = if self.prefetch_aware && is_prefetch {
            mix64(block.ident()) ^ 0x5bd1_e995
        } else {
            mix64(block.ident())
        };
        fold(hashed, 13) as u16
    }

    #[inline]
    fn is_sampled(&self, set: usize) -> bool {
        set.is_multiple_of(self.sample_mask)
    }

    fn predict_friendly(&self, sig: u16) -> bool {
        self.predictor[sig as usize % PREDICTOR_ENTRIES].is_high()
    }

    fn train(&mut self, sig: u16, friendly: bool) {
        self.predictor[sig as usize % PREDICTOR_ENTRIES].update(friendly);
    }

    /// Runs OPTgen for one access to a sampled set; trains the
    /// predictor with what OPT would have done.
    fn optgen_access(&mut self, set: usize, ctx: &AccessCtx<'_>) {
        let ways = self.ways as u8;
        let sig = self.signature(ctx.tagged(), ctx.is_prefetch);
        let entry = &mut self.sampled[set / self.sample_mask];
        if let Some((sig, friendly)) = entry.optgen_step(ctx.tagged(), sig, ways) {
            self.train(sig, friendly);
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl ReplacementPolicy for HawkeyePolicy {
    fn name(&self) -> &'static str {
        if self.prefetch_aware {
            "harmony"
        } else {
            "hawkeye"
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        if self.is_sampled(set) {
            self.optgen_access(set, ctx);
        }
        let sig = self.signature(ctx.tagged(), ctx.is_prefetch);
        let friendly = self.predict_friendly(sig);
        let i = self.idx(set, way);
        self.lines[i].signature = sig;
        self.lines[i].friendly = friendly;
        // Hits always promote: a line being used is not dead, whatever
        // the predictor thought at fill time.
        self.lines[i].rrpv = 0;
    }

    fn on_miss(&mut self, set: usize, ctx: &AccessCtx<'_>) {
        if self.is_sampled(set) {
            self.optgen_access(set, ctx);
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        let sig = self.signature(ctx.tagged(), ctx.is_prefetch);
        let friendly = self.predict_friendly(sig);
        let i = self.idx(set, way);
        if friendly {
            // Age other friendly lines so older friendly blocks become
            // eviction candidates before newer ones.
            let base = self.idx(set, 0);
            for w in 0..self.ways {
                let l = &mut self.lines[base + w];
                if w != way && l.friendly && l.rrpv < RRPV_MAX - 1 {
                    l.rrpv += 1;
                }
            }
        }
        self.lines[i] = LineMeta {
            rrpv: if friendly { 0 } else { RRPV_MAX },
            signature: sig,
            friendly,
        };
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        // Detrain: evicting a cache-friendly line means the predictor
        // overpromised — OPT would not have kept it around.
        let i = self.idx(set, way);
        if self.lines[i].friendly {
            let sig = self.lines[i].signature;
            self.train(sig, false);
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.lines[i] = LineMeta {
            rrpv: RRPV_MAX,
            ..LineMeta::default()
        };
    }

    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        self.peek_victim(set, blocks, ctx)
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = set * self.ways;
        // Prefer a cache-averse line (RRPV max), else the oldest
        // friendly line (highest RRPV).
        self.lines[base..base + self.ways]
            .iter()
            .enumerate()
            .max_by_key(|&(i, l)| (l.rrpv, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn optgen_trains_friendly_on_short_reuse() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = HawkeyePolicy::new(geom, false);
        // Repeated accesses to the same block in a sampled set: OPT
        // would always hit -> signature becomes friendly.
        for i in 0..20 {
            p.on_miss(0, &ctx(8, i));
        }
        let sig = p.signature(tb(8), false);
        assert!(p.predictor[sig as usize % PREDICTOR_ENTRIES].value() >= 4);
    }

    #[test]
    fn optgen_trains_averse_on_overflow() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = HawkeyePolicy::new(geom, false);
        // Stream many distinct blocks then revisit: occupancy full ->
        // averse. Blocks all map to set 0 (1 set).
        for round in 0..6u64 {
            for b in 0..8u64 {
                p.on_miss(0, &ctx(b, round * 8 + b));
            }
        }
        let sig = p.signature(tb(3), false);
        assert!(
            p.predictor[sig as usize % PREDICTOR_ENTRIES].value() < 4,
            "streaming signature should be averse"
        );
    }

    #[test]
    fn averse_fills_are_evicted_first() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = HawkeyePolicy::new(geom, false);
        // Make block 5's signature averse manually.
        let sig5 = p.signature(tb(5), false);
        p.predictor[sig5 as usize % PREDICTOR_ENTRIES].set(0);
        let mut c = SetAssocCache::new(geom, p);
        c.fill(&ctx(1, 0));
        c.fill(&ctx(5, 1));
        let evicted = c.fill(&ctx(9, 2));
        assert_eq!(evicted, Some(tb(5)));
    }

    #[test]
    fn harmony_separates_prefetch_signatures() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let p = HawkeyePolicy::new(geom, true);
        let b = tb(77);
        assert_ne!(p.signature(b, false), p.signature(b, true));
        let p = HawkeyePolicy::new(geom, false);
        assert_eq!(p.signature(b, false), p.signature(b, true));
    }

    #[test]
    fn occupancy_window_is_bounded() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = HawkeyePolicy::new(geom, false);
        for i in 0..1000u64 {
            p.on_miss(0, &ctx(i % 100, i));
        }
        let s = &p.sampled[0];
        assert!(s.occ_len() <= WINDOW);
        assert!(s.last_len() <= 4 * WINDOW + 1);
    }

    #[test]
    fn sampler_matches_legacy_on_a_dense_sequence() {
        // Deterministic spot-check of the proptest pin: the flat
        // sampler must emit the exact training sequence of the
        // map/deque one.
        let mut flat = SampledSet::new();
        let mut legacy = LegacySampledSet::default();
        let mut seq = 0u64;
        for i in 0..2000u64 {
            seq = seq.wrapping_mul(6364136223846793005).wrapping_add(i);
            let b = tb(seq % 90);
            let sig = (seq % 512) as u16;
            assert_eq!(
                flat.optgen_step(b, sig, 2),
                legacy.optgen_step(b, sig, 2),
                "step {i}"
            );
        }
    }

    #[test]
    fn block_time_map_trim_drops_stale_entries() {
        let mut m = BlockTimeMap::new();
        for t in 0..10u64 {
            m.insert(tb(t), t, t as u16);
        }
        m.trim(5);
        assert_eq!(m.len(), 5);
        assert_eq!(m.get(tb(9)), Some((9, 9)));
        assert_eq!(m.get(tb(1)), None);
    }
}

//! Least-recently-used replacement — the paper's baseline i-cache
//! policy (Table II).

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::{LruStamps, TaggedBlock};

/// True-LRU replacement using per-set recency stamps.
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
/// use acic_cache::policy::lru::LruPolicy;
/// use acic_types::BlockAddr;
///
/// let geom = CacheGeometry::from_sets_ways(1, 2);
/// let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
/// for (i, b) in [10u64, 20].iter().enumerate() {
///     c.fill(&AccessCtx::demand(BlockAddr::new(*b), i as u64));
/// }
/// c.access(&AccessCtx::demand(BlockAddr::new(10), 2)); // 20 becomes LRU
/// let evicted = c.fill(&AccessCtx::demand(BlockAddr::new(30), 3));
/// assert_eq!(evicted.map(|t| t.block), Some(BlockAddr::new(20)));
/// ```
#[derive(Debug)]
pub struct LruPolicy {
    sets: Vec<LruStamps>,
}

impl LruPolicy {
    /// Creates LRU state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        LruPolicy {
            sets: (0..geom.sets())
                .map(|_| LruStamps::new(geom.ways()))
                .collect(),
        }
    }

    /// Recency stamps of one set (exposed for tests and the storage
    /// model).
    pub fn stamps(&self, set: usize) -> &LruStamps {
        &self.sets[set]
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        self.sets[set].touch(way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        self.sets[set].touch(way);
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.sets[set].clear(way);
    }

    fn victim_way(&mut self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        self.sets[set].lru_way()
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        self.sets[set].lru_way()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    #[test]
    fn evicts_least_recently_touched() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
        for i in 0..4u64 {
            c.fill(&AccessCtx::demand(BlockAddr::new(i), i));
        }
        // Touch 0 and 1; LRU should now be 2.
        c.access(&AccessCtx::demand(BlockAddr::new(0), 10));
        c.access(&AccessCtx::demand(BlockAddr::new(1), 11));
        let evicted = c.fill(&AccessCtx::demand(BlockAddr::new(9), 12));
        assert_eq!(evicted, Some(TaggedBlock::untagged(BlockAddr::new(2))));
    }

    #[test]
    fn peek_matches_victim() {
        let geom = CacheGeometry::from_sets_ways(1, 3);
        let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
        for i in 0..3u64 {
            c.fill(&AccessCtx::demand(BlockAddr::new(i), i));
        }
        let ctx = AccessCtx::demand(BlockAddr::new(100), 50);
        let peek = c.contender(&ctx).unwrap();
        let evicted = c.fill(&ctx).unwrap();
        assert_eq!(peek, evicted);
    }

    #[test]
    fn lru_stack_order_after_sequence() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = LruPolicy::new(geom);
        let ctx = AccessCtx::demand(BlockAddr::new(0), 0);
        p.on_fill(0, 0, &ctx);
        p.on_fill(0, 1, &ctx);
        p.on_fill(0, 2, &ctx);
        p.on_fill(0, 3, &ctx);
        p.on_hit(0, 0, &ctx);
        assert_eq!(p.stamps(0).recency_order(), vec![0, 3, 2, 1]);
    }
}

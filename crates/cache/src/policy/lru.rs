//! Least-recently-used replacement — the paper's baseline i-cache
//! policy (Table II).

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::{LruStamps, TaggedBlock};

/// True-LRU replacement using recency stamps.
///
/// Stamps live in one flat `sets * ways` array ordered by a single
/// global clock — victim selection only ever compares stamps *within*
/// a set, so a global clock produces the identical relative order a
/// per-set clock would (same victims, bit for bit) while keeping the
/// whole policy in one allocation. The L2/L3 tag stores probe this on
/// every simulated miss; per-set `Vec`s cost a pointer chase per
/// touch at thousands of sets.
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
/// use acic_cache::policy::lru::LruPolicy;
/// use acic_types::BlockAddr;
///
/// let geom = CacheGeometry::from_sets_ways(1, 2);
/// let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
/// for (i, b) in [10u64, 20].iter().enumerate() {
///     c.fill(&AccessCtx::demand(BlockAddr::new(*b), i as u64));
/// }
/// c.access(&AccessCtx::demand(BlockAddr::new(10), 2)); // 20 becomes LRU
/// let evicted = c.fill(&AccessCtx::demand(BlockAddr::new(30), 3));
/// assert_eq!(evicted.map(|t| t.block), Some(BlockAddr::new(20)));
/// ```
#[derive(Debug)]
pub struct LruPolicy {
    ways: usize,
    /// Per-line stamps; 0 means "never touched" (preferred victim).
    stamps: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    /// Creates LRU state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        LruPolicy {
            ways: geom.ways(),
            stamps: vec![0; geom.lines()],
            clock: 0,
        }
    }

    /// Recency stamps of one set, materialized as [`LruStamps`]
    /// (exposed for tests and the storage model).
    pub fn stamps(&self, set: usize) -> LruStamps {
        let base = set * self.ways;
        LruStamps::from_stamps(&self.stamps[base..base + self.ways])
    }

    #[inline]
    fn lru_way(&self, set: usize) -> usize {
        let base = set * self.ways;
        let mut way = 0;
        let mut best = u64::MAX;
        for (w, &s) in self.stamps[base..base + self.ways].iter().enumerate() {
            if s < best {
                best = s;
                way = w;
            }
        }
        way
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        self.stamps[set * self.ways + way] = 0;
    }

    #[inline]
    fn victim_way(&mut self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        self.lru_way(set)
    }

    #[inline]
    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        self.lru_way(set)
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }

    fn prefetch_hint(&self, set: usize) {
        crate::cache::host_prefetch(&self.stamps[set * self.ways]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    #[test]
    fn evicts_least_recently_touched() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
        for i in 0..4u64 {
            c.fill(&AccessCtx::demand(BlockAddr::new(i), i));
        }
        // Touch 0 and 1; LRU should now be 2.
        c.access(&AccessCtx::demand(BlockAddr::new(0), 10));
        c.access(&AccessCtx::demand(BlockAddr::new(1), 11));
        let evicted = c.fill(&AccessCtx::demand(BlockAddr::new(9), 12));
        assert_eq!(evicted, Some(TaggedBlock::untagged(BlockAddr::new(2))));
    }

    #[test]
    fn peek_matches_victim() {
        let geom = CacheGeometry::from_sets_ways(1, 3);
        let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
        for i in 0..3u64 {
            c.fill(&AccessCtx::demand(BlockAddr::new(i), i));
        }
        let ctx = AccessCtx::demand(BlockAddr::new(100), 50);
        let peek = c.contender(&ctx).unwrap();
        let evicted = c.fill(&ctx).unwrap();
        assert_eq!(peek, evicted);
    }

    #[test]
    fn lru_stack_order_after_sequence() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = LruPolicy::new(geom);
        let ctx = AccessCtx::demand(BlockAddr::new(0), 0);
        p.on_fill(0, 0, &ctx);
        p.on_fill(0, 1, &ctx);
        p.on_fill(0, 2, &ctx);
        p.on_fill(0, 3, &ctx);
        p.on_hit(0, 0, &ctx);
        assert_eq!(p.stamps(0).recency_order(), vec![0, 3, 2, 1]);
    }
}

//! GHRP — global-history reuse prediction for instruction caches
//! (Mirbagher Ajorpaz et al., ISCA 2018), the strongest prior i-cache
//! replacement policy in the paper's comparison.
//!
//! GHRP hashes the fetched block's signature with a global history of
//! recent fetch signatures, indexes three skewed prediction tables of
//! 2-bit counters, and takes a majority vote to predict whether a line
//! is *dead*. Dead-predicted lines are preferred victims. Tables are
//! trained with the standard dead-block rule: an eviction marks the
//! line's last-access indices dead; a hit marks them live.
//!
//! Parameters follow Table IV: three 4096-entry tables, 2-bit
//! counters, 16-bit signature and history.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::hash::{fold, mix64};
use acic_types::{LruStamps, SatCounter, TaggedBlock};

/// Prediction-table entries (4096 each, Table IV).
const TABLE_ENTRIES: usize = 4096;
/// Number of skewed tables.
const NUM_TABLES: usize = 3;
/// History register width (16-bit, Table IV).
const HISTORY_BITS: u32 = 16;

/// Per-line GHRP metadata: table indices of the last access and the
/// dead prediction made then.
#[derive(Clone, Copy, Debug, Default)]
struct LineMeta {
    indices: [u16; NUM_TABLES],
    predicted_dead: bool,
    valid: bool,
}

/// GHRP replacement policy.
#[derive(Debug)]
pub struct GhrpPolicy {
    ways: usize,
    history: u32,
    tables: Vec<SatCounter>, // NUM_TABLES contiguous banks
    lines: Vec<LineMeta>,
    lru: Vec<LruStamps>,
}

impl GhrpPolicy {
    /// Creates GHRP state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        GhrpPolicy {
            ways: geom.ways(),
            history: 0,
            tables: vec![SatCounter::new(2, 0); NUM_TABLES * TABLE_ENTRIES],
            lines: vec![LineMeta::default(); geom.lines()],
            lru: (0..geom.sets())
                .map(|_| LruStamps::new(geom.ways()))
                .collect(),
        }
    }

    fn signature(&self, block: TaggedBlock) -> u32 {
        (fold(mix64(block.ident()), HISTORY_BITS) as u32) ^ self.history
    }

    fn indices(&self, block: TaggedBlock) -> [u16; NUM_TABLES] {
        let sig = self.signature(block) as u64;
        [
            fold(mix64(sig), 12) as u16,
            fold(mix64(sig ^ 0x9e37), 12) as u16,
            fold(mix64(sig ^ 0x79b9_7f4a), 12) as u16,
        ]
    }

    fn counter(&self, table: usize, idx: u16) -> SatCounter {
        self.tables[table * TABLE_ENTRIES + idx as usize]
    }

    fn predict_dead(&self, indices: &[u16; NUM_TABLES]) -> bool {
        let votes = (0..NUM_TABLES)
            .filter(|&t| self.counter(t, indices[t]).is_high())
            .count();
        votes * 2 > NUM_TABLES
    }

    fn train(&mut self, indices: &[u16; NUM_TABLES], dead: bool) {
        for (t, &idx) in indices.iter().enumerate() {
            self.tables[t * TABLE_ENTRIES + idx as usize].update(dead);
        }
    }

    fn push_history(&mut self, block: TaggedBlock) {
        let piece = fold(mix64(block.ident()), 3) as u32;
        self.history = ((self.history << 3) ^ piece) & ((1 << HISTORY_BITS) - 1);
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Records a new access generation for a line: store current
    /// indices and prediction, then advance the global history.
    fn stamp_line(&mut self, set: usize, way: usize, block: TaggedBlock) {
        let indices = self.indices(block);
        let dead = self.predict_dead(&indices);
        let i = self.idx(set, way);
        self.lines[i] = LineMeta {
            indices,
            predicted_dead: dead,
            valid: true,
        };
        self.lru[set].touch(way);
        self.push_history(block);
    }
}

impl ReplacementPolicy for GhrpPolicy {
    fn name(&self) -> &'static str {
        "ghrp"
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        // The previous access's prediction turned out live.
        let i = self.idx(set, way);
        if self.lines[i].valid {
            let indices = self.lines[i].indices;
            self.train(&indices, false);
        }
        self.stamp_line(set, way, ctx.tagged());
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        self.stamp_line(set, way, ctx.tagged());
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        // The line died: its last access's indices were dead.
        let i = self.idx(set, way);
        if self.lines[i].valid {
            let indices = self.lines[i].indices;
            self.train(&indices, true);
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.lines[i].valid = false;
        self.lru[set].clear(way);
    }

    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        self.peek_victim(set, blocks, ctx)
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        // Dead-predicted lines first (LRU among them), else plain LRU.
        let base = self.idx(set, 0);
        let mut best: Option<(u64, usize)> = None;
        for w in 0..self.ways {
            if self.lines[base + w].predicted_dead {
                let stamp = self.lru[set].stamp(w);
                if best.is_none_or(|(s, _)| stamp < s) {
                    best = Some((stamp, w));
                }
            }
        }
        match best {
            Some((_, w)) => w,
            None => self.lru[set].lru_way(),
        }
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn falls_back_to_lru_when_nothing_dead() {
        let geom = CacheGeometry::from_sets_ways(1, 3);
        let mut c = SetAssocCache::new(geom, GhrpPolicy::new(geom));
        for i in 0..3u64 {
            c.fill(&ctx(i, i));
        }
        c.access(&ctx(0, 10));
        let evicted = c.fill(&ctx(9, 11));
        assert_eq!(evicted, Some(tb(1)));
    }

    #[test]
    fn training_marks_streaming_blocks_dead() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = GhrpPolicy::new(geom);
        // Simulate the same block being filled and evicted repeatedly
        // with a stable history: its indices become dead-voting.
        for _ in 0..4 {
            p.history = 0; // stabilize history so indices repeat
            p.on_fill(0, 0, &ctx(42, 0));
            p.on_evict(0, 0, tb(42), &ctx(1, 1));
        }
        p.history = 0;
        let indices = p.indices(tb(42));
        assert!(p.predict_dead(&indices));
    }

    #[test]
    fn hits_train_live() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = GhrpPolicy::new(geom);
        for _ in 0..4 {
            p.history = 0;
            p.on_fill(0, 0, &ctx(42, 0));
            p.on_evict(0, 0, tb(42), &ctx(1, 1));
        }
        // Now hits should walk the counters back down.
        for _ in 0..4 {
            p.history = 0;
            p.on_fill(0, 0, &ctx(42, 0));
            p.history = 0;
            p.on_hit(0, 0, &ctx(42, 1));
        }
        p.history = 0;
        let indices = p.indices(tb(42));
        assert!(!p.predict_dead(&indices));
    }

    #[test]
    fn history_changes_signature() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = GhrpPolicy::new(geom);
        let s1 = p.signature(tb(5));
        p.push_history(tb(77));
        let s2 = p.signature(tb(5));
        assert_ne!(s1, s2);
    }

    #[test]
    fn storage_parameters_match_table_iv() {
        // 3 tables x 4096 entries x 2-bit = 3 KB; 16-bit history.
        assert_eq!(NUM_TABLES * TABLE_ENTRIES * 2 / 8, 3072);
        assert_eq!(HISTORY_BITS, 16);
    }
}

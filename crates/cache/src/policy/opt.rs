//! Belady's OPT — the unimplementable upper bound the paper measures
//! everything against (Table IV: "evict the block that is reused
//! furthest in the future").
//!
//! Each line remembers the next-use position its block reported at its
//! most recent access (supplied through [`AccessCtx::next_use`] by the
//! oracle-aware simulation driver); the victim is the line whose next
//! use is furthest away, with "never used again"
//! ([`acic_trace::NO_NEXT_USE`]) winning outright.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_trace::NO_NEXT_USE;
use acic_types::TaggedBlock;

/// Oracle OPT replacement.
///
/// # Panics
///
/// Debug builds assert that accesses carry a `next_use` value; running
/// OPT without an oracle silently degrades to FIFO-like behavior in
/// release builds and is a driver bug.
#[derive(Debug)]
pub struct OptPolicy {
    ways: usize,
    next_use: Vec<u64>,
}

impl OptPolicy {
    /// Creates OPT state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        OptPolicy {
            ways: geom.ways(),
            next_use: vec![NO_NEXT_USE; geom.lines()],
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl ReplacementPolicy for OptPolicy {
    fn name(&self) -> &'static str {
        "opt"
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        self.next_use[i] = ctx.next_use;
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        self.next_use[i] = ctx.next_use;
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.next_use[i] = NO_NEXT_USE;
    }

    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        self.peek_victim(set, blocks, ctx)
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = set * self.ways;
        self.next_use[base..base + self.ways]
            .iter()
            .enumerate()
            .max_by_key(|&(i, &n)| (n, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx_with(b: u64, next: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), 0).with_next_use(next)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn evicts_furthest_future_use() {
        let geom = CacheGeometry::from_sets_ways(1, 3);
        let mut c = SetAssocCache::new(geom, OptPolicy::new(geom));
        c.fill(&ctx_with(1, 10));
        c.fill(&ctx_with(2, 100));
        c.fill(&ctx_with(3, 50));
        let evicted = c.fill(&ctx_with(4, 20));
        assert_eq!(evicted, Some(tb(2)));
    }

    #[test]
    fn never_reused_wins_eviction() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut c = SetAssocCache::new(geom, OptPolicy::new(geom));
        c.fill(&ctx_with(1, NO_NEXT_USE));
        c.fill(&ctx_with(2, 5));
        let evicted = c.fill(&ctx_with(3, 7));
        assert_eq!(evicted, Some(tb(1)));
    }

    #[test]
    fn hit_refreshes_next_use() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut c = SetAssocCache::new(geom, OptPolicy::new(geom));
        c.fill(&ctx_with(1, 5));
        c.fill(&ctx_with(2, 50));
        // Block 1 is accessed; its *new* next use is far away.
        c.access(&ctx_with(1, 1000));
        let evicted = c.fill(&ctx_with(3, 60));
        assert_eq!(evicted, Some(tb(1)));
    }

    #[test]
    fn opt_never_worse_than_lru_on_cyclic_pattern() {
        use crate::policy::lru::LruPolicy;
        // Classic LRU-pathological cyclic access over ways+1 blocks.
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let seq: Vec<u64> = (0..60).map(|i| i % 3).collect();
        let blocks: Vec<BlockAddr> = seq.iter().map(|&b| BlockAddr::new(b)).collect();
        let oracle = acic_trace::ReuseOracle::from_sequence(&blocks);

        let mut misses_opt = 0;
        let mut c = SetAssocCache::new(geom, OptPolicy::new(geom));
        let mut cur = oracle.cursor();
        for (i, &b) in blocks.iter().enumerate() {
            let pos = cur.advance(b);
            debug_assert_eq!(pos, i as u64);
            let ctx = AccessCtx::demand(b, i as u64).with_next_use(cur.next_use_of(b));
            if !c.access(&ctx) {
                misses_opt += 1;
                c.fill(&ctx);
            }
        }

        let mut misses_lru = 0;
        let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
        for (i, &b) in blocks.iter().enumerate() {
            let ctx = AccessCtx::demand(b, i as u64);
            if !c.access(&ctx) {
                misses_lru += 1;
                c.fill(&ctx);
            }
        }
        assert!(
            misses_opt < misses_lru,
            "OPT {misses_opt} vs LRU {misses_lru}"
        );
    }
}

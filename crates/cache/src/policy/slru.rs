//! Segmented LRU — the base replacement policy of DSB (Gao &
//! Wilkerson, JWAC 2010 cache replacement championship entry).
//!
//! Each set is split into a probationary and a protected segment:
//! fills enter probationary; a hit promotes to protected (demoting the
//! LRU protected line if the segment is full); victims come from the
//! probationary segment first.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::{LruStamps, TaggedBlock};

/// Per-line segment membership.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Segment {
    #[default]
    Probationary,
    Protected,
}

/// Segmented-LRU replacement.
///
/// The protected segment holds at most half the ways (rounded up).
#[derive(Debug)]
pub struct SlruPolicy {
    ways: usize,
    protected_cap: usize,
    segment: Vec<Segment>,
    lru: Vec<LruStamps>,
}

impl SlruPolicy {
    /// Creates SLRU state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        SlruPolicy {
            ways: geom.ways(),
            protected_cap: geom.ways().div_ceil(2),
            segment: vec![Segment::Probationary; geom.lines()],
            lru: (0..geom.sets())
                .map(|_| LruStamps::new(geom.ways()))
                .collect(),
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn protected_count(&self, set: usize) -> usize {
        let base = self.idx(set, 0);
        self.segment[base..base + self.ways]
            .iter()
            .filter(|&&s| s == Segment::Protected)
            .count()
    }

    fn victim_in_segment(&self, set: usize, seg: Segment) -> Option<usize> {
        let base = self.idx(set, 0);
        (0..self.ways)
            .filter(|&w| self.segment[base + w] == seg)
            .min_by_key(|&w| (self.lru[set].stamp(w), w))
    }
}

impl ReplacementPolicy for SlruPolicy {
    fn name(&self) -> &'static str {
        "slru"
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        if self.segment[i] == Segment::Probationary {
            // Promote; demote the LRU protected line if over capacity.
            if self.protected_count(set) >= self.protected_cap {
                if let Some(demote) = self.victim_in_segment(set, Segment::Protected) {
                    let di = self.idx(set, demote);
                    self.segment[di] = Segment::Probationary;
                }
            }
            self.segment[i] = Segment::Protected;
        }
        self.lru[set].touch(way);
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        self.segment[i] = Segment::Probationary;
        self.lru[set].touch(way);
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.segment[i] = Segment::Probationary;
        self.lru[set].clear(way);
    }

    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        self.peek_victim(set, blocks, ctx)
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        self.victim_in_segment(set, Segment::Probationary)
            .or_else(|| self.victim_in_segment(set, Segment::Protected))
            .expect("at least one way")
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    #[test]
    fn protected_blocks_survive_streaming() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut c = SetAssocCache::new(geom, SlruPolicy::new(geom));
        // Block 0 is hit (protected); blocks 1..=3 stream through.
        c.fill(&ctx(0, 0));
        c.access(&ctx(0, 1));
        for b in 1..10u64 {
            c.fill(&ctx(b, b + 1));
        }
        assert!(
            c.contains(BlockAddr::new(0)),
            "protected line evicted by stream"
        );
    }

    #[test]
    fn promotion_respects_capacity() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = SlruPolicy::new(geom);
        for w in 0..4 {
            p.on_fill(0, w, &ctx(w as u64, w as u64));
        }
        // Promote three lines; capacity is 2, so only 2 stay protected.
        p.on_hit(0, 0, &ctx(0, 10));
        p.on_hit(0, 1, &ctx(1, 11));
        p.on_hit(0, 2, &ctx(2, 12));
        assert_eq!(p.protected_count(0), 2);
        // Way 0 (oldest protected) was demoted.
        assert_eq!(p.segment[0], Segment::Probationary);
    }

    #[test]
    fn victim_prefers_probationary() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = SlruPolicy::new(geom);
        p.on_fill(0, 0, &ctx(0, 0));
        p.on_fill(0, 1, &ctx(1, 1));
        p.on_hit(0, 0, &ctx(0, 2)); // way 0 protected
        let blocks = vec![
            TaggedBlock::untagged(BlockAddr::new(0)),
            TaggedBlock::untagged(BlockAddr::new(1)),
        ];
        assert_eq!(p.peek_victim(0, &blocks, &ctx(9, 3)), 1);
    }
}

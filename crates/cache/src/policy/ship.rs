//! SHiP — signature-based hit prediction (Wu et al., MICRO 2011),
//! with the paper's parameters: 13-bit signatures, an 8K-entry SHCT of
//! 2-bit counters, over an SRRIP base (Table IV).
//!
//! Adaptation note: SHiP for data caches signs blocks by the missing
//! load's PC; an instruction fetch has no load PC, so — as with the
//! paper's other d-cache transplants — we sign by a hash of the block
//! address itself, which groups re-reference behavior per code region.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::srrip::{RRPV_INSERT, RRPV_MAX};
use crate::policy::ReplacementPolicy;
use acic_types::hash::{fold, mix64};
use acic_types::{SatCounter, TaggedBlock};

/// Signature width in bits (Table IV).
const SIG_BITS: u32 = 13;
/// SHCT entries (8K, Table IV).
const SHCT_ENTRIES: usize = 1 << SIG_BITS;

/// Per-line SHiP metadata.
#[derive(Clone, Copy, Debug, Default)]
struct LineMeta {
    rrpv: u8,
    signature: u16,
    reused: bool,
}

/// SHiP replacement policy.
///
/// Blocks whose signature has never produced a re-reference
/// (counter == 0) are inserted with a distant prediction and evicted
/// first; all other blocks follow SRRIP.
#[derive(Debug)]
pub struct ShipPolicy {
    ways: usize,
    lines: Vec<LineMeta>,
    shct: Vec<SatCounter>,
}

impl ShipPolicy {
    /// Creates SHiP state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        ShipPolicy {
            ways: geom.ways(),
            lines: vec![LineMeta::default(); geom.lines()],
            shct: vec![SatCounter::new(2, 1); SHCT_ENTRIES],
        }
    }

    /// Signatures hash the tagged identity, so each tenant's code
    /// regions train their own SHCT counters (identical to hashing
    /// the bare block address for the host space).
    fn signature(block: TaggedBlock) -> u16 {
        fold(mix64(block.ident()), SIG_BITS) as u16
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// SHCT counter value for a block's signature (test hook).
    pub fn counter_for(&self, block: TaggedBlock) -> u16 {
        self.shct[Self::signature(block) as usize].value()
    }
}

impl ReplacementPolicy for ShipPolicy {
    fn name(&self) -> &'static str {
        "ship"
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        self.lines[i].rrpv = 0;
        if !self.lines[i].reused {
            self.lines[i].reused = true;
            self.shct[self.lines[i].signature as usize].increment();
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        let sig = Self::signature(ctx.tagged());
        let predicted_dead = self.shct[sig as usize].is_min();
        let i = self.idx(set, way);
        self.lines[i] = LineMeta {
            rrpv: if predicted_dead {
                RRPV_MAX
            } else {
                RRPV_INSERT
            },
            signature: sig,
            reused: false,
        };
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        if !self.lines[i].reused {
            self.shct[self.lines[i].signature as usize].decrement();
        }
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.lines[i] = LineMeta {
            rrpv: RRPV_MAX,
            ..LineMeta::default()
        };
    }

    fn victim_way(&mut self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = self.idx(set, 0);
        loop {
            if let Some(w) = self.lines[base..base + self.ways]
                .iter()
                .position(|l| l.rrpv >= RRPV_MAX)
            {
                return w;
            }
            for l in &mut self.lines[base..base + self.ways] {
                l.rrpv += 1;
            }
        }
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = self.idx(set, 0);
        self.lines[base..base + self.ways]
            .iter()
            .enumerate()
            .max_by_key(|&(i, l)| (l.rrpv, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn unreused_blocks_train_signature_down() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut c = SetAssocCache::new(geom, ShipPolicy::new(geom));
        // Fill and evict block 1 twice without reuse; its signature
        // counter (init 1) should hit 0.
        c.fill(&ctx(1, 0));
        c.fill(&ctx(2, 1));
        c.fill(&ctx(3, 2)); // evicts 1 (same RRPV, way 0)
        let _ = c;
    }

    #[test]
    fn reuse_trains_counter_up() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = ShipPolicy::new(geom);
        let b = tb(7);
        let before = p.counter_for(b);
        p.on_fill(0, 0, &ctx(7, 0));
        p.on_hit(0, 0, &ctx(7, 1));
        assert_eq!(p.counter_for(b), before + 1);
        // Second hit on the same generation does not double-train.
        p.on_hit(0, 0, &ctx(7, 2));
        assert_eq!(p.counter_for(b), before + 1);
    }

    #[test]
    fn dead_signature_inserts_distant() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = ShipPolicy::new(geom);
        let b = tb(9);
        // Drive the signature counter to zero via dead evictions.
        p.on_fill(0, 0, &ctx(9, 0));
        p.on_evict(0, 0, b, &ctx(1, 1));
        assert_eq!(p.counter_for(b), 0);
        p.on_fill(0, 1, &ctx(9, 2));
        assert_eq!(p.lines[1].rrpv, RRPV_MAX);
    }

    #[test]
    fn distinct_blocks_usually_have_distinct_signatures() {
        let collisions = (0..1000u64)
            .filter(|&i| ShipPolicy::signature(tb(i)) == ShipPolicy::signature(tb(i + 1_000_000)))
            .count();
        assert!(
            collisions < 10,
            "too many signature collisions: {collisions}"
        );
    }

    #[test]
    fn tenants_have_separate_signatures() {
        use acic_types::Asid;
        let host = tb(7);
        let tenant = BlockAddr::new(7).with_asid(Asid::new(1));
        assert_ne!(
            ShipPolicy::signature(host),
            ShipPolicy::signature(tenant),
            "same VA in different spaces must train different counters"
        );
    }
}

//! SRRIP — static re-reference interval prediction (Jaleel et al.,
//! ISCA 2010), with the paper's 2-bit RRPV configuration (Table IV).

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::TaggedBlock;

/// Width of the re-reference prediction value in bits.
pub const RRPV_BITS: u32 = 2;
/// Maximum (distant) RRPV.
pub const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;
/// Insertion RRPV ("long re-reference interval": max − 1).
pub const RRPV_INSERT: u8 = RRPV_MAX - 1;

/// SRRIP replacement: blocks are inserted with a long re-reference
/// prediction, promoted to near-immediate on hit, and the victim is
/// the first block predicted distant (aging the set if none is).
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
/// use acic_cache::policy::srrip::SrripPolicy;
/// use acic_types::BlockAddr;
///
/// let geom = CacheGeometry::from_sets_ways(1, 2);
/// let mut c = SetAssocCache::new(geom, SrripPolicy::new(geom));
/// c.fill(&AccessCtx::demand(BlockAddr::new(1), 0));
/// c.access(&AccessCtx::demand(BlockAddr::new(1), 1)); // promote to RRPV 0
/// c.fill(&AccessCtx::demand(BlockAddr::new(2), 2));
/// // Block 2 (RRPV 2) ages out before block 1 (RRPV 0).
/// assert_eq!(
///     c.fill(&AccessCtx::demand(BlockAddr::new(3), 3)).map(|t| t.block),
///     Some(BlockAddr::new(2)),
/// );
/// ```
#[derive(Debug)]
pub struct SrripPolicy {
    ways: usize,
    rrpv: Vec<u8>,
}

impl SrripPolicy {
    /// Creates SRRIP state for the geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        SrripPolicy {
            ways: geom.ways(),
            rrpv: vec![RRPV_MAX; geom.lines()],
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn victim_scan(rrpv: &[u8]) -> Option<usize> {
        rrpv.iter().position(|&r| r >= RRPV_MAX)
    }
}

impl ReplacementPolicy for SrripPolicy {
    fn name(&self) -> &'static str {
        "srrip"
    }

    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        self.rrpv[i] = 0;
    }

    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx<'_>) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_INSERT;
    }

    fn on_invalidate(&mut self, set: usize, way: usize) {
        let i = self.idx(set, way);
        self.rrpv[i] = RRPV_MAX;
    }

    fn victim_way(&mut self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = self.idx(set, 0);
        loop {
            if let Some(w) = Self::victim_scan(&self.rrpv[base..base + self.ways]) {
                return w;
            }
            for r in &mut self.rrpv[base..base + self.ways] {
                *r += 1;
            }
        }
    }

    fn peek_victim(&self, set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        let base = self.idx(set, 0);
        let slice = &self.rrpv[base..base + self.ways];
        // Without mutating, the victim is the way whose RRPV would
        // reach the maximum first: the highest RRPV, ties to lowest way.
        slice
            .iter()
            .enumerate()
            .max_by_key(|&(i, &r)| (r, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    #[test]
    fn insert_is_long_not_distant() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut p = SrripPolicy::new(geom);
        p.on_fill(0, 0, &ctx(1, 0));
        assert_eq!(p.rrpv[0], RRPV_INSERT);
        p.on_hit(0, 0, &ctx(1, 1));
        assert_eq!(p.rrpv[0], 0);
    }

    #[test]
    fn aging_finds_victim_eventually() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut c = SetAssocCache::new(geom, SrripPolicy::new(geom));
        for i in 0..4u64 {
            c.fill(&ctx(i, i));
            c.access(&ctx(i, 10 + i)); // all promoted to RRPV 0
        }
        // All at RRPV 0: victim selection must age and pick way 0.
        let evicted = c.fill(&ctx(100, 20));
        assert_eq!(evicted, Some(TaggedBlock::untagged(BlockAddr::new(0))));
    }

    #[test]
    fn scan_prefers_lowest_way() {
        assert_eq!(SrripPolicy::victim_scan(&[3, 3, 1]), Some(0));
        assert_eq!(SrripPolicy::victim_scan(&[1, 3, 3]), Some(1));
        assert_eq!(SrripPolicy::victim_scan(&[1, 1, 1]), None);
    }

    #[test]
    fn peek_selects_highest_rrpv() {
        let geom = CacheGeometry::from_sets_ways(1, 3);
        let mut p = SrripPolicy::new(geom);
        let blocks: Vec<TaggedBlock> = (0..3)
            .map(|b| TaggedBlock::untagged(BlockAddr::new(b)))
            .collect();
        p.on_fill(0, 0, &ctx(0, 0));
        p.on_fill(0, 1, &ctx(1, 1));
        p.on_fill(0, 2, &ctx(2, 2));
        p.on_hit(0, 1, &ctx(1, 3));
        let peek = p.peek_victim(0, &blocks, &ctx(9, 4));
        assert_eq!(peek, 0); // ways 0 and 2 tie at RRPV 2; lowest way wins
    }
}

//! Random replacement — a sanity baseline used in tests and ablations.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::ReplacementPolicy;
use acic_types::hash::SplitMix64;
use acic_types::TaggedBlock;

/// Uniform-random victim selection (deterministic per seed).
///
/// `peek_victim` derives its choice from the access context rather
/// than the PRNG stream so that peeking never perturbs replacement
/// decisions; consequently a peek may differ from the subsequent
/// `victim_way` draw. Random is never used as an ACIC contender
/// provider, so this is acceptable and documented.
#[derive(Debug)]
pub struct RandomPolicy {
    ways: usize,
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates a seeded random policy.
    pub fn new(geom: CacheGeometry, seed: u64) -> Self {
        RandomPolicy {
            ways: geom.ways(),
            rng: SplitMix64::new(seed),
        }
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx<'_>) {}

    fn on_fill(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx<'_>) {}

    fn victim_way(&mut self, _set: usize, _blocks: &[TaggedBlock], _ctx: &AccessCtx<'_>) -> usize {
        self.rng.next_below(self.ways as u64) as usize
    }

    fn peek_victim(&self, _set: usize, _blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        // Hash the tagged identity so peeks stay per-tenant stable
        // (identical to the raw block address for the host space).
        (acic_types::hash::mix64(ctx.ident()) % self.ways as u64) as usize
    }

    fn wants_victim_blocks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn blocks(n: u64) -> Vec<TaggedBlock> {
        (0..n)
            .map(|b| TaggedBlock::untagged(BlockAddr::new(b)))
            .collect()
    }

    #[test]
    fn victims_cover_all_ways() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let mut p = RandomPolicy::new(geom, 3);
        let blocks = blocks(4);
        let ctx = AccessCtx::demand(BlockAddr::new(9), 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.victim_way(0, &blocks, &ctx)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_per_seed() {
        let geom = CacheGeometry::from_sets_ways(1, 8);
        let blocks = blocks(8);
        let ctx = AccessCtx::demand(BlockAddr::new(9), 0);
        let mut a = RandomPolicy::new(geom, 42);
        let mut b = RandomPolicy::new(geom, 42);
        for _ in 0..50 {
            assert_eq!(
                a.victim_way(0, &blocks, &ctx),
                b.victim_way(0, &blocks, &ctx)
            );
        }
    }

    #[test]
    fn peek_is_stable() {
        let geom = CacheGeometry::from_sets_ways(1, 4);
        let p = RandomPolicy::new(geom, 1);
        let blocks = blocks(4);
        let ctx = AccessCtx::demand(BlockAddr::new(7), 0);
        assert_eq!(
            p.peek_victim(0, &blocks, &ctx),
            p.peek_victim(0, &blocks, &ctx)
        );
    }
}

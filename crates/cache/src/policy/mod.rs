//! Replacement policies.
//!
//! Every policy the paper compares against (Table IV) plus the
//! baseline: [`lru`], [`random`], [`srrip`], [`ship`], [`hawkeye`]
//! (with the prefetch-aware Harmony variant), [`ghrp`], [`slru`]
//! (DSB's segmented LRU), and the oracle [`opt`].
//!
//! Policies are object-safe: each owns its per-line metadata, sized at
//! construction from the [`CacheGeometry`], and reacts to the hooks in
//! [`ReplacementPolicy`].

pub mod ghrp;
pub mod hawkeye;
pub mod lru;
pub mod opt;
pub mod random;
pub mod ship;
pub mod slru;
pub mod srrip;

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use acic_types::BlockAddr;

/// Hooks a replacement policy implements.
///
/// The cache calls `on_hit` / `on_miss` for every access, `victim_way`
/// when a fill needs to evict (all ways valid), `on_evict` just before
/// the victim leaves, and `on_fill` after the new block is placed.
/// `peek_victim` must be side-effect free; it exists so admission
/// mechanisms can ask "who would you evict?" without committing
/// (the paper's *contender block* query).
pub trait ReplacementPolicy {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// A resident block was accessed.
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>);

    /// A block was placed into `way` (previous occupant already
    /// evicted).
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>);

    /// An access missed in `set` (no fill yet).
    fn on_miss(&mut self, _set: usize, _ctx: &AccessCtx<'_>) {}

    /// `block` is about to be evicted from `way`.
    fn on_evict(&mut self, _set: usize, _way: usize, _block: BlockAddr, _ctx: &AccessCtx<'_>) {}

    /// A line was invalidated outside the fill path.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Chooses the way to evict; `blocks[w]` is the block in way `w`
    /// (all valid). May update policy state (e.g. RRIP aging).
    fn victim_way(&mut self, set: usize, blocks: &[BlockAddr], ctx: &AccessCtx<'_>) -> usize;

    /// Side-effect-free preview of [`ReplacementPolicy::victim_way`].
    fn peek_victim(&self, set: usize, blocks: &[BlockAddr], ctx: &AccessCtx<'_>) -> usize;
}

/// Runtime-selectable policy constructors.
///
/// # Examples
///
/// ```
/// use acic_cache::{CacheGeometry, PolicyKind};
///
/// let geom = CacheGeometry::l1i_32k();
/// let policy = PolicyKind::Lru.build(geom);
/// assert_eq!(policy.name(), "lru");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// Uniform random victim (seeded).
    Random {
        /// PRNG seed.
        seed: u64,
    },
    /// Static re-reference interval prediction, 2-bit RRPV.
    Srrip,
    /// Signature-based hit prediction over SRRIP.
    Ship,
    /// Hawkeye (OPTgen-trained). `prefetch_aware` selects the Harmony
    /// variant used when a prefetcher is active.
    Hawkeye {
        /// Train prefetch and demand signatures separately (Harmony).
        prefetch_aware: bool,
    },
    /// Global-history reuse prediction for i-caches.
    Ghrp,
    /// Segmented LRU (DSB's base policy).
    Slru,
    /// Belady's OPT via the reuse oracle (requires `ctx.next_use`).
    Opt,
}

impl PolicyKind {
    /// Builds a policy instance for the given geometry.
    pub fn build(self, geom: CacheGeometry) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(lru::LruPolicy::new(geom)),
            PolicyKind::Random { seed } => Box::new(random::RandomPolicy::new(geom, seed)),
            PolicyKind::Srrip => Box::new(srrip::SrripPolicy::new(geom)),
            PolicyKind::Ship => Box::new(ship::ShipPolicy::new(geom)),
            PolicyKind::Hawkeye { prefetch_aware } => {
                Box::new(hawkeye::HawkeyePolicy::new(geom, prefetch_aware))
            }
            PolicyKind::Ghrp => Box::new(ghrp::GhrpPolicy::new(geom)),
            PolicyKind::Slru => Box::new(slru::SlruPolicy::new(geom)),
            PolicyKind::Opt => Box::new(opt::OptPolicy::new(geom)),
        }
    }

    /// Report label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random { .. } => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Hawkeye {
                prefetch_aware: true,
            } => "Harmony",
            PolicyKind::Hawkeye {
                prefetch_aware: false,
            } => "Hawkeye",
            PolicyKind::Ghrp => "GHRP",
            PolicyKind::Slru => "SLRU",
            PolicyKind::Opt => "OPT",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_policy() {
        let geom = CacheGeometry::from_sets_ways(8, 4);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Random { seed: 1 },
            PolicyKind::Srrip,
            PolicyKind::Ship,
            PolicyKind::Hawkeye {
                prefetch_aware: true,
            },
            PolicyKind::Ghrp,
            PolicyKind::Slru,
            PolicyKind::Opt,
        ] {
            let p = kind.build(geom);
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }
}

//! Replacement policies.
//!
//! Every policy the paper compares against (Table IV) plus the
//! baseline: [`lru`], [`random`], [`srrip`], [`ship`], [`hawkeye`]
//! (with the prefetch-aware Harmony variant), [`ghrp`], [`slru`]
//! (DSB's segmented LRU), and the oracle [`opt`].
//!
//! Policies are object-safe: each owns its per-line metadata, sized at
//! construction from the [`CacheGeometry`], and reacts to the hooks in
//! [`ReplacementPolicy`].

pub mod ghrp;
pub mod hawkeye;
pub mod lru;
pub mod opt;
pub mod random;
pub mod ship;
pub mod slru;
pub mod srrip;

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use acic_types::TaggedBlock;

/// Hooks a replacement policy implements.
///
/// The cache calls `on_hit` / `on_miss` for every access, `victim_way`
/// when a fill needs to evict (all ways valid), `on_evict` just before
/// the victim leaves, and `on_fill` after the new block is placed.
/// `peek_victim` must be side-effect free; it exists so admission
/// mechanisms can ask "who would you evict?" without committing
/// (the paper's *contender block* query).
///
/// Blocks are [`TaggedBlock`] identities: policies that hash or key
/// on block identity must use [`TaggedBlock::ident`] (or
/// [`AccessCtx::ident`]) so tenants learn separately — the hash is
/// unchanged for the host space.
pub trait ReplacementPolicy {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// A resident block was accessed.
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>);

    /// A block was placed into `way` (previous occupant already
    /// evicted).
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>);

    /// An access missed in `set` (no fill yet).
    fn on_miss(&mut self, _set: usize, _ctx: &AccessCtx<'_>) {}

    /// `block` is about to be evicted from `way`.
    fn on_evict(&mut self, _set: usize, _way: usize, _block: TaggedBlock, _ctx: &AccessCtx<'_>) {}

    /// A line was invalidated outside the fill path.
    fn on_invalidate(&mut self, _set: usize, _way: usize) {}

    /// Chooses the way to evict; `blocks[w]` is the block in way `w`
    /// (all valid). May update policy state (e.g. RRIP aging).
    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize;

    /// Side-effect-free preview of [`ReplacementPolicy::victim_way`].
    fn peek_victim(&self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize;

    /// Host-side prefetch hint for the policy's per-set metadata
    /// (warm loops overlap the simulated arrays' memory latency).
    /// Default no-op.
    fn prefetch_hint(&self, _set: usize) {}

    /// Whether [`ReplacementPolicy::victim_way`]/`peek_victim`
    /// actually read the `blocks` slice. Policies that pick victims
    /// from their own metadata alone (LRU, random, RRIP counters)
    /// return `false`, letting the tag store skip materializing the
    /// per-way block list on every eviction — a measurable share of
    /// the simulated-miss hot path. Defaults to `true` (safe for any
    /// policy that inspects candidate blocks, e.g. OPT).
    fn wants_victim_blocks(&self) -> bool {
        true
    }
}

/// Runtime-selectable policy constructors.
///
/// # Examples
///
/// ```
/// use acic_cache::policy::ReplacementPolicy;
/// use acic_cache::{CacheGeometry, PolicyKind};
///
/// let geom = CacheGeometry::l1i_32k();
/// let policy = PolicyKind::Lru.build(geom);
/// assert_eq!(policy.name(), "lru");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least recently used (the paper's baseline).
    Lru,
    /// Uniform random victim (seeded).
    Random {
        /// PRNG seed.
        seed: u64,
    },
    /// Static re-reference interval prediction, 2-bit RRPV.
    Srrip,
    /// Signature-based hit prediction over SRRIP.
    Ship,
    /// Hawkeye (OPTgen-trained). `prefetch_aware` selects the Harmony
    /// variant used when a prefetcher is active.
    Hawkeye {
        /// Train prefetch and demand signatures separately (Harmony).
        prefetch_aware: bool,
    },
    /// Global-history reuse prediction for i-caches.
    Ghrp,
    /// Segmented LRU (DSB's base policy).
    Slru,
    /// Belady's OPT via the reuse oracle (requires `ctx.next_use`).
    Opt,
}

impl PolicyKind {
    /// Builds an enum-dispatched policy instance for the given
    /// geometry. This is the hot-path constructor: the cache stores
    /// the returned [`AnyPolicy`] inline and every hook call resolves
    /// through a `match` that the compiler can inline, instead of a
    /// vtable load.
    pub fn build(self, geom: CacheGeometry) -> AnyPolicy {
        match self {
            PolicyKind::Lru => AnyPolicy::Lru(lru::LruPolicy::new(geom)),
            PolicyKind::Random { seed } => AnyPolicy::Random(random::RandomPolicy::new(geom, seed)),
            PolicyKind::Srrip => AnyPolicy::Srrip(srrip::SrripPolicy::new(geom)),
            PolicyKind::Ship => AnyPolicy::Ship(ship::ShipPolicy::new(geom)),
            PolicyKind::Hawkeye { prefetch_aware } => {
                AnyPolicy::Hawkeye(hawkeye::HawkeyePolicy::new(geom, prefetch_aware))
            }
            PolicyKind::Ghrp => AnyPolicy::Ghrp(ghrp::GhrpPolicy::new(geom)),
            PolicyKind::Slru => AnyPolicy::Slru(slru::SlruPolicy::new(geom)),
            PolicyKind::Opt => AnyPolicy::Opt(opt::OptPolicy::new(geom)),
        }
    }

    /// Builds the same policy behind a trait object.
    ///
    /// Kept for equivalence testing (the devirtualized enum dispatch
    /// must behave bit-identically to boxed dispatch) and as the
    /// naive-baseline construction for throughput benchmarks.
    pub fn build_boxed(self, geom: CacheGeometry) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(lru::LruPolicy::new(geom)),
            PolicyKind::Random { seed } => Box::new(random::RandomPolicy::new(geom, seed)),
            PolicyKind::Srrip => Box::new(srrip::SrripPolicy::new(geom)),
            PolicyKind::Ship => Box::new(ship::ShipPolicy::new(geom)),
            PolicyKind::Hawkeye { prefetch_aware } => {
                Box::new(hawkeye::HawkeyePolicy::new(geom, prefetch_aware))
            }
            PolicyKind::Ghrp => Box::new(ghrp::GhrpPolicy::new(geom)),
            PolicyKind::Slru => Box::new(slru::SlruPolicy::new(geom)),
            PolicyKind::Opt => Box::new(opt::OptPolicy::new(geom)),
        }
    }

    /// Report label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random { .. } => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Hawkeye {
                prefetch_aware: true,
            } => "Harmony",
            PolicyKind::Hawkeye {
                prefetch_aware: false,
            } => "Hawkeye",
            PolicyKind::Ghrp => "GHRP",
            PolicyKind::Slru => "SLRU",
            PolicyKind::Opt => "OPT",
        }
    }
}

/// Enum-dispatched replacement policy.
///
/// [`SetAssocCache`](crate::SetAssocCache) stores one of these inline,
/// so the per-access policy hooks (`on_hit`, `on_fill`, `victim_way`,
/// …) compile to a direct `match` over concrete types that the
/// optimizer can inline into the tag-store loop — no vtable dispatch,
/// no heap indirection. The [`AnyPolicy::Boxed`] variant preserves the
/// old trait-object path for equivalence tests and naive-baseline
/// benchmarks.
pub enum AnyPolicy {
    /// Least recently used.
    Lru(lru::LruPolicy),
    /// Seeded uniform random.
    Random(random::RandomPolicy),
    /// Static RRIP.
    Srrip(srrip::SrripPolicy),
    /// SHiP.
    Ship(ship::ShipPolicy),
    /// Hawkeye / Harmony.
    Hawkeye(hawkeye::HawkeyePolicy),
    /// GHRP.
    Ghrp(ghrp::GhrpPolicy),
    /// Segmented LRU.
    Slru(slru::SlruPolicy),
    /// Belady OPT.
    Opt(opt::OptPolicy),
    /// Legacy trait-object dispatch (reference/testing path).
    Boxed(Box<dyn ReplacementPolicy>),
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $e:expr) => {
        match $self {
            AnyPolicy::Lru($p) => $e,
            AnyPolicy::Random($p) => $e,
            AnyPolicy::Srrip($p) => $e,
            AnyPolicy::Ship($p) => $e,
            AnyPolicy::Hawkeye($p) => $e,
            AnyPolicy::Ghrp($p) => $e,
            AnyPolicy::Slru($p) => $e,
            AnyPolicy::Opt($p) => $e,
            AnyPolicy::Boxed($p) => $e,
        }
    };
}

impl ReplacementPolicy for AnyPolicy {
    #[inline]
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        dispatch!(self, p => p.on_hit(set, way, ctx))
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx<'_>) {
        dispatch!(self, p => p.on_fill(set, way, ctx))
    }

    #[inline]
    fn on_miss(&mut self, set: usize, ctx: &AccessCtx<'_>) {
        dispatch!(self, p => p.on_miss(set, ctx))
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize, block: TaggedBlock, ctx: &AccessCtx<'_>) {
        dispatch!(self, p => p.on_evict(set, way, block, ctx))
    }

    #[inline]
    fn on_invalidate(&mut self, set: usize, way: usize) {
        dispatch!(self, p => p.on_invalidate(set, way))
    }

    #[inline]
    fn victim_way(&mut self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        dispatch!(self, p => p.victim_way(set, blocks, ctx))
    }

    #[inline]
    fn peek_victim(&self, set: usize, blocks: &[TaggedBlock], ctx: &AccessCtx<'_>) -> usize {
        dispatch!(self, p => p.peek_victim(set, blocks, ctx))
    }

    #[inline]
    fn wants_victim_blocks(&self) -> bool {
        dispatch!(self, p => p.wants_victim_blocks())
    }

    #[inline]
    fn prefetch_hint(&self, set: usize) {
        dispatch!(self, p => p.prefetch_hint(set))
    }
}

impl core::fmt::Debug for AnyPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("AnyPolicy").field(&self.name()).finish()
    }
}

macro_rules! impl_from_policy {
    ($($variant:ident => $t:ty),* $(,)?) => {$(
        impl From<$t> for AnyPolicy {
            fn from(p: $t) -> AnyPolicy {
                AnyPolicy::$variant(p)
            }
        }
    )*};
}

impl_from_policy! {
    Lru => lru::LruPolicy,
    Random => random::RandomPolicy,
    Srrip => srrip::SrripPolicy,
    Ship => ship::ShipPolicy,
    Hawkeye => hawkeye::HawkeyePolicy,
    Ghrp => ghrp::GhrpPolicy,
    Slru => slru::SlruPolicy,
    Opt => opt::OptPolicy,
}

impl From<Box<dyn ReplacementPolicy>> for AnyPolicy {
    fn from(p: Box<dyn ReplacementPolicy>) -> AnyPolicy {
        AnyPolicy::Boxed(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_policy() {
        let geom = CacheGeometry::from_sets_ways(8, 4);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Random { seed: 1 },
            PolicyKind::Srrip,
            PolicyKind::Ship,
            PolicyKind::Hawkeye {
                prefetch_aware: true,
            },
            PolicyKind::Ghrp,
            PolicyKind::Slru,
            PolicyKind::Opt,
        ] {
            let p = kind.build(geom);
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }
}

//! Cache substrate for the ACIC reproduction.
//!
//! The paper compares ACIC against three broad families of i-cache
//! pollution-control techniques (§IV-B, Table IV); this crate builds
//! all of them from scratch:
//!
//! * **Replacement policies** ([`policy`]): LRU, Random, SRRIP, SHiP,
//!   Hawkeye/Harmony, GHRP, Belady's OPT, and segmented LRU.
//! * **Bypass / admission policies** ([`bypass`]): always-admit,
//!   access-count comparison (Johnson et al.), DSB's adaptive
//!   bypassing, OBM's optimal bypass monitor, and the oracle
//!   OPT-bypass.
//! * **Victim caches** ([`victim`]): a classic fully-associative
//!   victim cache (VC3K) and the virtual victim cache (VVC).
//!
//! The central type is [`SetAssocCache`], a tag store driven by a
//! boxed [`ReplacementPolicy`]; policies own their per-line metadata so
//! they stay object-safe and runtime-selectable. [`IcacheContents`]
//! abstracts "what lives in the L1i" so that the timing simulator can
//! drive a plain cache, a victim-cached one, VVC, or ACIC's filtered
//! organization through one interface.
//!
//! # Examples
//!
//! ```
//! use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
//! use acic_cache::policy::lru::LruPolicy;
//! use acic_types::BlockAddr;
//!
//! // The paper's 32 KB, 8-way L1i.
//! let geom = CacheGeometry::l1i_32k();
//! let mut cache = SetAssocCache::new(geom, LruPolicy::new(geom));
//! let b = BlockAddr::new(0x40);
//! let ctx = AccessCtx::demand(b, 0);
//! assert!(!cache.access(&ctx));      // cold miss
//! cache.fill(&ctx);
//! assert!(cache.access(&AccessCtx::demand(b, 1)));
//! ```

pub mod bypass;
pub mod cache;
pub mod contents;
pub mod ctx;
pub mod geometry;
pub mod policy;
pub mod stats;
pub mod victim;

pub use cache::SetAssocCache;
pub use contents::{AccessOutcome, IcacheContents, PlainIcache, VictimCachedIcache};
pub use ctx::AccessCtx;
pub use geometry::CacheGeometry;
pub use policy::{PolicyKind, ReplacementPolicy};
pub use stats::CacheStats;

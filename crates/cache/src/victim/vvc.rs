//! VVC — the virtual victim cache (Khan et al., PACT 2010).
//!
//! Instead of a separate victim buffer, VVC stores blocks evicted from
//! one set in *predicted-dead* frames of a partner ("receiver") set,
//! found by hashing the block. A lookup that misses in the home set
//! additionally probes the receiver set; a hit there swaps the block
//! back (costing extra cycles). Dead frames are found with a
//! trace-based dead-block predictor (Table IV: 15-bit trace, two
//! 2^14-entry tables of 2-bit counters).
//!
//! The paper finds VVC actually *hurts* the i-cache (§IV-F): victims
//! frequently displace falsely-dead blocks. This implementation
//! reproduces the mechanism so that effect can emerge.
//!
//! Adaptation note: the original signs traces with the PCs of
//! accessing loads; for the fetch stream we fold the fetched block
//! address into the per-line trace instead.

use crate::contents::{AccessOutcome, IcacheContents};
use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use acic_types::hash::{fold, mix64};
use acic_types::{LruStamps, SatCounter, TaggedBlock};

/// Trace signature width (Table IV).
const TRACE_BITS: u32 = 15;
/// Predictor table entries (2^14 each, Table IV).
const TABLE_ENTRIES: usize = 1 << 14;
/// Extra latency of a hit satisfied from a receiver set.
const VIRTUAL_HIT_LATENCY: u32 = 2;

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    block: Option<TaggedBlock>,
    /// Block parked here by another set (a "virtual victim").
    is_victim: bool,
    /// Dead-block predictor trace accumulated over this residency.
    trace: u16,
    /// Prediction made at the last access.
    predicted_dead: bool,
}

/// The virtual victim cache organization.
pub struct VvcIcache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    lru: Vec<LruStamps>,
    tables: Vec<SatCounter>, // two banks of TABLE_ENTRIES
    stats: CacheStats,
    /// Victim placements that displaced a live (not-yet-dead) block —
    /// exposed for the paper's §IV-F analysis.
    pub misplaced_victims: u64,
    /// Total victim placements attempted.
    pub placed_victims: u64,
}

impl VvcIcache {
    /// Creates an empty VVC organization.
    pub fn new(geom: CacheGeometry) -> Self {
        VvcIcache {
            geom,
            lines: vec![Line::default(); geom.lines()],
            lru: (0..geom.sets())
                .map(|_| LruStamps::new(geom.ways()))
                .collect(),
            tables: vec![SatCounter::new(2, 0); 2 * TABLE_ENTRIES],
            stats: CacheStats::default(),
            misplaced_victims: 0,
            placed_victims: 0,
        }
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.geom.ways() + way
    }

    fn receiver_set(&self, block: TaggedBlock) -> usize {
        // A different set than the home set, derived by hashing.
        let home = self.geom.set_of_tagged(block);
        let hashed = (mix64(block.ident()) as usize) & (self.geom.sets() - 1);
        if hashed == home {
            (hashed + self.geom.sets() / 2) & (self.geom.sets() - 1)
        } else {
            hashed
        }
    }

    fn table_indices(trace: u16) -> [usize; 2] {
        [
            fold(mix64(trace as u64), 14) as usize,
            fold(mix64(trace as u64 ^ 0xdead), 14) as usize,
        ]
    }

    fn predict_dead(&self, trace: u16) -> bool {
        let [a, b] = Self::table_indices(trace);
        self.tables[a].is_high() && self.tables[TABLE_ENTRIES + b].is_high()
    }

    fn train(&mut self, trace: u16, dead: bool) {
        let [a, b] = Self::table_indices(trace);
        self.tables[a].update(dead);
        self.tables[TABLE_ENTRIES + b].update(dead);
    }

    fn update_trace(trace: u16, block: TaggedBlock) -> u16 {
        (fold(mix64((trace as u64) << 20 ^ block.ident()), TRACE_BITS)) as u16
    }

    fn find(&self, set: usize, block: TaggedBlock) -> Option<usize> {
        (0..self.geom.ways()).find(|&w| self.lines[self.idx(set, w)].block == Some(block))
    }

    /// Handles a hit on (set, way): dead-block training and trace
    /// update.
    fn touch(&mut self, set: usize, way: usize, block: TaggedBlock) {
        let i = self.idx(set, way);
        let old_trace = self.lines[i].trace;
        // The last prediction point turned out live.
        self.train(old_trace, false);
        let new_trace = Self::update_trace(old_trace, block);
        let dead = self.predict_dead(new_trace);
        let line = &mut self.lines[i];
        line.trace = new_trace;
        line.predicted_dead = dead;
        line.is_victim = false;
        self.lru[set].touch(way);
    }

    /// Tries to park an evicted block in a predicted-dead frame of its
    /// receiver set.
    fn place_victim(&mut self, block: TaggedBlock) {
        let r = self.receiver_set(block);
        // Find a predicted-dead frame (prefer existing victim frames so
        // real residents survive longer).
        let mut candidate: Option<usize> = None;
        for w in 0..self.geom.ways() {
            let l = &self.lines[self.idx(r, w)];
            if l.block.is_none() {
                candidate = Some(w);
                break;
            }
            if l.predicted_dead {
                if l.is_victim {
                    candidate = Some(w);
                    break;
                }
                if candidate.is_none() {
                    candidate = Some(w);
                }
            }
        }
        let Some(w) = candidate else {
            return; // no dead frame: the victim is simply dropped
        };
        self.placed_victims += 1;
        let i = self.idx(r, w);
        if self.lines[i].block.is_some() && !self.lines[i].is_victim {
            self.misplaced_victims += 1;
        }
        self.lines[i] = Line {
            block: Some(block),
            is_victim: true,
            trace: fold(mix64(block.ident()), TRACE_BITS) as u16,
            predicted_dead: true, // victims stay eviction candidates
        };
        self.lru[r].touch(w);
    }
}

impl IcacheContents for VvcIcache {
    fn access(&mut self, ctx: &AccessCtx<'_>) -> AccessOutcome {
        let t = ctx.tagged();
        let home = self.geom.set_of_tagged(t);
        let outcome = if let Some(way) = self.find(home, t) {
            self.touch(home, way, t);
            AccessOutcome::hit()
        } else {
            // Probe the receiver set for a parked victim.
            let r = self.receiver_set(t);
            match self.find(r, t) {
                Some(way) if self.lines[self.idx(r, way)].is_victim => {
                    // Virtual hit: move back home.
                    let i = self.idx(r, way);
                    self.lines[i] = Line::default();
                    self.lru[r].clear(way);
                    self.fill(ctx);
                    AccessOutcome::slow_hit(VIRTUAL_HIT_LATENCY)
                }
                _ => AccessOutcome::miss(),
            }
        };
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.record_prefetch(outcome.hit);
            } else {
                self.stats.record_demand(outcome.hit);
            }
        }
        outcome
    }

    fn fill(&mut self, ctx: &AccessCtx<'_>) {
        let t = ctx.tagged();
        let set = self.geom.set_of_tagged(t);
        if self.find(set, t).is_some() {
            return;
        }
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.prefetch_fills += 1;
            } else {
                self.stats.demand_fills += 1;
            }
        }
        // Victim priority: invalid, then parked victims, then LRU.
        let way = (0..self.geom.ways())
            .find(|&w| self.lines[self.idx(set, w)].block.is_none())
            .or_else(|| {
                (0..self.geom.ways())
                    .filter(|&w| self.lines[self.idx(set, w)].is_victim)
                    .min_by_key(|&w| self.lru[set].stamp(w))
            })
            .unwrap_or_else(|| self.lru[set].lru_way());
        let i = self.idx(set, way);
        if let Some(evicted) = self.lines[i].block {
            if ctx.stats_enabled {
                self.stats.evictions += 1;
            }
            let was_victim = self.lines[i].is_victim;
            let trace = self.lines[i].trace;
            if !was_victim {
                // The line died: train its last trace as dead, then try
                // to park it somewhere.
                self.train(trace, true);
                self.lines[i] = Line::default();
                self.place_victim(evicted);
            }
        }
        let i = self.idx(set, way);
        let trace = fold(mix64(ctx.ident()), TRACE_BITS) as u16;
        let dead = self.predict_dead(trace);
        self.lines[i] = Line {
            block: Some(t),
            is_victim: false,
            trace,
            predicted_dead: dead,
        };
        self.lru[set].touch(way);
    }

    fn contains_block(&self, block: TaggedBlock) -> bool {
        let home = self.geom.set_of_tagged(block);
        if self.find(home, block).is_some() {
            return true;
        }
        let r = self.receiver_set(block);
        matches!(self.find(r, block), Some(w) if self.lines[self.idx(r, w)].is_victim)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        "vvc".to_string()
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    fn tiny() -> VvcIcache {
        VvcIcache::new(CacheGeometry::from_sets_ways(4, 2))
    }

    #[test]
    fn basic_fill_and_hit() {
        let mut v = tiny();
        assert!(!v.access(&ctx(1, 0)).hit);
        v.fill(&ctx(1, 0));
        assert!(v.access(&ctx(1, 1)).hit);
    }

    #[test]
    fn receiver_set_differs_from_home() {
        let v = tiny();
        for b in 0..64u64 {
            let block = tb(b);
            assert_ne!(v.receiver_set(block), v.geom.set_of_tagged(block));
        }
    }

    #[test]
    fn victim_recoverable_after_parking() {
        let mut v = tiny();
        // Make the predictor call everything dead so parking succeeds.
        for t in v.tables.iter_mut() {
            t.set(3);
        }
        // Fill set 0 (blocks 0, 4 map to set 0 of 4 sets), then evict 0.
        v.fill(&ctx(0, 0));
        v.fill(&ctx(4, 1));
        v.fill(&ctx(8, 2)); // evicts LRU (block 0), which gets parked
        if v.contains_block(tb(0)) {
            let out = v.access(&ctx(0, 3));
            assert!(out.hit);
            assert_eq!(out.extra_latency, VIRTUAL_HIT_LATENCY);
            // And it is back in its home set now.
            assert!(v.find(v.geom.set_of_tagged(tb(0)), tb(0)).is_some());
        }
    }

    #[test]
    fn misplacement_counter_tracks_live_displacement() {
        let mut v = tiny();
        for t in v.tables.iter_mut() {
            t.set(3); // everything predicted dead
        }
        // Park victims until one lands on a live resident.
        for b in 0..32u64 {
            v.fill(&ctx(b, b));
        }
        assert!(v.placed_victims > 0);
        assert!(v.misplaced_victims > 0, "no live blocks were displaced");
    }

    #[test]
    fn dead_training_happens_on_eviction() {
        let mut v = tiny();
        let before: u32 = v.tables.iter().map(|c| c.value() as u32).sum();
        for b in 0..64u64 {
            v.fill(&ctx(b, b));
        }
        let after: u32 = v.tables.iter().map(|c| c.value() as u32).sum();
        assert!(after > before, "evictions should train dead");
    }
}

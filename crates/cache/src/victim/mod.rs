//! Victim caches: the classic fully-associative victim cache (Jouppi
//! 1990 — the paper's VC3K/VC8K comparison points) and the virtual
//! victim cache ([`vvc`]).

pub mod vvc;

use acic_types::{LruStamps, TaggedBlock};

/// A fully-associative victim cache holding recently evicted blocks.
///
/// The paper's VC3K is 48 entries (48 x 64 B = 3 KB of data).
///
/// # Examples
///
/// ```
/// use acic_cache::victim::VictimCache;
/// use acic_types::BlockAddr;
///
/// let mut vc = VictimCache::new(2);
/// assert_eq!(vc.insert(BlockAddr::new(1)), None);
/// assert_eq!(vc.insert(BlockAddr::new(2)), None);
/// // Full: inserting a third evicts the LRU entry.
/// assert_eq!(vc.insert(BlockAddr::new(3)).map(|t| t.block), Some(BlockAddr::new(1)));
/// assert!(vc.probe_and_remove(BlockAddr::new(2)));
/// assert!(!vc.contains(BlockAddr::new(2))); // removed on hit
/// ```
#[derive(Debug)]
pub struct VictimCache {
    entries: Vec<Option<TaggedBlock>>,
    lru: LruStamps,
}

impl VictimCache {
    /// Creates a victim cache with `capacity` block slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "victim cache needs at least one entry");
        VictimCache {
            entries: vec![None; capacity],
            lru: LruStamps::new(capacity),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of blocks currently held.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Whether the victim cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `block` is present (no state change).
    pub fn contains(&self, block: impl Into<TaggedBlock>) -> bool {
        self.entries.contains(&Some(block.into()))
    }

    /// If present, removes `block` (it is being promoted back into the
    /// main cache) and returns `true`.
    pub fn probe_and_remove(&mut self, block: impl Into<TaggedBlock>) -> bool {
        let block = block.into();
        if let Some(slot) = self.entries.iter().position(|&e| e == Some(block)) {
            self.entries[slot] = None;
            self.lru.clear(slot);
            true
        } else {
            false
        }
    }

    /// Inserts an evicted block; returns the block dropped to make
    /// room, if the victim cache was full.
    pub fn insert(&mut self, block: impl Into<TaggedBlock>) -> Option<TaggedBlock> {
        let block = block.into();
        debug_assert!(
            !self.contains(block),
            "block must not already be in the victim cache"
        );
        let slot = match self.entries.iter().position(|e| e.is_none()) {
            Some(free) => free,
            None => self.lru.lru_way(),
        };
        let dropped = self.entries[slot].take();
        self.entries[slot] = Some(block);
        self.lru.touch(slot);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    #[test]
    fn fills_free_slots_before_evicting() {
        let mut vc = VictimCache::new(3);
        assert_eq!(vc.insert(BlockAddr::new(1)), None);
        assert_eq!(vc.insert(BlockAddr::new(2)), None);
        assert_eq!(vc.insert(BlockAddr::new(3)), None);
        assert_eq!(vc.len(), 3);
    }

    #[test]
    fn lru_eviction_order() {
        let mut vc = VictimCache::new(2);
        vc.insert(BlockAddr::new(1));
        vc.insert(BlockAddr::new(2));
        // Re-inserting is forbidden; instead promote 1 out and back.
        assert!(vc.probe_and_remove(BlockAddr::new(1)));
        vc.insert(BlockAddr::new(1));
        // Now 2 is LRU.
        assert_eq!(
            vc.insert(BlockAddr::new(3)),
            Some(TaggedBlock::untagged(BlockAddr::new(2)))
        );
    }

    #[test]
    fn probe_miss_changes_nothing() {
        let mut vc = VictimCache::new(2);
        vc.insert(BlockAddr::new(1));
        assert!(!vc.probe_and_remove(BlockAddr::new(9)));
        assert_eq!(vc.len(), 1);
    }

    #[test]
    fn paper_vc3k_geometry() {
        // 3 KB of 64 B blocks = 48 entries.
        let vc = VictimCache::new(48);
        assert_eq!(vc.capacity() * 64, 3 * 1024);
    }
}

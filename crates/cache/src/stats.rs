//! Access counters kept by every cache structure.

/// Hit/miss/fill accounting for one cache structure.
///
/// Demand and prefetch traffic are tracked separately: the paper's
/// MPKI metric counts *demand* misses only.
///
/// # Examples
///
/// ```
/// use acic_cache::CacheStats;
///
/// let mut s = CacheStats::default();
/// s.record_demand(true);
/// s.record_demand(false);
/// assert_eq!(s.demand_accesses, 2);
/// assert_eq!(s.demand_misses, 1);
/// assert!((s.demand_hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (instruction fetch or data reference).
    pub demand_accesses: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Prefetch probes or accesses.
    pub prefetch_accesses: u64,
    /// Prefetch misses (i.e. prefetches that went to the next level).
    pub prefetch_misses: u64,
    /// Lines filled (demand).
    pub demand_fills: u64,
    /// Lines filled by prefetch.
    pub prefetch_fills: u64,
    /// Valid lines evicted.
    pub evictions: u64,
    /// Incoming blocks rejected by an admission/bypass policy.
    pub bypasses: u64,
    /// Valid lines dropped by whole-cache flushes (the no-ASID
    /// context-switch baseline).
    pub flushed_lines: u64,
}

impl CacheStats {
    /// Records a demand access outcome.
    #[inline]
    pub fn record_demand(&mut self, hit: bool) {
        self.demand_accesses += 1;
        if !hit {
            self.demand_misses += 1;
        }
    }

    /// Records a prefetch access outcome.
    #[inline]
    pub fn record_prefetch(&mut self, hit: bool) {
        self.prefetch_accesses += 1;
        if !hit {
            self.prefetch_misses += 1;
        }
    }

    /// Demand hits.
    pub fn demand_hits(&self) -> u64 {
        self.demand_accesses - self.demand_misses
    }

    /// Demand hit rate (0.0 when there were no accesses).
    pub fn demand_hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_hits() as f64 / self.demand_accesses as f64
        }
    }

    /// Demand misses per kilo-instruction, given the retired
    /// instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.demand_misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Field-wise difference `self - earlier` (post-warm-up
    /// accounting).
    pub fn delta_from(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            demand_accesses: self.demand_accesses - earlier.demand_accesses,
            demand_misses: self.demand_misses - earlier.demand_misses,
            prefetch_accesses: self.prefetch_accesses - earlier.prefetch_accesses,
            prefetch_misses: self.prefetch_misses - earlier.prefetch_misses,
            demand_fills: self.demand_fills - earlier.demand_fills,
            prefetch_fills: self.prefetch_fills - earlier.prefetch_fills,
            evictions: self.evictions - earlier.evictions,
            bypasses: self.bypasses - earlier.bypasses,
            flushed_lines: self.flushed_lines - earlier.flushed_lines,
        }
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, o: &CacheStats) {
        self.demand_accesses += o.demand_accesses;
        self.demand_misses += o.demand_misses;
        self.prefetch_accesses += o.prefetch_accesses;
        self.prefetch_misses += o.prefetch_misses;
        self.demand_fills += o.demand_fills;
        self.prefetch_fills += o.prefetch_fills;
        self.evictions += o.evictions;
        self.bypasses += o.bypasses;
        self.flushed_lines += o.flushed_lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_scales_by_kiloinstruction() {
        let mut s = CacheStats::default();
        for i in 0..100 {
            s.record_demand(i % 10 == 0);
        }
        assert_eq!(s.demand_misses, 90);
        assert!((s.mpki(1_000_000) - 0.09).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn prefetch_separate_from_demand() {
        let mut s = CacheStats::default();
        s.record_prefetch(false);
        assert_eq!(s.demand_accesses, 0);
        assert_eq!(s.prefetch_misses, 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats::default();
        a.record_demand(false);
        let mut b = CacheStats::default();
        b.record_demand(true);
        b.evictions = 3;
        a.merge(&b);
        assert_eq!(a.demand_accesses, 2);
        assert_eq!(a.demand_misses, 1);
        assert_eq!(a.evictions, 3);
    }
}

//! The set-associative tag store.
//!
//! [`SetAssocCache`] models contents only (tags + policy metadata);
//! timing (latencies, MSHRs) lives in `acic-sim`. The replacement
//! policy is stored inline as an enum ([`AnyPolicy`]) so the
//! per-access hooks dispatch through an inlinable `match` instead of a
//! vtable; each policy owns its per-line metadata. The fill and
//! contender paths assemble candidate lists in fixed stack buffers —
//! the tag-store hot loop performs no heap allocation.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::{AnyPolicy, ReplacementPolicy};
use crate::stats::CacheStats;
use acic_types::BlockAddr;

/// Upper bound on associativity supported by the stack scratch
/// buffers. The 16-way L3 is the widest geometry currently built on
/// this tag store (the L1i organizations top out at 9-way); widen
/// this constant before adding a higher-associativity sweep point —
/// construction panics past the bound.
pub const MAX_WAYS: usize = 16;

/// A set-associative cache of 64 B blocks with a pluggable
/// replacement policy.
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
/// use acic_cache::policy::lru::LruPolicy;
/// use acic_types::BlockAddr;
///
/// let geom = CacheGeometry::from_sets_ways(2, 2);
/// let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
/// // Fill both ways of set 0, then a third block evicts the LRU one.
/// for (i, b) in [0u64, 2, 4].iter().enumerate() {
///     let ctx = AccessCtx::demand(BlockAddr::new(*b), i as u64);
///     assert!(!c.access(&ctx));
///     c.fill(&ctx);
/// }
/// assert!(!c.contains(BlockAddr::new(0))); // evicted
/// assert!(c.contains(BlockAddr::new(2)));
/// assert!(c.contains(BlockAddr::new(4)));
/// ```
pub struct SetAssocCache {
    geom: CacheGeometry,
    tags: Vec<Option<BlockAddr>>,
    policy: AnyPolicy,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given policy. Accepts any
    /// concrete policy type, an [`AnyPolicy`], or a boxed trait object
    /// (the reference dispatch path).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds [`MAX_WAYS`].
    pub fn new(geom: CacheGeometry, policy: impl Into<AnyPolicy>) -> Self {
        assert!(
            geom.ways() <= MAX_WAYS,
            "associativity {} exceeds MAX_WAYS ({MAX_WAYS})",
            geom.ways()
        );
        SetAssocCache {
            geom,
            tags: vec![None; geom.lines()],
            policy: policy.into(),
            stats: CacheStats::default(),
        }
    }

    /// Geometry of the cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Name of the replacement policy driving this cache.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Way holding `block`, if present.
    pub fn find(&self, block: BlockAddr) -> Option<usize> {
        let set = self.geom.set_of(block);
        let base = self.geom.line_index(set, 0);
        (0..self.geom.ways()).find(|&w| self.tags[base + w] == Some(block))
    }

    /// Whether `block` is resident (no state change).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// Performs an access; returns `true` on hit. On hit the policy's
    /// recency/prediction state is updated; on miss the policy
    /// observes the miss but no fill happens (call
    /// [`SetAssocCache::fill`] once the block arrives).
    pub fn access(&mut self, ctx: &AccessCtx<'_>) -> bool {
        let set = self.geom.set_of(ctx.block);
        let hit = match self.find(ctx.block) {
            Some(way) => {
                self.policy.on_hit(set, way, ctx);
                true
            }
            None => {
                self.policy.on_miss(set, ctx);
                false
            }
        };
        if ctx.is_prefetch {
            self.stats.record_prefetch(hit);
        } else {
            self.stats.record_demand(hit);
        }
        hit
    }

    /// Inserts `ctx.block`, evicting a victim if the set is full.
    /// Returns the evicted block, if any.
    ///
    /// Filling a block that is already resident is treated as a
    /// policy touch and returns `None`.
    pub fn fill(&mut self, ctx: &AccessCtx<'_>) -> Option<BlockAddr> {
        let set = self.geom.set_of(ctx.block);
        if let Some(way) = self.find(ctx.block) {
            // Duplicate fill (e.g. prefetch raced a demand miss).
            self.policy.on_hit(set, way, ctx);
            return None;
        }
        if ctx.is_prefetch {
            self.stats.prefetch_fills += 1;
        } else {
            self.stats.demand_fills += 1;
        }
        let base = self.geom.line_index(set, 0);
        // Prefer an invalid way.
        if let Some(way) = (0..self.geom.ways()).find(|&w| self.tags[base + w].is_none()) {
            self.tags[base + way] = Some(ctx.block);
            self.policy.on_fill(set, way, ctx);
            return None;
        }
        let mut blocks = [BlockAddr::new(0); MAX_WAYS];
        let ways = self.geom.ways();
        for (w, slot) in blocks[..ways].iter_mut().enumerate() {
            *slot = self.tags[base + w].expect("all ways valid");
        }
        let way = self.policy.victim_way(set, &blocks[..ways], ctx);
        debug_assert!(way < self.geom.ways(), "policy returned invalid way");
        let evicted = self.tags[base + way].expect("victim way valid");
        self.policy.on_evict(set, way, evicted, ctx);
        self.stats.evictions += 1;
        self.tags[base + way] = Some(ctx.block);
        self.policy.on_fill(set, way, ctx);
        Some(evicted)
    }

    /// The block the policy would evict if `ctx.block` were filled
    /// now — the paper's *contender block*. Returns `None` while the
    /// set still has invalid ways (no contender; admission is free).
    pub fn contender(&self, ctx: &AccessCtx<'_>) -> Option<BlockAddr> {
        let set = self.geom.set_of(ctx.block);
        let base = self.geom.line_index(set, 0);
        let ways = self.geom.ways();
        let mut blocks = [BlockAddr::new(0); MAX_WAYS];
        for (w, slot) in blocks[..ways].iter_mut().enumerate() {
            *slot = self.tags[base + w]?;
        }
        let way = self.policy.peek_victim(set, &blocks[..ways], ctx);
        Some(blocks[way])
    }

    /// Removes `block` if resident; returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        if let Some(way) = self.find(block) {
            let set = self.geom.set_of(block);
            self.tags[self.geom.line_index(set, way)] = None;
            self.policy.on_invalidate(set, way);
            true
        } else {
            false
        }
    }

    /// All resident blocks (for tests and invariant checks).
    pub fn resident_blocks(&self) -> Vec<BlockAddr> {
        self.tags.iter().flatten().copied().collect()
    }

    /// Blocks resident in one set (for tests).
    pub fn set_blocks(&self, set: usize) -> Vec<BlockAddr> {
        let base = self.geom.line_index(set, 0);
        (0..self.geom.ways())
            .filter_map(|w| self.tags[base + w])
            .collect()
    }
}

impl core::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geometry", &self.geom)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::lru::LruPolicy;

    fn small() -> SetAssocCache {
        let geom = CacheGeometry::from_sets_ways(4, 2);
        SetAssocCache::new(geom, LruPolicy::new(geom))
    }

    fn ctx(block: u64, idx: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(block), idx)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(&ctx(1, 0)));
        c.fill(&ctx(1, 0));
        assert!(c.access(&ctx(1, 1)));
        assert_eq!(c.stats().demand_accesses, 2);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn no_duplicate_blocks_in_set() {
        let mut c = small();
        c.fill(&ctx(4, 0));
        c.fill(&ctx(4, 1)); // duplicate fill ignored
        assert_eq!(c.resident_blocks().len(), 1);
    }

    #[test]
    fn eviction_only_when_set_full() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        assert_eq!(c.fill(&ctx(0, 0)), None);
        assert_eq!(c.fill(&ctx(4, 1)), None);
        let evicted = c.fill(&ctx(8, 2));
        assert_eq!(evicted, Some(BlockAddr::new(0)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn contender_is_lru_block() {
        let mut c = small();
        c.fill(&ctx(0, 0));
        assert_eq!(c.contender(&ctx(8, 1)), None); // invalid way remains
        c.fill(&ctx(4, 1));
        // Touch block 0 making block 4 the LRU.
        c.access(&ctx(0, 2));
        assert_eq!(c.contender(&ctx(8, 3)), Some(BlockAddr::new(4)));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small();
        c.fill(&ctx(3, 0));
        assert!(c.invalidate(BlockAddr::new(3)));
        assert!(!c.contains(BlockAddr::new(3)));
        assert!(!c.invalidate(BlockAddr::new(3)));
    }

    #[test]
    fn prefetch_stats_are_separate() {
        let mut c = small();
        let p = AccessCtx::prefetch(BlockAddr::new(9), 0);
        assert!(!c.access(&p));
        c.fill(&p);
        assert_eq!(c.stats().prefetch_misses, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }
}

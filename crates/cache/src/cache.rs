//! The set-associative tag store.
//!
//! [`SetAssocCache`] models contents only (tags + policy metadata);
//! timing (latencies, MSHRs) lives in `acic-sim`. The replacement
//! policy is stored inline as an enum ([`AnyPolicy`]) so the
//! per-access hooks dispatch through an inlinable `match` instead of a
//! vtable; each policy owns its per-line metadata. The fill and
//! contender paths assemble candidate lists in fixed stack buffers —
//! the tag-store hot loop performs no heap allocation.
//!
//! Lines are identified by [`TaggedBlock`]: the virtual block address
//! *plus* the address space it belongs to. Set indexing uses the
//! block-address bits (VIPT-style); the ASID participates in tag
//! match, so two tenants' overlapping virtual addresses coexist
//! without aliasing. The host space (ASID 0) is bit-identical to the
//! pre-ASID behavior. [`SetAssocCache::flush`] supports the no-ASID
//! baseline that must invalidate everything on a context switch.

use crate::ctx::AccessCtx;
use crate::geometry::CacheGeometry;
use crate::policy::{AnyPolicy, ReplacementPolicy};
use crate::stats::CacheStats;
use acic_types::{Asid, BlockAddr, TaggedBlock};

/// Sentinel ident marking an invalid line. Unreachable by real
/// identities: block addresses are byte addresses shifted right by 6,
/// so bits 58..64 of a block (and therefore of its ident, whose top
/// 16 bits only XOR in a 16-bit ASID at bit 48) can never all be set.
/// Asserted on every fill in debug builds.
const INVALID_IDENT: u64 = u64::MAX;

/// Host-side prefetch hint (no-op off x86_64): warm loops use this to
/// overlap the simulated tag arrays' memory latency instead of paying
/// serial dependent misses.
#[inline(always)]
pub(crate) fn host_prefetch<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Upper bound on associativity supported by the stack scratch
/// buffers. The 16-way L3 is the widest geometry currently built on
/// this tag store (the L1i organizations top out at 9-way); widen
/// this constant before adding a higher-associativity sweep point —
/// construction panics past the bound.
pub const MAX_WAYS: usize = 16;

/// A set-associative cache of 64 B blocks with a pluggable
/// replacement policy.
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
/// use acic_cache::policy::lru::LruPolicy;
/// use acic_types::BlockAddr;
///
/// let geom = CacheGeometry::from_sets_ways(2, 2);
/// let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
/// // Fill both ways of set 0, then a third block evicts the LRU one.
/// for (i, b) in [0u64, 2, 4].iter().enumerate() {
///     let ctx = AccessCtx::demand(BlockAddr::new(*b), i as u64);
///     assert!(!c.access(&ctx));
///     c.fill(&ctx);
/// }
/// assert!(!c.contains(BlockAddr::new(0))); // evicted
/// assert!(c.contains(BlockAddr::new(2)));
/// assert!(c.contains(BlockAddr::new(4)));
/// ```
pub struct SetAssocCache {
    geom: CacheGeometry,
    /// Flattened line identities ([`TaggedBlock::ident`]), one `u64`
    /// per line with [`INVALID_IDENT`] marking empty ways — the hot
    /// find loop is a single-word scan, exactly as wide as the
    /// pre-ASID tag array.
    ids: Vec<u64>,
    /// Raw ASID per line; confirms a matching ident (soundness for
    /// pathological block addresses) and reconstructs the block on
    /// eviction.
    asids: Vec<u16>,
    /// Per-set memo of the most recently hit/filled way. Purely a
    /// probe accelerator: the memoized way's identity is re-verified
    /// on every use, so a stale memo (after invalidate/flush or an
    /// eviction that retargeted the way) costs one extra compare and
    /// nothing else. Run-batched loops revisiting a block shortly
    /// after its last touch skip the full way scan.
    mru: Vec<u8>,
    policy: AnyPolicy,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given policy. Accepts any
    /// concrete policy type, an [`AnyPolicy`], or a boxed trait object
    /// (the reference dispatch path).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's associativity exceeds [`MAX_WAYS`].
    pub fn new(geom: CacheGeometry, policy: impl Into<AnyPolicy>) -> Self {
        assert!(
            geom.ways() <= MAX_WAYS,
            "associativity {} exceeds MAX_WAYS ({MAX_WAYS})",
            geom.ways()
        );
        SetAssocCache {
            geom,
            ids: vec![INVALID_IDENT; geom.lines()],
            asids: vec![0; geom.lines()],
            mru: vec![0; geom.sets()],
            policy: policy.into(),
            stats: CacheStats::default(),
        }
    }

    /// The tagged identity stored in line `i`, if valid.
    #[inline]
    fn line(&self, i: usize) -> Option<TaggedBlock> {
        (self.ids[i] != INVALID_IDENT)
            .then(|| TaggedBlock::from_ident(self.ids[i], Asid::new(self.asids[i])))
    }

    /// Scans one set (lines `base..base+ways`) for identity `t`.
    /// Single-word ident compare per way; the ASID confirm only runs
    /// on an ident match (idents already fold the ASID in, so a
    /// cross-space false positive needs a block address above 2^48
    /// blocks — the scan resumes past it regardless).
    // Written as an explicit loop (not `Iterator::find`) so the
    // ident compare stays a straight single-word scan in the
    // generated code; this is the hottest loop in the workspace.
    #[allow(clippy::manual_find)]
    #[inline(always)]
    fn scan(&self, base: usize, t: TaggedBlock) -> Option<usize> {
        let ways = self.geom.ways();
        let id = t.ident();
        let asid = t.asid.raw();
        let ids = &self.ids[base..base + ways];
        let asids = &self.asids[base..base + ways];
        for w in 0..ways {
            if ids[w] == id && asids[w] == asid {
                return Some(w);
            }
        }
        None
    }

    #[inline]
    fn store_line(&mut self, i: usize, t: TaggedBlock) {
        debug_assert_ne!(t.ident(), INVALID_IDENT, "block collides with sentinel");
        self.ids[i] = t.ident();
        self.asids[i] = t.asid.raw();
    }

    /// Geometry of the cache.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Name of the replacement policy driving this cache.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Way holding `block`, if present. Tag match compares the full
    /// tagged identity — same virtual address, different ASID is a
    /// miss.
    #[inline]
    pub fn find(&self, block: impl Into<TaggedBlock>) -> Option<usize> {
        let t = block.into();
        let set = self.geom.set_of_tagged(t);
        self.scan(self.geom.line_index(set, 0), t)
    }

    /// Whether `block` is resident (no state change).
    pub fn contains(&self, block: impl Into<TaggedBlock>) -> bool {
        self.find(block).is_some()
    }

    /// MRU-way memo probe: re-verify the last hit/filled way before
    /// paying the full scan (repeated-set hits short-circuit; a stale
    /// memo costs one compare and falls through to the scan).
    #[inline(always)]
    fn scan_with_memo(&self, set: usize, base: usize, t: TaggedBlock) -> Option<usize> {
        let m = self.mru[set] as usize;
        if self.ids[base + m] == t.ident() && self.asids[base + m] == t.asid.raw() {
            Some(m)
        } else {
            self.scan(base, t)
        }
    }

    /// Performs an access; returns `true` on hit. On hit the policy's
    /// recency/prediction state is updated; on miss the policy
    /// observes the miss but no fill happens (call
    /// [`SetAssocCache::fill`] once the block arrives).
    // `inline(always)`: the pre-ASID build inlined `access` and
    // `fill` into every simulation loop; once the tagged-identity
    // refactor grew their bodies past LLVM's hint threshold the
    // out-of-line calls cost ~25-40% of single-tenant throughput
    // (measured in BENCH_baseline.json legs). Forcing the old
    // inlining restores it.
    #[inline(always)]
    pub fn access(&mut self, ctx: &AccessCtx<'_>) -> bool {
        let t = ctx.tagged();
        let set = self.geom.set_of_tagged(t);
        let base = self.geom.line_index(set, 0);
        let hit = match self.scan_with_memo(set, base, t) {
            Some(way) => {
                self.mru[set] = way as u8;
                self.policy.on_hit(set, way, ctx);
                true
            }
            None => {
                self.policy.on_miss(set, ctx);
                false
            }
        };
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.record_prefetch(hit);
            } else {
                self.stats.record_demand(hit);
            }
        }
        hit
    }

    /// Inserts `ctx`'s tagged block, evicting a victim if the set is
    /// full. Returns the evicted identity, if any.
    ///
    /// Filling a block that is already resident is treated as a
    /// policy touch and returns `None`.
    #[inline(always)]
    pub fn fill(&mut self, ctx: &AccessCtx<'_>) -> Option<TaggedBlock> {
        let t = ctx.tagged();
        let set = self.geom.set_of_tagged(t);
        let base0 = self.geom.line_index(set, 0);
        if let Some(way) = self.scan(base0, t) {
            // Duplicate fill (e.g. prefetch raced a demand miss).
            self.mru[set] = way as u8;
            self.policy.on_hit(set, way, ctx);
            return None;
        }
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.prefetch_fills += 1;
            } else {
                self.stats.demand_fills += 1;
            }
        }
        let base = base0;
        // Prefer an invalid way.
        let ways = self.geom.ways();
        if let Some(way) = self.ids[base..base + ways]
            .iter()
            .position(|&v| v == INVALID_IDENT)
        {
            self.store_line(base + way, t);
            self.mru[set] = way as u8;
            self.policy.on_fill(set, way, ctx);
            return None;
        }
        let mut blocks = [TaggedBlock::untagged(BlockAddr::new(0)); MAX_WAYS];
        let candidates: &[TaggedBlock] = if self.policy.wants_victim_blocks() {
            for (w, slot) in blocks[..ways].iter_mut().enumerate() {
                *slot = self.line(base + w).expect("all ways valid");
            }
            &blocks[..ways]
        } else {
            // Metadata-only policies never read the candidate list;
            // skip reconstructing `ways` tagged identities per fill.
            &[]
        };
        let way = self.policy.victim_way(set, candidates, ctx);
        debug_assert!(way < self.geom.ways(), "policy returned invalid way");
        let evicted = self.line(base + way).expect("victim way valid");
        self.policy.on_evict(set, way, evicted, ctx);
        if ctx.stats_enabled {
            self.stats.evictions += 1;
        }
        self.store_line(base + way, t);
        self.mru[set] = way as u8;
        self.policy.on_fill(set, way, ctx);
        Some(evicted)
    }

    /// Hints the CPU to pull the set's tag words for `block` into
    /// host cache — warm loops issue this a step ahead of the probe
    /// so the (simulated-)L2/L3 array walk overlaps useful work.
    /// No-op off x86_64.
    #[inline]
    pub fn prefetch_set(&self, block: impl Into<TaggedBlock>) {
        let t = block.into();
        let set = self.geom.set_of_tagged(t);
        let base = self.geom.line_index(set, 0);
        host_prefetch(&self.ids[base]);
        self.policy.prefetch_hint(set);
    }

    /// Warm-path fused probe-or-fill: one set scan decides hit or
    /// miss; a hit touches the policy, a miss installs the block
    /// immediately (victim chosen as usual). Returns whether it hit.
    ///
    /// Statistics never move — this is the sampled engine's warming
    /// primitive, equivalent to a quiet `access` + `fill` pair but
    /// without the second scan the separate fill would pay. Not for
    /// use on timing paths: fills there happen when the block
    /// *arrives*, not when it is requested.
    #[inline]
    pub fn warm_touch(&mut self, block: impl Into<TaggedBlock>) -> bool {
        let t = block.into();
        let set = self.geom.set_of_tagged(t);
        let base = self.geom.line_index(set, 0);
        let ctx = AccessCtx::demand_tagged(t, 0).quiet();
        if let Some(way) = self.scan_with_memo(set, base, t) {
            self.mru[set] = way as u8;
            self.policy.on_hit(set, way, &ctx);
            return true;
        }
        self.policy.on_miss(set, &ctx);
        let ways = self.geom.ways();
        if let Some(way) = self.ids[base..base + ways]
            .iter()
            .position(|&v| v == INVALID_IDENT)
        {
            self.store_line(base + way, t);
            self.mru[set] = way as u8;
            self.policy.on_fill(set, way, &ctx);
            return false;
        }
        let mut blocks = [TaggedBlock::untagged(BlockAddr::new(0)); MAX_WAYS];
        let candidates: &[TaggedBlock] = if self.policy.wants_victim_blocks() {
            for (w, slot) in blocks[..ways].iter_mut().enumerate() {
                *slot = self.line(base + w).expect("all ways valid");
            }
            &blocks[..ways]
        } else {
            &[]
        };
        let way = self.policy.victim_way(set, candidates, &ctx);
        let evicted = self.line(base + way).expect("victim way valid");
        self.policy.on_evict(set, way, evicted, &ctx);
        self.store_line(base + way, t);
        self.mru[set] = way as u8;
        self.policy.on_fill(set, way, &ctx);
        false
    }

    /// The block the policy would evict if `ctx`'s block were filled
    /// now — the paper's *contender block*. Returns `None` while the
    /// set still has invalid ways (no contender; admission is free).
    pub fn contender(&self, ctx: &AccessCtx<'_>) -> Option<TaggedBlock> {
        let set = self.geom.set_of_tagged(ctx.tagged());
        let base = self.geom.line_index(set, 0);
        let ways = self.geom.ways();
        let way = if self.policy.wants_victim_blocks() {
            let mut blocks = [TaggedBlock::untagged(BlockAddr::new(0)); MAX_WAYS];
            for (w, slot) in blocks[..ways].iter_mut().enumerate() {
                *slot = self.line(base + w)?;
            }
            self.policy.peek_victim(set, &blocks[..ways], ctx)
        } else {
            // Metadata-only policy: just confirm every way is valid
            // (an invalid way means no contender) without
            // materializing the identities.
            if self.ids[base..base + ways].contains(&INVALID_IDENT) {
                return None;
            }
            self.policy.peek_victim(set, &[], ctx)
        };
        self.line(base + way)
    }

    /// Removes `block` if resident; returns whether it was present.
    pub fn invalidate(&mut self, block: impl Into<TaggedBlock>) -> bool {
        let t = block.into();
        if let Some(way) = self.find(t) {
            let set = self.geom.set_of_tagged(t);
            self.ids[self.geom.line_index(set, way)] = INVALID_IDENT;
            self.policy.on_invalidate(set, way);
            true
        } else {
            false
        }
    }

    /// Invalidates every line (the no-ASID context-switch baseline:
    /// a switch guts the whole cache). Returns the number of valid
    /// lines dropped. The policy observes each invalidation so its
    /// per-line metadata resets with the tags.
    pub fn flush(&mut self) -> usize {
        let mut dropped = 0;
        for set in 0..self.geom.sets() {
            for way in 0..self.geom.ways() {
                let i = self.geom.line_index(set, way);
                if self.ids[i] != INVALID_IDENT {
                    self.ids[i] = INVALID_IDENT;
                    self.policy.on_invalidate(set, way);
                    dropped += 1;
                }
            }
        }
        self.stats.flushed_lines += dropped as u64;
        dropped
    }

    /// All resident blocks, lazily (line order). Prefer this over
    /// [`SetAssocCache::resident_blocks`] in per-access loops — it
    /// materializes nothing.
    pub fn iter_resident(&self) -> impl Iterator<Item = TaggedBlock> + '_ {
        (0..self.geom.lines()).filter_map(|i| self.line(i))
    }

    /// Blocks resident in one set, lazily (way order).
    pub fn iter_set_blocks(&self, set: usize) -> impl Iterator<Item = TaggedBlock> + '_ {
        let base = self.geom.line_index(set, 0);
        (0..self.geom.ways()).filter_map(move |w| self.line(base + w))
    }

    /// All resident blocks (for tests and invariant checks); allocates
    /// — see [`SetAssocCache::iter_resident`] for warm paths.
    pub fn resident_blocks(&self) -> Vec<TaggedBlock> {
        self.iter_resident().collect()
    }

    /// Blocks resident in one set (for tests); allocates — see
    /// [`SetAssocCache::iter_set_blocks`] for warm paths.
    pub fn set_blocks(&self, set: usize) -> Vec<TaggedBlock> {
        self.iter_set_blocks(set).collect()
    }
}

impl core::fmt::Debug for SetAssocCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("geometry", &self.geom)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::lru::LruPolicy;
    use acic_types::Asid;

    fn small() -> SetAssocCache {
        let geom = CacheGeometry::from_sets_ways(4, 2);
        SetAssocCache::new(geom, LruPolicy::new(geom))
    }

    fn ctx(block: u64, idx: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(block), idx)
    }

    fn tb(block: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(block))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(&ctx(1, 0)));
        c.fill(&ctx(1, 0));
        assert!(c.access(&ctx(1, 1)));
        assert_eq!(c.stats().demand_accesses, 2);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn no_duplicate_blocks_in_set() {
        let mut c = small();
        c.fill(&ctx(4, 0));
        c.fill(&ctx(4, 1)); // duplicate fill ignored
        assert_eq!(c.resident_blocks().len(), 1);
    }

    #[test]
    fn eviction_only_when_set_full() {
        let mut c = small();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        assert_eq!(c.fill(&ctx(0, 0)), None);
        assert_eq!(c.fill(&ctx(4, 1)), None);
        let evicted = c.fill(&ctx(8, 2));
        assert_eq!(evicted, Some(tb(0)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn contender_is_lru_block() {
        let mut c = small();
        c.fill(&ctx(0, 0));
        assert_eq!(c.contender(&ctx(8, 1)), None); // invalid way remains
        c.fill(&ctx(4, 1));
        // Touch block 0 making block 4 the LRU.
        c.access(&ctx(0, 2));
        assert_eq!(c.contender(&ctx(8, 3)), Some(tb(4)));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small();
        c.fill(&ctx(3, 0));
        assert!(c.invalidate(BlockAddr::new(3)));
        assert!(!c.contains(BlockAddr::new(3)));
        assert!(!c.invalidate(BlockAddr::new(3)));
    }

    #[test]
    fn quiet_access_learns_without_counting() {
        let mut c = small();
        assert!(!c.access(&ctx(1, 0).quiet()));
        c.fill(&ctx(1, 0).quiet());
        assert_eq!(*c.stats(), CacheStats::default(), "warmup is uncounted");
        // The quiet fill still installed the line and trained LRU: a
        // counted access now hits.
        assert!(c.access(&ctx(1, 1)));
        assert_eq!(c.stats().demand_accesses, 1);
        assert_eq!(c.stats().demand_misses, 0);
    }

    #[test]
    fn quiet_eviction_is_uncounted() {
        let mut c = small();
        c.fill(&ctx(0, 0));
        c.fill(&ctx(4, 1));
        assert!(c.fill(&ctx(8, 2).quiet()).is_some(), "eviction happens");
        assert_eq!(c.stats().evictions, 0, "but is not recorded");
    }

    #[test]
    fn prefetch_stats_are_separate() {
        let mut c = small();
        let p = AccessCtx::prefetch(BlockAddr::new(9), 0);
        assert!(!c.access(&p));
        c.fill(&p);
        assert_eq!(c.stats().prefetch_misses, 1);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().demand_accesses, 0);
    }

    #[test]
    fn same_virtual_address_different_asid_does_not_hit() {
        let mut c = small();
        c.fill(&ctx(1, 0));
        // Tenant 1 fetches the same VA: different identity, must miss.
        let tenant = ctx(1, 1).with_asid(Asid::new(1));
        assert!(!c.access(&tenant));
        c.fill(&tenant);
        // Both identities now coexist in the same set.
        assert!(c.contains(BlockAddr::new(1)));
        assert!(c.contains(BlockAddr::new(1).with_asid(Asid::new(1))));
        assert_eq!(c.set_blocks(1).len(), 2);
    }

    #[test]
    fn flush_drops_everything_and_counts() {
        let mut c = small();
        c.fill(&ctx(0, 0));
        c.fill(&ctx(1, 1));
        c.fill(&ctx(2, 2));
        assert_eq!(c.flush(), 3);
        assert!(c.resident_blocks().is_empty());
        assert_eq!(c.stats().flushed_lines, 3);
        // Post-flush behavior is a cold cache.
        assert!(!c.access(&ctx(0, 3)));
        assert_eq!(c.flush(), 0);
    }

    #[test]
    fn evicted_identity_carries_asid() {
        let geom = CacheGeometry::from_sets_ways(1, 1);
        let mut c = SetAssocCache::new(geom, LruPolicy::new(geom));
        let tenant = ctx(5, 0).with_asid(Asid::new(3));
        c.fill(&tenant);
        let evicted = c.fill(&ctx(9, 1)).expect("way was full");
        assert_eq!(evicted, BlockAddr::new(5).with_asid(Asid::new(3)));
    }
}

//! Access context passed to policies.
//!
//! Policies need more than the block address: recency policies use the
//! access index as a timestamp, OPT needs the oracle's next-use
//! answers, prefetch-aware policies (Harmony) need to know whether
//! the access is a demand fetch or a prefetch, and every
//! identity-keyed structure needs the address space ([`Asid`]) the
//! block belongs to — two tenants' overlapping virtual addresses are
//! different blocks.

use acic_trace::{OracleCursor, NO_NEXT_USE};
use acic_types::{Asid, BlockAddr, TaggedBlock};

/// Context for one cache access or fill.
#[derive(Clone, Copy)]
pub struct AccessCtx<'a> {
    /// The block being accessed or filled.
    pub block: BlockAddr,
    /// Address space of the access. [`Asid::HOST`] for single-tenant
    /// traces; the tagged identity `(block, asid)` is what tag match
    /// and signature hashing key on.
    pub asid: Asid,
    /// Demand-access sequence position (monotone; used as an LRU
    /// timestamp).
    pub access_index: u64,
    /// Next-use position of `block` after this access, or
    /// [`NO_NEXT_USE`] when no oracle is attached.
    pub next_use: u64,
    /// Whether this access originates from a prefetcher.
    pub is_prefetch: bool,
    /// Whether this access is counted in [`crate::CacheStats`] (and
    /// the organization-level admission statistics). Warmup-phase
    /// accesses in a sampled simulation clear this: every structure
    /// still learns — tags fill, policies train, ACIC's predictor
    /// updates — but nothing is recorded, so detailed-window deltas
    /// measure only detailed-window traffic.
    pub stats_enabled: bool,
    /// Optional oracle cursor for policies that need future knowledge
    /// about *other* blocks (OPT-bypass). The oracle is keyed by
    /// flattened tagged identity ([`TaggedBlock::oracle_key`]).
    pub oracle: Option<&'a OracleCursor<'a>>,
}

impl<'a> AccessCtx<'a> {
    /// A demand access in the host address space without future
    /// knowledge.
    #[inline]
    pub fn demand(block: BlockAddr, access_index: u64) -> Self {
        AccessCtx {
            block,
            asid: Asid::HOST,
            access_index,
            next_use: NO_NEXT_USE,
            is_prefetch: false,
            stats_enabled: true,
            oracle: None,
        }
    }

    /// A demand access to a tagged block identity.
    #[inline]
    pub fn demand_tagged(tagged: TaggedBlock, access_index: u64) -> Self {
        AccessCtx {
            asid: tagged.asid,
            ..AccessCtx::demand(tagged.block, access_index)
        }
    }

    /// A prefetch access in the host address space without future
    /// knowledge.
    #[inline]
    pub fn prefetch(block: BlockAddr, access_index: u64) -> Self {
        AccessCtx {
            is_prefetch: true,
            ..AccessCtx::demand(block, access_index)
        }
    }

    /// Re-homes the access into another address space.
    #[inline]
    pub fn with_asid(mut self, asid: Asid) -> Self {
        self.asid = asid;
        self
    }

    /// Attaches the block's own next-use position (for OPT).
    #[inline]
    pub fn with_next_use(mut self, next_use: u64) -> Self {
        self.next_use = next_use;
        self
    }

    /// Marks the access as uncounted (warmup phase): state learns,
    /// statistics do not move.
    #[inline]
    pub fn quiet(mut self) -> Self {
        self.stats_enabled = false;
        self
    }

    /// Attaches an oracle cursor (for OPT-bypass).
    #[inline]
    pub fn with_oracle(mut self, oracle: &'a OracleCursor<'a>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// The ASID-tagged identity of the accessed block — the unit of
    /// tag match and signature hashing.
    #[inline]
    pub fn tagged(&self) -> TaggedBlock {
        self.block.with_asid(self.asid)
    }

    /// Flattened 64-bit identity of the accessed block (equals
    /// `block.raw()` in the host space). Identity-keyed hashes must
    /// use this, never the bare block address.
    #[inline]
    pub fn ident(&self) -> u64 {
        self.tagged().ident()
    }

    /// Next-use position of an arbitrary tagged block, if an oracle
    /// is attached; [`NO_NEXT_USE`] otherwise.
    pub fn next_use_of(&self, block: TaggedBlock) -> u64 {
        match self.oracle {
            Some(cur) => cur.next_use_of(block.oracle_key()),
            None => NO_NEXT_USE,
        }
    }
}

impl core::fmt::Debug for AccessCtx<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AccessCtx")
            .field("block", &self.block)
            .field("asid", &self.asid)
            .field("access_index", &self.access_index)
            .field("next_use", &self.next_use)
            .field("is_prefetch", &self.is_prefetch)
            .field("stats_enabled", &self.stats_enabled)
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_defaults() {
        let ctx = AccessCtx::demand(BlockAddr::new(5), 7);
        assert!(!ctx.is_prefetch);
        assert!(ctx.asid.is_host());
        assert_eq!(ctx.next_use, NO_NEXT_USE);
        assert_eq!(ctx.access_index, 7);
        assert_eq!(
            ctx.next_use_of(TaggedBlock::untagged(BlockAddr::new(5))),
            NO_NEXT_USE
        );
        assert_eq!(ctx.ident(), 5);
    }

    #[test]
    fn prefetch_flag() {
        let ctx = AccessCtx::prefetch(BlockAddr::new(5), 0);
        assert!(ctx.is_prefetch);
    }

    #[test]
    fn quiet_clears_stats_enabled() {
        let ctx = AccessCtx::demand(BlockAddr::new(5), 0);
        assert!(ctx.stats_enabled, "accesses count by default");
        assert!(!ctx.quiet().stats_enabled);
    }

    #[test]
    fn with_next_use_sets_value() {
        let ctx = AccessCtx::demand(BlockAddr::new(5), 0).with_next_use(42);
        assert_eq!(ctx.next_use, 42);
    }

    #[test]
    fn tagged_identity_tracks_asid() {
        let t = BlockAddr::new(5).with_asid(Asid::new(2));
        let ctx = AccessCtx::demand_tagged(t, 0);
        assert_eq!(ctx.tagged(), t);
        assert_eq!(ctx.ident(), t.ident());
        assert_ne!(ctx.ident(), 5, "tenant identity differs from host");
        let rehomed = AccessCtx::demand(BlockAddr::new(5), 0).with_asid(Asid::new(2));
        assert_eq!(rehomed.tagged(), t);
    }

    #[test]
    fn oracle_lookup_through_ctx() {
        use acic_trace::ReuseOracle;
        let seq = vec![BlockAddr::new(1), BlockAddr::new(2), BlockAddr::new(1)];
        let oracle = ReuseOracle::from_sequence(&seq);
        let mut cur = oracle.cursor();
        cur.advance(BlockAddr::new(1));
        let ctx = AccessCtx::demand(BlockAddr::new(1), 0).with_oracle(&cur);
        assert_eq!(ctx.next_use_of(TaggedBlock::untagged(BlockAddr::new(1))), 2);
    }
}

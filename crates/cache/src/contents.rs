//! The "what lives in the L1i" abstraction.
//!
//! The timing simulator drives every i-cache organization through
//! [`IcacheContents`]: a plain policy-driven cache, a cache with a
//! victim cache bolted on, the virtual victim cache, or ACIC's
//! i-Filter organization (implemented in `acic-core`). Timing
//! (latencies, MSHRs, prefetch scheduling) stays in `acic-sim`; these
//! types only answer hit/miss and track contents.

use crate::bypass::AdmissionPolicy;
use crate::cache::SetAssocCache;
use crate::ctx::AccessCtx;
use crate::stats::CacheStats;
use crate::victim::VictimCache;
use acic_types::{Asid, TaggedBlock};

/// Result of a contents access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was found somewhere in the organization.
    pub hit: bool,
    /// Extra cycles beyond the normal hit latency (e.g. a virtual
    /// victim cache hit needs an extra probe-and-swap).
    pub extra_latency: u32,
}

impl AccessOutcome {
    /// A plain hit.
    pub fn hit() -> Self {
        AccessOutcome {
            hit: true,
            extra_latency: 0,
        }
    }

    /// A hit that costs `extra` additional cycles.
    pub fn slow_hit(extra: u32) -> Self {
        AccessOutcome {
            hit: true,
            extra_latency: extra,
        }
    }

    /// A miss.
    pub fn miss() -> Self {
        AccessOutcome {
            hit: false,
            extra_latency: 0,
        }
    }
}

/// An L1i contents organization.
///
/// Every implementation honors the stats-gated access mode: when
/// `ctx.stats_enabled` is false (warmup phase of a sampled
/// simulation), the access mutates state exactly as usual — tags
/// fill, policies and predictors train — but no [`CacheStats`] or
/// organization-level counters move.
pub trait IcacheContents {
    /// Handles one access (demand fetch or prefetch probe, per
    /// `ctx.is_prefetch`).
    fn access(&mut self, ctx: &AccessCtx<'_>) -> AccessOutcome;

    /// Installs a block that arrived from the next level.
    fn fill(&mut self, ctx: &AccessCtx<'_>);

    /// Whether the tagged block is resident anywhere (prefetch
    /// filtering; no state change).
    fn contains_block(&self, block: TaggedBlock) -> bool;

    /// The fetch stream switched to address space `next`.
    ///
    /// ASID-tagged organizations need no action — their tags already
    /// disambiguate tenants — so the default is a no-op. The no-ASID
    /// baseline ([`PlainIcache::with_flush_on_switch`]) invalidates
    /// its whole tag store here, modeling a VA-tagged cache that
    /// cannot tell tenants apart.
    fn on_context_switch(&mut self, _next: Asid) {}

    /// Aggregated statistics.
    fn stats(&self) -> CacheStats;

    /// Report label.
    fn label(&self) -> String;

    /// Advances internal pipelines to `now` (organizations with
    /// multi-cycle predictor-update paths override this; default
    /// no-op).
    fn tick(&mut self, _now: acic_types::Cycle) {}

    /// Whether [`IcacheContents::tick`] does anything. Hot loops skip
    /// the per-access virtual call when it doesn't; organizations
    /// overriding `tick` must override this too.
    fn wants_tick(&self) -> bool {
        false
    }

    /// Earliest cycle at which [`IcacheContents::tick`] performs
    /// state-changing work, or `None` when every tick until the next
    /// access/fill/train is a pure no-op. The event-horizon timing
    /// loop uses this to batch ticks across skipped cycle spans;
    /// organizations whose tick can act before the reported cycle
    /// would break that loop's cycle-exactness, so overriders must be
    /// conservative (too early is safe, too late is not).
    fn next_tick_due(&self) -> Option<acic_types::Cycle> {
        None
    }

    /// Concrete-type escape hatch for end-of-run introspection
    /// (e.g. reading ACIC's admission statistics).
    fn as_any(&self) -> &dyn core::any::Any;
}

/// A plain set-associative i-cache, optionally with a direct fill
/// bypass policy (DSB, OBM).
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, CacheGeometry, IcacheContents, PlainIcache, PolicyKind};
/// use acic_types::BlockAddr;
///
/// let mut icache = PlainIcache::new(CacheGeometry::l1i_32k(), PolicyKind::Lru);
/// let ctx = AccessCtx::demand(BlockAddr::new(1), 0);
/// assert!(!icache.access(&ctx).hit);
/// icache.fill(&ctx);
/// assert!(icache.access(&AccessCtx::demand(BlockAddr::new(1), 1)).hit);
/// ```
pub struct PlainIcache {
    cache: SetAssocCache,
    bypass: Option<Box<dyn AdmissionPolicy>>,
    flush_on_switch: bool,
}

impl PlainIcache {
    /// Creates a cache with the given replacement policy and no
    /// bypassing.
    pub fn new(geom: crate::geometry::CacheGeometry, kind: crate::policy::PolicyKind) -> Self {
        PlainIcache {
            cache: SetAssocCache::new(geom, kind.build(geom)),
            bypass: None,
            flush_on_switch: false,
        }
    }

    /// Adds a direct fill-bypass policy (DSB / OBM style).
    pub fn with_bypass(mut self, bypass: Box<dyn AdmissionPolicy>) -> Self {
        self.bypass = Some(bypass);
        self
    }

    /// Makes the cache invalidate everything on a context switch —
    /// the no-ASID baseline organization. (ASID-tagged caches keep
    /// their contents; this models hardware whose tags carry no
    /// address-space bits.)
    pub fn with_flush_on_switch(mut self) -> Self {
        self.flush_on_switch = true;
        self
    }

    /// The underlying cache (for tests and invariant checks).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

impl IcacheContents for PlainIcache {
    fn access(&mut self, ctx: &AccessCtx<'_>) -> AccessOutcome {
        if !ctx.is_prefetch {
            if let Some(b) = self.bypass.as_mut() {
                b.on_demand_access(ctx.tagged(), ctx);
            }
        }
        if self.cache.access(ctx) {
            AccessOutcome::hit()
        } else {
            AccessOutcome::miss()
        }
    }

    fn fill(&mut self, ctx: &AccessCtx<'_>) {
        if let Some(bypass) = self.bypass.as_mut() {
            let contender = self.cache.contender(ctx);
            if contender.is_some() && !bypass.should_admit(ctx.tagged(), contender, ctx) {
                // Count the bypass on the cache's books.
                return;
            }
            let evicted = self.cache.fill(ctx);
            bypass.on_fill(ctx.tagged(), evicted, ctx);
        } else {
            self.cache.fill(ctx);
        }
    }

    fn contains_block(&self, block: TaggedBlock) -> bool {
        self.cache.contains(block)
    }

    fn on_context_switch(&mut self, _next: Asid) {
        if self.flush_on_switch {
            self.cache.flush();
        }
    }

    fn stats(&self) -> CacheStats {
        *self.cache.stats()
    }

    fn label(&self) -> String {
        let base = match &self.bypass {
            Some(b) => format!("{}+{}", self.cache.policy_name(), b.name()),
            None => self.cache.policy_name().to_string(),
        };
        if self.flush_on_switch {
            format!("{base}-flush")
        } else {
            base
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

/// An i-cache with a traditional victim cache beside it (Jouppi 1990;
/// the paper's VC3K comparison point).
pub struct VictimCachedIcache {
    cache: SetAssocCache,
    victim: VictimCache,
    stats: CacheStats,
    /// Extra cycles charged for a hit that is satisfied from the
    /// victim cache (swap back into the main array).
    swap_latency: u32,
}

impl VictimCachedIcache {
    /// Creates the organization; `victim_entries` = 48 reproduces the
    /// paper's 3 KB victim cache.
    pub fn new(
        geom: crate::geometry::CacheGeometry,
        kind: crate::policy::PolicyKind,
        victim_entries: usize,
    ) -> Self {
        VictimCachedIcache {
            cache: SetAssocCache::new(geom, kind.build(geom)),
            victim: VictimCache::new(victim_entries),
            stats: CacheStats::default(),
            swap_latency: 1,
        }
    }

    /// The victim cache (for tests).
    pub fn victim_cache(&self) -> &VictimCache {
        &self.victim
    }
}

impl IcacheContents for VictimCachedIcache {
    fn access(&mut self, ctx: &AccessCtx<'_>) -> AccessOutcome {
        let main_hit = self.cache.access(ctx);
        let outcome = if main_hit {
            AccessOutcome::hit()
        } else if self.victim.probe_and_remove(ctx.block) {
            // Swap into the main cache; the displaced block drops into
            // the victim cache.
            if let Some(evicted) = self.cache.fill(ctx) {
                if let Some(dropped) = self.victim.insert(evicted) {
                    let _ = dropped; // fell out of the hierarchy
                }
            }
            AccessOutcome::slow_hit(self.swap_latency)
        } else {
            AccessOutcome::miss()
        };
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.record_prefetch(outcome.hit);
            } else {
                self.stats.record_demand(outcome.hit);
            }
        }
        outcome
    }

    fn fill(&mut self, ctx: &AccessCtx<'_>) {
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.prefetch_fills += 1;
            } else {
                self.stats.demand_fills += 1;
            }
        }
        if let Some(evicted) = self.cache.fill(ctx) {
            if ctx.stats_enabled {
                self.stats.evictions += 1;
            }
            let _ = self.victim.insert(evicted);
        }
    }

    fn contains_block(&self, block: TaggedBlock) -> bool {
        self.cache.contains(block) || self.victim.contains(block)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!(
            "{}+vc{}",
            self.cache.policy_name(),
            self.victim.capacity() * 64 / 1024
        )
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use crate::policy::PolicyKind;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn plain_counts_demand_misses() {
        let mut i = PlainIcache::new(CacheGeometry::from_sets_ways(2, 2), PolicyKind::Lru);
        assert!(!i.access(&ctx(1, 0)).hit);
        i.fill(&ctx(1, 0));
        assert!(i.access(&ctx(1, 1)).hit);
        assert_eq!(i.stats().demand_misses, 1);
    }

    #[test]
    fn victim_cache_recovers_evictions() {
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut i = VictimCachedIcache::new(geom, PolicyKind::Lru, 4);
        i.fill(&ctx(1, 0));
        i.fill(&ctx(2, 1));
        i.fill(&ctx(3, 2)); // evicts 1 into the victim cache
        assert!(i.contains_block(tb(1)));
        let out = i.access(&ctx(1, 3));
        assert!(out.hit);
        assert_eq!(out.extra_latency, 1);
        // Block 1 swapped back into the main array.
        assert!(i.cache.contains(BlockAddr::new(1)));
    }

    #[test]
    fn bypass_policy_can_reject_fills() {
        use crate::bypass::NeverAdmit;
        let geom = CacheGeometry::from_sets_ways(1, 2);
        let mut i = PlainIcache::new(geom, PolicyKind::Lru).with_bypass(Box::new(NeverAdmit));
        i.fill(&ctx(1, 0));
        i.fill(&ctx(2, 1));
        // Set now full; further fills are rejected.
        i.fill(&ctx(3, 2));
        assert!(!i.contains_block(tb(3)));
        assert!(i.contains_block(tb(1)));
    }
}

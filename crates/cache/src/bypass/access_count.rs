//! Access-count comparison bypassing (Johnson et al., "Run-time cache
//! bypassing", IEEE TC 1999) — the paper's §III strawman: admit the
//! i-Filter victim only if it has been accessed at least as often as
//! its i-cache contender.
//!
//! Counts live in a finite table of saturating counters indexed by a
//! hash of the block address (the MAT — memory access table — of the
//! original work).

use crate::bypass::AdmissionPolicy;
use crate::ctx::AccessCtx;
use acic_types::hash::{fold, mix64};
use acic_types::{SatCounter, TaggedBlock};

/// Admission by access-count comparison.
///
/// # Examples
///
/// ```
/// use acic_cache::bypass::access_count::AccessCountAdmission;
/// use acic_cache::bypass::AdmissionPolicy;
/// use acic_cache::AccessCtx;
/// use acic_types::BlockAddr;
///
/// let mut p = AccessCountAdmission::new();
/// let hot = acic_types::TaggedBlock::untagged(BlockAddr::new(1));
/// let cold = acic_types::TaggedBlock::untagged(BlockAddr::new(2));
/// let ctx = AccessCtx::demand(BlockAddr::new(1), 0);
/// for _ in 0..10 {
///     p.on_demand_access(hot, &ctx);
/// }
/// p.on_demand_access(cold, &ctx);
/// assert!(p.should_admit(hot, Some(cold), &ctx));
/// assert!(!p.should_admit(cold, Some(hot), &ctx));
/// ```
#[derive(Debug)]
pub struct AccessCountAdmission {
    counters: Vec<SatCounter>,
    index_bits: u32,
}

impl Default for AccessCountAdmission {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessCountAdmission {
    /// Default table: 4096 entries of 6-bit counters.
    pub fn new() -> Self {
        Self::with_table(12, 6)
    }

    /// Custom table geometry.
    pub fn with_table(index_bits: u32, counter_bits: u32) -> Self {
        AccessCountAdmission {
            counters: vec![SatCounter::new(counter_bits, 0); 1 << index_bits],
            index_bits,
        }
    }

    fn index(&self, block: TaggedBlock) -> usize {
        fold(mix64(block.ident()), self.index_bits) as usize
    }

    /// Current count for a block (test hook).
    pub fn count_of(&self, block: TaggedBlock) -> u16 {
        self.counters[self.index(block)].value()
    }
}

impl AdmissionPolicy for AccessCountAdmission {
    fn name(&self) -> &'static str {
        "access-count"
    }

    fn should_admit(
        &mut self,
        incoming: TaggedBlock,
        contender: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) -> bool {
        match contender {
            None => true,
            Some(c) => self.count_of(incoming) >= self.count_of(c),
        }
    }

    fn on_demand_access(&mut self, block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        let i = self.index(block);
        self.counters[i].increment();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn no_contender_always_admits() {
        let mut p = AccessCountAdmission::new();
        let ctx = AccessCtx::demand(BlockAddr::new(5), 0);
        assert!(p.should_admit(tb(5), None, &ctx));
    }

    #[test]
    fn counters_saturate() {
        let mut p = AccessCountAdmission::with_table(4, 2);
        let b = tb(3);
        let ctx = AccessCtx::demand(BlockAddr::new(3), 0);
        for _ in 0..100 {
            p.on_demand_access(b, &ctx);
        }
        assert_eq!(p.count_of(b), 3);
    }

    #[test]
    fn equal_counts_admit() {
        let mut p = AccessCountAdmission::new();
        let ctx = AccessCtx::demand(BlockAddr::new(1), 0);
        // Both zero: ties go to the incoming block.
        assert!(p.should_admit(tb(1), Some(tb(2)), &ctx));
    }
}

//! Bypass / admission policies.
//!
//! Two families share one interface:
//!
//! * **Direct fill bypass** (DSB, OBM): on a miss, decide whether the
//!   incoming block enters the i-cache at all.
//! * **i-Filter victim admission** (access-count comparison,
//!   OPT-bypass, and ACIC itself in `acic-core`): decide whether an
//!   i-Filter victim displaces the set's contender block.
//!
//! Both answer the same question — *should `incoming` be admitted, at
//! the cost of `contender`?* — so they all implement
//! [`AdmissionPolicy`].

pub mod access_count;
pub mod dsb;
pub mod obm;
pub mod opt_bypass;

use crate::ctx::AccessCtx;
use acic_types::TaggedBlock;

/// Decides whether an incoming block should be admitted into the
/// cache, displacing `contender`.
pub trait AdmissionPolicy {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Admission decision. `contender` is `None` when the target set
    /// still has invalid ways (admission is then free and the driver
    /// usually skips the query).
    fn should_admit(
        &mut self,
        incoming: TaggedBlock,
        contender: Option<TaggedBlock>,
        ctx: &AccessCtx<'_>,
    ) -> bool;

    /// Observes a demand access (training hook; default no-op).
    fn on_demand_access(&mut self, _block: TaggedBlock, _ctx: &AccessCtx<'_>) {}

    /// Observes the final outcome of a fill this policy allowed
    /// (training hook for policies that watch their own decisions).
    fn on_fill(
        &mut self,
        _incoming: TaggedBlock,
        _evicted: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) {
    }
}

/// Admits everything — the "always insert i-Filter victim" arm of
/// Figure 3a and the default for plain caches.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &'static str {
        "always-admit"
    }

    fn should_admit(
        &mut self,
        _incoming: TaggedBlock,
        _contender: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) -> bool {
        true
    }
}

/// Admits nothing — used by ablation tests ("throw i-Filter victims
/// away blindly", §III).
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverAdmit;

impl AdmissionPolicy for NeverAdmit {
    fn name(&self) -> &'static str {
        "never-admit"
    }

    fn should_admit(
        &mut self,
        _incoming: TaggedBlock,
        _contender: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) -> bool {
        false
    }
}

/// Admits with a fixed probability — the "random bypass with 60%
/// accuracy" comparison of Figure 12b.
#[derive(Clone, Debug)]
pub struct RandomAdmit {
    rng: acic_types::hash::SplitMix64,
    num: u64,
    denom: u64,
}

impl RandomAdmit {
    /// Admits with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    pub fn new(seed: u64, num: u64, denom: u64) -> Self {
        assert!(denom > 0, "denominator must be positive");
        RandomAdmit {
            rng: acic_types::hash::SplitMix64::new(seed),
            num,
            denom,
        }
    }
}

impl AdmissionPolicy for RandomAdmit {
    fn name(&self) -> &'static str {
        "random-admit"
    }

    fn should_admit(
        &mut self,
        _incoming: TaggedBlock,
        _contender: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) -> bool {
        self.rng.chance(self.num, self.denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn always_and_never() {
        let ctx = AccessCtx::demand(BlockAddr::new(1), 0);
        assert!(AlwaysAdmit.should_admit(tb(1), None, &ctx));
        assert!(!NeverAdmit.should_admit(tb(1), None, &ctx));
    }

    #[test]
    fn random_rate_is_plausible() {
        let ctx = AccessCtx::demand(BlockAddr::new(1), 0);
        let mut r = RandomAdmit::new(7, 3, 4);
        let admitted = (0..10_000)
            .filter(|_| r.should_admit(tb(1), None, &ctx))
            .count();
        assert!((7200..=7800).contains(&admitted), "admitted = {admitted}");
    }
}

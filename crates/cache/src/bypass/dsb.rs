//! DSB's adaptive bypassing (Gao & Wilkerson, JWAC 2010): bypass
//! incoming blocks with a probability that is tuned by dueling each
//! bypass decision against the victim it saved.
//!
//! When a block is bypassed, the (bypassed, saved-victim) pair is
//! remembered; whichever is referenced first decides whether the
//! bypass helped (victim reused first) or hurt (bypassed block needed
//! first), and the bypass probability is nudged accordingly. DSB pairs
//! this with segmented-LRU replacement
//! ([`crate::policy::slru::SlruPolicy`]).

use crate::bypass::AdmissionPolicy;
use crate::ctx::AccessCtx;
use acic_types::hash::SplitMix64;
use acic_types::TaggedBlock;

/// Number of dueling-pair slots (Table IV notes 2 sampled sets; we
/// track a comparable handful of in-flight duels).
const DUEL_SLOTS: usize = 16;
/// Probability denominator.
const DENOM: u64 = 64;
/// Adjustment step per duel outcome.
const STEP: u64 = 4;

#[derive(Clone, Copy, Debug, Default)]
struct Duel {
    bypassed: Option<TaggedBlock>,
    victim: Option<TaggedBlock>,
}

/// DSB adaptive bypass policy.
///
/// Starts non-bypassing (probability 0) and learns.
#[derive(Debug)]
pub struct DsbAdmission {
    bypass_num: u64,
    duels: [Duel; DUEL_SLOTS],
    next_slot: usize,
    rng: SplitMix64,
}

impl DsbAdmission {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        DsbAdmission {
            bypass_num: 0,
            duels: [Duel::default(); DUEL_SLOTS],
            next_slot: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Current bypass probability in `[0, 1]`.
    pub fn bypass_probability(&self) -> f64 {
        self.bypass_num as f64 / DENOM as f64
    }
}

impl AdmissionPolicy for DsbAdmission {
    fn name(&self) -> &'static str {
        "dsb"
    }

    fn should_admit(
        &mut self,
        incoming: TaggedBlock,
        contender: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) -> bool {
        let Some(victim) = contender else {
            return true;
        };
        let bypass = self.bypass_num > 0 && self.rng.chance(self.bypass_num, DENOM);
        // Every decision opens a duel so both outcomes can train.
        self.duels[self.next_slot] = Duel {
            bypassed: Some(incoming),
            victim: Some(victim),
        };
        self.next_slot = (self.next_slot + 1) % DUEL_SLOTS;
        if bypass {
            return false;
        }
        // Not bypassing: probe occasionally to discover bypass value
        // even from probability zero (the original seeds exploration
        // through its sampled dueling sets).
        if self.bypass_num == 0 && self.rng.chance(1, 32) {
            return false;
        }
        true
    }

    fn on_demand_access(&mut self, block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        for duel in &mut self.duels {
            if duel.bypassed == Some(block) {
                // The block we kept out was needed first: bypassing hurt.
                self.bypass_num = self.bypass_num.saturating_sub(STEP);
                *duel = Duel::default();
            } else if duel.victim == Some(block) {
                // The victim we saved was reused first: bypassing helped.
                self.bypass_num = (self.bypass_num + STEP).min(DENOM);
                *duel = Duel::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn ctx() -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(0), 0)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn starts_admitting() {
        let mut p = DsbAdmission::new(1);
        assert_eq!(p.bypass_probability(), 0.0);
        let admitted = (0..100)
            .filter(|i| p.should_admit(tb(*i), Some(tb(999)), &ctx()))
            .count();
        assert!(
            admitted > 85,
            "mostly admits at probability zero: {admitted}"
        );
    }

    #[test]
    fn victim_reuse_increases_bypassing() {
        let mut p = DsbAdmission::new(2);
        for i in 0..200u64 {
            let incoming = tb(1000 + i);
            let victim = tb(i % 4);
            p.should_admit(incoming, Some(victim), &ctx());
            // Victim is always reused first -> bypass is good.
            p.on_demand_access(victim, &ctx());
        }
        assert!(
            p.bypass_probability() > 0.5,
            "probability = {}",
            p.bypass_probability()
        );
    }

    #[test]
    fn incoming_reuse_decreases_bypassing() {
        let mut p = DsbAdmission::new(3);
        p.bypass_num = DENOM;
        for i in 0..200u64 {
            let incoming = tb(1000 + i);
            p.should_admit(incoming, Some(tb(5)), &ctx());
            p.on_demand_access(incoming, &ctx());
        }
        assert!(
            p.bypass_probability() < 0.2,
            "probability = {}",
            p.bypass_probability()
        );
    }

    #[test]
    fn no_contender_admits() {
        let mut p = DsbAdmission::new(4);
        assert!(p.should_admit(tb(1), None, &ctx()));
    }
}

//! OBM — optimal bypass monitor (Li et al., PACT 2012).
//!
//! OBM observes (incoming, victim) pairs in a replacement history
//! table (RHT); whichever block of a pair is referenced first reveals
//! what the *optimal* bypass decision would have been, and a
//! signature-indexed bypass decision counter table (BDCT) accumulates
//! those outcomes. Parameters follow Table IV: 21-bit tags, 10-bit
//! signature, 128-entry RHT, 1024-entry BDCT with 4-bit counters.
//!
//! Adaptation note: signatures come from a hash of the incoming block
//! address (the fetch stream has no load PC).

use crate::bypass::AdmissionPolicy;
use crate::ctx::AccessCtx;
use acic_types::hash::{fold, mix64, SplitMix64};
use acic_types::{SatCounter, TaggedBlock};

/// RHT entries (Table IV).
const RHT_ENTRIES: usize = 128;
/// BDCT entries (Table IV).
const BDCT_ENTRIES: usize = 1024;
/// Tag width stored in the RHT (Table IV).
const TAG_BITS: u32 = 21;
/// Sampling rate denominator for opening a monitor entry.
const SAMPLE_DENOM: u64 = 8;

#[derive(Clone, Copy, Debug, Default)]
struct RhtEntry {
    incoming: u32,
    victim: u32,
    signature: u16,
    valid: bool,
}

/// OBM bypass policy.
#[derive(Debug)]
pub struct ObmAdmission {
    rht: [RhtEntry; RHT_ENTRIES],
    next_slot: usize,
    bdct: Vec<SatCounter>,
    rng: SplitMix64,
}

impl ObmAdmission {
    /// Creates the monitor with a deterministic sampling seed.
    pub fn new(seed: u64) -> Self {
        ObmAdmission {
            rht: [RhtEntry::default(); RHT_ENTRIES],
            next_slot: 0,
            // 4-bit counters, weakly below midpoint = admit by default.
            bdct: vec![SatCounter::new_weakly_low(4); BDCT_ENTRIES],
            rng: SplitMix64::new(seed),
        }
    }

    fn tag(block: TaggedBlock) -> u32 {
        fold(mix64(block.ident()), TAG_BITS) as u32
    }

    fn signature(block: TaggedBlock) -> u16 {
        fold(mix64(block.ident()) ^ 0xb10c, 10) as u16
    }

    /// Whether the BDCT currently says "bypass" for this block's
    /// signature (test hook).
    pub fn predicts_bypass(&self, block: TaggedBlock) -> bool {
        self.bdct[Self::signature(block) as usize].is_high()
    }
}

impl AdmissionPolicy for ObmAdmission {
    fn name(&self) -> &'static str {
        "obm"
    }

    fn should_admit(
        &mut self,
        incoming: TaggedBlock,
        contender: Option<TaggedBlock>,
        _ctx: &AccessCtx<'_>,
    ) -> bool {
        let Some(victim) = contender else {
            return true;
        };
        let sig = Self::signature(incoming);
        // Sample a monitor entry (independent of the actual decision —
        // the monitor learns what OPT would do either way).
        if self.rng.chance(1, SAMPLE_DENOM) {
            self.rht[self.next_slot] = RhtEntry {
                incoming: Self::tag(incoming),
                victim: Self::tag(victim),
                signature: sig,
                valid: true,
            };
            self.next_slot = (self.next_slot + 1) % RHT_ENTRIES;
        }
        !self.bdct[sig as usize].is_high()
    }

    fn on_demand_access(&mut self, block: TaggedBlock, _ctx: &AccessCtx<'_>) {
        let tag = Self::tag(block);
        for e in &mut self.rht {
            if !e.valid {
                continue;
            }
            if e.incoming == tag {
                // Incoming block referenced first: keeping it was right.
                self.bdct[e.signature as usize].decrement();
                e.valid = false;
            } else if e.victim == tag {
                // Victim referenced first: bypassing was right.
                self.bdct[e.signature as usize].increment();
                e.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn ctx() -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(0), 0)
    }

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn admits_by_default() {
        let mut p = ObmAdmission::new(1);
        assert!(p.should_admit(tb(1), Some(tb(2)), &ctx()));
    }

    #[test]
    fn victim_first_reuse_trains_toward_bypass() {
        let mut p = ObmAdmission::new(2);
        let incoming = tb(100);
        let victim = tb(7);
        for _ in 0..200 {
            p.should_admit(incoming, Some(victim), &ctx());
            p.on_demand_access(victim, &ctx());
        }
        assert!(p.predicts_bypass(incoming));
        assert!(!p.should_admit(incoming, Some(victim), &ctx()));
    }

    #[test]
    fn incoming_first_reuse_trains_toward_admit() {
        let mut p = ObmAdmission::new(3);
        let incoming = tb(100);
        // Pre-bias toward bypass, then watch it unlearn.
        p.bdct[ObmAdmission::signature(incoming) as usize].set(15);
        let victim = tb(7);
        for _ in 0..400 {
            p.should_admit(incoming, Some(victim), &ctx());
            p.on_demand_access(incoming, &ctx());
        }
        assert!(!p.predicts_bypass(incoming));
    }

    #[test]
    fn resolved_entries_are_freed() {
        let mut p = ObmAdmission::new(4);
        for i in 0..1000u64 {
            p.should_admit(tb(i), Some(tb(i + 5000)), &ctx());
            p.on_demand_access(tb(i), &ctx());
        }
        // All matched entries must be invalid now.
        let stale = p.rht.iter().filter(|e| e.valid).count();
        assert!(stale <= RHT_ENTRIES);
    }
}

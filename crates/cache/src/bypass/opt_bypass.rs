//! OPT-bypass — oracle admission for i-Filter victims (Table IV:
//! "place i-Filter victim in i-cache only if i-Filter victim is known
//! (with oracle knowledge) to have smaller reuse distance than the
//! i-cache contender selected by LRU").
//!
//! This is the upper bound for ACIC's predictor: the same structure,
//! but with perfect knowledge of the future. The paper observes (§IV-E)
//! that OPT-bypass lands close to full OPT replacement, which is what
//! justifies the i-Filter + admission-control decomposition.

use crate::bypass::AdmissionPolicy;
use crate::ctx::AccessCtx;
use acic_types::TaggedBlock;

/// Oracle admission: admit iff the incoming block's next use comes
/// before the contender's.
///
/// Requires an oracle cursor attached to the [`AccessCtx`]; without
/// one, every next-use query answers "never", and the policy admits
/// (ties favor the incoming block, matching the paper's benefit of
/// the doubt).
#[derive(Clone, Copy, Debug, Default)]
pub struct OptBypassAdmission;

impl AdmissionPolicy for OptBypassAdmission {
    fn name(&self) -> &'static str {
        "opt-bypass"
    }

    fn should_admit(
        &mut self,
        incoming: TaggedBlock,
        contender: Option<TaggedBlock>,
        ctx: &AccessCtx<'_>,
    ) -> bool {
        let Some(contender) = contender else {
            return true;
        };
        ctx.next_use_of(incoming) <= ctx.next_use_of(contender)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_trace::ReuseOracle;
    use acic_types::BlockAddr;

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn admits_sooner_reused_block() {
        // Sequence: A B C A ... B is never reused.
        let seq: Vec<BlockAddr> = [10u64, 20, 30, 10]
            .iter()
            .map(|&b| BlockAddr::new(b))
            .collect();
        let oracle = ReuseOracle::from_sequence(&seq);
        let mut cur = oracle.cursor();
        cur.advance(BlockAddr::new(10));
        cur.advance(BlockAddr::new(20));
        cur.advance(BlockAddr::new(30));
        let ctx = AccessCtx::demand(BlockAddr::new(10), 3).with_oracle(&cur);
        let mut p = OptBypassAdmission;
        // Block 10 is used next (position 3); block 20 never again.
        assert!(p.should_admit(tb(10), Some(tb(20)), &ctx));
        assert!(!p.should_admit(tb(20), Some(tb(10)), &ctx));
    }

    #[test]
    fn no_oracle_admits_everything() {
        let ctx = AccessCtx::demand(BlockAddr::new(1), 0);
        let mut p = OptBypassAdmission;
        assert!(p.should_admit(tb(1), Some(tb(2)), &ctx));
    }
}

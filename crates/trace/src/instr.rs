//! The trace record: one dynamic instruction.
//!
//! The simulator is trace-driven (as the paper's Tejas setup is): each
//! record carries the information the timing model needs — PC,
//! functional class, the data address for memory operations, and the
//! resolved direction/target for branches. Wrong-path instructions are
//! not represented; mispredictions are charged as front-end stall
//! cycles, the standard trace-driven approximation.

use acic_types::{Addr, Asid, TaggedBlock, ASID_IDENT_SHIFT};

/// Mask selecting the PC bits of the packed `pc`+ASID word.
const PC_MASK: u64 = (1 << ASID_IDENT_SHIFT) - 1;

/// Classification of a branch instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump.
    Direct,
    /// Direct call (pushes a return address).
    Call,
    /// Return (pops a return address).
    Return,
    /// Indirect jump or call through a register.
    Indirect,
}

/// Functional class of an instruction, with the operands the timing
/// model needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Simple ALU operation (1-cycle execute).
    Alu,
    /// Long-latency arithmetic (multiply/divide class).
    LongAlu,
    /// Load from `addr`.
    Load {
        /// Data address read.
        addr: Addr,
    },
    /// Store to `addr`.
    Store {
        /// Data address written.
        addr: Addr,
    },
    /// Branch with its resolved outcome.
    Branch {
        /// Resolved target of the branch (fall-through PC if not taken).
        target: Addr,
        /// Whether the branch was taken.
        taken: bool,
        /// Branch classification.
        class: BranchClass,
    },
}

/// One dynamic instruction of a trace.
///
/// # Examples
///
/// ```
/// use acic_trace::{BranchClass, Instr};
/// use acic_types::Addr;
///
/// let b = Instr::branch(
///     Addr::new(0x100),
///     Addr::new(0x200),
///     true,
///     BranchClass::Conditional,
/// );
/// assert!(b.is_branch());
/// assert_eq!(b.branch_target(), Some(Addr::new(0x200)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// PC (low 48 bits) and ASID (high 16 bits) packed into one word.
    ///
    /// Trace streams are the hottest data in the workspace — every
    /// simulation loop reads every record — so the ASID rides in the
    /// PC's unused high bits (PCs are virtual addresses below 2^48,
    /// i.e. 256 TiB; asserted by the constructors) instead of growing
    /// the record from 24 to 32 bytes. Access through [`Instr::pc`]
    /// and [`Instr::asid`].
    pc_asid: u64,
    /// Functional class and operands.
    pub kind: InstrKind,
}

impl Instr {
    #[inline]
    fn pack(pc: Addr) -> u64 {
        debug_assert_eq!(pc.raw() & !PC_MASK, 0, "PC above 2^48 ({pc})");
        pc.raw()
    }

    /// Program counter of the instruction.
    #[inline]
    pub fn pc(&self) -> Addr {
        Addr::new(self.pc_asid & PC_MASK)
    }

    /// Address space the PC belongs to. [`Asid::HOST`] for
    /// single-tenant traces; interleaved multi-tenant sources stamp
    /// each instruction with its tenant's ASID.
    #[inline]
    pub fn asid(&self) -> Asid {
        Asid::new((self.pc_asid >> ASID_IDENT_SHIFT) as u16)
    }
    /// Creates a 1-cycle ALU instruction.
    pub fn alu(pc: Addr) -> Self {
        Instr {
            pc_asid: Self::pack(pc),
            kind: InstrKind::Alu,
        }
    }

    /// Creates a long-latency ALU instruction.
    pub fn long_alu(pc: Addr) -> Self {
        Instr {
            pc_asid: Self::pack(pc),
            kind: InstrKind::LongAlu,
        }
    }

    /// Creates a load.
    pub fn load(pc: Addr, addr: Addr) -> Self {
        Instr {
            pc_asid: Self::pack(pc),
            kind: InstrKind::Load { addr },
        }
    }

    /// Creates a store.
    pub fn store(pc: Addr, addr: Addr) -> Self {
        Instr {
            pc_asid: Self::pack(pc),
            kind: InstrKind::Store { addr },
        }
    }

    /// Creates a branch with a resolved outcome.
    pub fn branch(pc: Addr, target: Addr, taken: bool, class: BranchClass) -> Self {
        Instr {
            pc_asid: Self::pack(pc),
            kind: InstrKind::Branch {
                target,
                taken,
                class,
            },
        }
    }

    /// The same instruction re-homed into another address space.
    #[inline]
    pub fn with_asid(mut self, asid: Asid) -> Self {
        self.pc_asid = (self.pc_asid & PC_MASK) | ((asid.raw() as u64) << ASID_IDENT_SHIFT);
        self
    }

    /// The ASID-tagged identity of the instruction's block.
    #[inline]
    pub fn tagged_block(&self) -> TaggedBlock {
        self.pc().block().with_asid(self.asid())
    }

    /// Whether this instruction is any kind of branch.
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InstrKind::Branch { .. })
    }

    /// Whether this instruction reads or writes memory.
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. } | InstrKind::Store { .. })
    }

    /// Resolved target if this is a branch.
    pub fn branch_target(&self) -> Option<Addr> {
        match self.kind {
            InstrKind::Branch { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Whether this is a taken branch.
    pub fn is_taken_branch(&self) -> bool {
        matches!(self.kind, InstrKind::Branch { taken: true, .. })
    }

    /// The PC the front end fetches after this instruction: the branch
    /// target for taken branches, the next sequential PC (assuming
    /// 4-byte instructions) otherwise.
    pub fn next_pc(&self) -> Addr {
        match self.kind {
            InstrKind::Branch {
                target,
                taken: true,
                ..
            } => target,
            _ => self.pc() + 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_follows_taken_branches() {
        let t = Instr::branch(Addr::new(0x10), Addr::new(0x80), true, BranchClass::Direct);
        assert_eq!(t.next_pc(), Addr::new(0x80));
        let nt = Instr::branch(
            Addr::new(0x10),
            Addr::new(0x80),
            false,
            BranchClass::Conditional,
        );
        assert_eq!(nt.next_pc(), Addr::new(0x14));
    }

    #[test]
    fn classification_helpers() {
        let l = Instr::load(Addr::new(0), Addr::new(0x1000));
        assert!(l.is_mem());
        assert!(!l.is_branch());
        assert_eq!(l.branch_target(), None);
        let s = Instr::store(Addr::new(4), Addr::new(0x1000));
        assert!(s.is_mem());
        let a = Instr::alu(Addr::new(8));
        assert!(!a.is_mem() && !a.is_branch());
    }

    #[test]
    fn constructors_default_to_host_space() {
        let i = Instr::alu(Addr::new(0x100));
        assert!(i.asid().is_host());
        assert_eq!(i.tagged_block().block, Addr::new(0x100).block());
        let t = i.with_asid(Asid::new(4));
        assert_eq!(t.asid(), Asid::new(4));
        assert_eq!(t.tagged_block().asid, Asid::new(4));
        // Re-homing changes identity but not the PC or kind.
        assert_eq!(t.pc(), i.pc());
        assert_eq!(t.kind, i.kind);
        assert_ne!(t.tagged_block(), i.tagged_block());
    }

    #[test]
    fn taken_branch_detection() {
        let b = Instr::branch(Addr::new(0), Addr::new(64), true, BranchClass::Call);
        assert!(b.is_taken_branch());
        let b = Instr::branch(Addr::new(0), Addr::new(64), false, BranchClass::Conditional);
        assert!(!b.is_taken_branch());
    }
}

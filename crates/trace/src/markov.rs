//! Reuse-distance buckets and the Markov chain of Figure 1b.
//!
//! The paper illustrates burstiness by treating the sequence of reuse
//! distances of a block as a Markov chain over distance *ranges*: once
//! a block is accessed (distance 0 states dominate) it keeps being
//! accessed for a while, then jumps to a long-distance state.

use acic_types::BlockAddr;
use std::collections::HashMap;

/// The paper's reuse-distance ranges (Figure 1 x-axis), plus an
/// explicit bucket for distances of 10000 and above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum ReuseBucket {
    /// Distance exactly 0 — spatial locality to the same block.
    D0 = 0,
    /// Distance in `[1, 16)` — very short-term temporal locality.
    D1To16 = 1,
    /// Distance in `[16, 512)` — within today's i-cache reach.
    D16To512 = 2,
    /// Distance in `[512, 1024)` — just beyond the i-cache's reach;
    /// the region ACIC targets.
    D512To1024 = 3,
    /// Distance in `[1024, 10000)`.
    D1024To10000 = 4,
    /// Distance of 10000 or more.
    DInf = 5,
}

impl ReuseBucket {
    /// Number of buckets.
    pub const COUNT: usize = 6;

    /// All buckets in ascending distance order.
    pub const ALL: [ReuseBucket; Self::COUNT] = [
        ReuseBucket::D0,
        ReuseBucket::D1To16,
        ReuseBucket::D16To512,
        ReuseBucket::D512To1024,
        ReuseBucket::D1024To10000,
        ReuseBucket::DInf,
    ];

    /// Buckets the given stack distance.
    pub fn of(distance: u64) -> Self {
        match distance {
            0 => ReuseBucket::D0,
            1..=15 => ReuseBucket::D1To16,
            16..=511 => ReuseBucket::D16To512,
            512..=1023 => ReuseBucket::D512To1024,
            1024..=9999 => ReuseBucket::D1024To10000,
            _ => ReuseBucket::DInf,
        }
    }

    /// Paper-style label for figure output.
    pub fn label(self) -> &'static str {
        match self {
            ReuseBucket::D0 => "0",
            ReuseBucket::D1To16 => "1-16",
            ReuseBucket::D16To512 => "16-512",
            ReuseBucket::D512To1024 => "512-1024",
            ReuseBucket::D1024To10000 => "1024-10000",
            ReuseBucket::DInf => ">=10000",
        }
    }
}

/// Markov chain over [`ReuseBucket`] states (Figure 1b).
///
/// For every block we track the bucket of its previous reuse distance;
/// each new reuse distance records a transition `prev -> new`.
///
/// # Examples
///
/// ```
/// use acic_trace::{MarkovChain, ReuseBucket};
/// use acic_types::BlockAddr;
///
/// let seq: Vec<BlockAddr> = [5u64, 5, 5, 9, 5].iter().map(|&b| BlockAddr::new(b)).collect();
/// let chain = MarkovChain::from_sequence(&seq);
/// // Block 5's distances: 0, 0, 1 -> transitions D0->D0, D0->D1To16.
/// let p = chain.transition_probability(ReuseBucket::D0, ReuseBucket::D0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MarkovChain {
    counts: [[u64; ReuseBucket::COUNT]; ReuseBucket::COUNT],
}

impl MarkovChain {
    /// Builds the chain from a block-access sequence.
    pub fn from_sequence(seq: &[BlockAddr]) -> Self {
        let distances = crate::stack_distance::StackDistanceAnalyzer::analyze(seq);
        let mut chain = MarkovChain::default();
        let mut prev_bucket: HashMap<BlockAddr, ReuseBucket> = HashMap::new();
        for (&b, d) in seq.iter().zip(distances) {
            if let Some(d) = d {
                let bucket = ReuseBucket::of(d);
                if let Some(prev) = prev_bucket.insert(b, bucket) {
                    chain.counts[prev as usize][bucket as usize] += 1;
                }
            }
        }
        chain
    }

    /// Records one transition directly.
    pub fn record(&mut self, from: ReuseBucket, to: ReuseBucket) {
        self.counts[from as usize][to as usize] += 1;
    }

    /// Raw transition count.
    pub fn count(&self, from: ReuseBucket, to: ReuseBucket) -> u64 {
        self.counts[from as usize][to as usize]
    }

    /// Probability of moving from `from` to `to`; 0.0 when `from` was
    /// never observed.
    pub fn transition_probability(&self, from: ReuseBucket, to: ReuseBucket) -> f64 {
        let row: u64 = self.counts[from as usize].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[from as usize][to as usize] as f64 / row as f64
        }
    }

    /// Full transition matrix as probabilities, rows indexed by source
    /// bucket.
    pub fn matrix(&self) -> [[f64; ReuseBucket::COUNT]; ReuseBucket::COUNT] {
        let mut m = [[0.0; ReuseBucket::COUNT]; ReuseBucket::COUNT];
        for from in ReuseBucket::ALL {
            for to in ReuseBucket::ALL {
                m[from as usize][to as usize] = self.transition_probability(from, to);
            }
        }
        m
    }

    /// Total transitions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(ReuseBucket::of(0), ReuseBucket::D0);
        assert_eq!(ReuseBucket::of(1), ReuseBucket::D1To16);
        assert_eq!(ReuseBucket::of(15), ReuseBucket::D1To16);
        assert_eq!(ReuseBucket::of(16), ReuseBucket::D16To512);
        assert_eq!(ReuseBucket::of(511), ReuseBucket::D16To512);
        assert_eq!(ReuseBucket::of(512), ReuseBucket::D512To1024);
        assert_eq!(ReuseBucket::of(1023), ReuseBucket::D512To1024);
        assert_eq!(ReuseBucket::of(1024), ReuseBucket::D1024To10000);
        assert_eq!(ReuseBucket::of(9999), ReuseBucket::D1024To10000);
        assert_eq!(ReuseBucket::of(10000), ReuseBucket::DInf);
        assert_eq!(ReuseBucket::of(u64::MAX), ReuseBucket::DInf);
    }

    #[test]
    fn all_order_matches_discriminants() {
        for (i, b) in ReuseBucket::ALL.iter().enumerate() {
            assert_eq!(*b as usize, i);
        }
    }

    #[test]
    fn rows_sum_to_one_when_observed() {
        let mut c = MarkovChain::default();
        c.record(ReuseBucket::D0, ReuseBucket::D0);
        c.record(ReuseBucket::D0, ReuseBucket::DInf);
        let row_sum: f64 = ReuseBucket::ALL
            .iter()
            .map(|&to| c.transition_probability(ReuseBucket::D0, to))
            .sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_row_is_zero() {
        let c = MarkovChain::default();
        assert_eq!(
            c.transition_probability(ReuseBucket::DInf, ReuseBucket::D0),
            0.0
        );
    }

    #[test]
    fn per_block_chains_are_independent() {
        // Blocks 1 and 2 interleaved: each block's own distance is 1
        // every time, so all transitions are within D1To16.
        let seq: Vec<BlockAddr> = [1u64, 2, 1, 2, 1, 2]
            .iter()
            .map(|&b| BlockAddr::new(b))
            .collect();
        let chain = MarkovChain::from_sequence(&seq);
        assert_eq!(chain.count(ReuseBucket::D1To16, ReuseBucket::D1To16), 2);
        assert_eq!(chain.total(), 2);
    }
}

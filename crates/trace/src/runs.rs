//! Grouping instructions into i-cache block accesses.
//!
//! Consecutive instructions that fall in the same 64 B block are
//! serviced by a single i-cache access; the i-cache (and i-Filter) see
//! a new access exactly when the fetch stream moves to a different
//! block. [`BlockRuns`] performs that grouping. Both the functional
//! oracle pre-pass and the timing simulator consume the *same* run
//! sequence, which is what makes the two-pass Belady OPT exact.

use crate::instr::Instr;
use acic_types::{Asid, BlockAddr, TaggedBlock};

/// A maximal run of consecutive instructions within one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRun {
    /// The instruction block being fetched.
    pub block: BlockAddr,
    /// Address space of every instruction in the run (runs never
    /// cross a context switch).
    pub asid: Asid,
    /// Number of instructions in the run.
    pub len: u32,
    /// Whether the run ends with a taken branch (ends the fetch group
    /// even mid-block).
    pub ends_in_taken_branch: bool,
}

impl BlockRun {
    /// The ASID-tagged identity of the run's block.
    #[inline]
    pub fn tagged(&self) -> TaggedBlock {
        self.block.with_asid(self.asid)
    }

    /// Flat oracle key of the run's identity (equals `block` for the
    /// host space).
    #[inline]
    pub fn oracle_key(&self) -> BlockAddr {
        self.tagged().oracle_key()
    }
}

/// Iterator adapter turning an instruction stream into [`BlockRun`]s.
///
/// A run ends when the next instruction's block differs from the
/// current block, after a taken branch (even to the same block —
/// the front end redirects and re-accesses), or at a context switch
/// (the next instruction carries a different ASID — a new address
/// space means a new fetch even if the virtual block coincides).
///
/// # Examples
///
/// ```
/// use acic_trace::{BlockRuns, BranchClass, Instr};
/// use acic_types::Addr;
///
/// // 3 instrs in block 0, then a taken branch back to block 0:
/// let instrs = vec![
///     Instr::alu(Addr::new(0)),
///     Instr::alu(Addr::new(4)),
///     Instr::branch(Addr::new(8), Addr::new(0), true, BranchClass::Direct),
///     Instr::alu(Addr::new(0)),
/// ];
/// let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
/// assert_eq!(runs.len(), 2); // the taken branch splits the runs
/// assert!(runs[0].ends_in_taken_branch);
/// ```
#[derive(Debug)]
pub struct BlockRuns<I> {
    inner: I,
    pending: Option<Instr>,
}

impl<I: Iterator<Item = Instr>> BlockRuns<I> {
    /// Wraps an instruction iterator.
    pub fn new(inner: I) -> Self {
        BlockRuns {
            inner,
            pending: None,
        }
    }
}

impl<I: Iterator<Item = Instr>> Iterator for BlockRuns<I> {
    type Item = BlockRun;

    fn next(&mut self) -> Option<BlockRun> {
        let first = self.pending.take().or_else(|| self.inner.next())?;
        let block = first.pc().block();
        let asid = first.asid();
        let mut len = 1u32;
        let mut ends_taken = first.is_taken_branch();
        if !ends_taken {
            loop {
                match self.inner.next() {
                    None => break,
                    Some(i) => {
                        if i.pc().block() != block || i.asid() != asid {
                            self.pending = Some(i);
                            break;
                        }
                        len += 1;
                        if i.is_taken_branch() {
                            ends_taken = true;
                            break;
                        }
                    }
                }
            }
        }
        Some(BlockRun {
            block,
            asid,
            len,
            ends_in_taken_branch: ends_taken,
        })
    }
}

/// Collects the block-access sequence of a trace (one entry per run).
///
/// This is the sequence the oracle pre-pass indexes; position `i` in
/// the returned vector is "access index `i`" everywhere else in the
/// workspace.
pub fn block_sequence<I: Iterator<Item = Instr>>(instrs: I) -> Vec<BlockAddr> {
    BlockRuns::new(instrs).map(|r| r.block).collect()
}

/// A block run together with its instructions — the fetch-group unit
/// the timing simulator's front end consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunInstrs {
    /// The instruction block being fetched.
    pub block: BlockAddr,
    /// Address space of every instruction in the run.
    pub asid: Asid,
    /// The instructions of the run, in order.
    pub instrs: Vec<Instr>,
}

impl RunInstrs {
    /// An empty placeholder run for use as a reusable
    /// [`GroupedRuns::next_into`] scratch buffer. The field values are
    /// meaningless until the first `next_into` overwrites them.
    pub fn scratch() -> Self {
        RunInstrs {
            block: BlockAddr::new(0),
            asid: Asid::HOST,
            instrs: Vec::new(),
        }
    }

    /// The ASID-tagged identity of the run's block.
    #[inline]
    pub fn tagged(&self) -> TaggedBlock {
        self.block.with_asid(self.asid)
    }
}

/// Like [`BlockRuns`] but carrying the instructions of each run.
///
/// Run boundaries are guaranteed identical to [`BlockRuns`]' (same
/// grouping rule), so the oracle pre-pass over `BlockRuns` indexes the
/// timing pass over `GroupedRuns` one-to-one.
#[derive(Debug)]
pub struct GroupedRuns<I> {
    inner: I,
    pending: Option<Instr>,
}

impl<I: Iterator<Item = Instr>> GroupedRuns<I> {
    /// Wraps an instruction iterator.
    pub fn new(inner: I) -> Self {
        GroupedRuns {
            inner,
            pending: None,
        }
    }

    /// Allocation-free variant of [`Iterator::next`]: writes the next
    /// run into `out`, reusing its `instrs` buffer, and returns
    /// whether a run was produced. Run boundaries are identical to
    /// `next()`'s — warmup-phase loops use this to avoid a `Vec`
    /// allocation per run.
    pub fn next_into(&mut self, out: &mut RunInstrs) -> bool {
        let Some(first) = self.pending.take().or_else(|| self.inner.next()) else {
            return false;
        };
        out.block = first.pc().block();
        out.asid = first.asid();
        out.instrs.clear();
        out.instrs.push(first);
        if !first.is_taken_branch() {
            loop {
                match self.inner.next() {
                    None => break,
                    Some(i) => {
                        if i.pc().block() != out.block || i.asid() != out.asid {
                            self.pending = Some(i);
                            break;
                        }
                        let taken = i.is_taken_branch();
                        out.instrs.push(i);
                        if taken {
                            break;
                        }
                    }
                }
            }
        }
        true
    }

    /// Streams instructions to `f` without materializing runs,
    /// flagging each instruction that begins a new fetch run (the
    /// boundary rule is identical to [`Iterator::next`]'s). Delivers
    /// at least `n` instructions, then keeps going to the end of the
    /// current run so the stream always stops on a true run boundary
    /// — the next `next()`/`next_into()` call starts a genuine run
    /// and per-run bookkeeping (e.g. an oracle cursor advanced once
    /// per run-start flag) stays exact across the hand-off. Returns
    /// the number delivered (fewer than `n` only at trace end).
    ///
    /// This is the warming-tier fast path: no `Vec` per run, no
    /// materialized `RunInstrs` — one callback per instruction.
    pub fn stream_instrs<F>(&mut self, n: u64, mut f: F) -> u64
    where
        F: FnMut(Instr, bool),
    {
        let mut delivered = 0u64;
        let mut prev: Option<Instr> = None;
        while let Some(i) = self.pending.take().or_else(|| self.inner.next()) {
            // `pending` only ever holds an instruction that started a
            // new run, and a drained `pending` means the previous run
            // ended at a taken branch or the stream start — so the
            // first instruction is always a true run start, and later
            // boundaries derive from the previous instruction.
            let start = match prev {
                None => true,
                Some(p) => {
                    p.is_taken_branch() || p.pc().block() != i.pc().block() || p.asid() != i.asid()
                }
            };
            if delivered >= n && start {
                self.pending = Some(i);
                break;
            }
            f(i, start);
            prev = Some(i);
            delivered += 1;
        }
        delivered
    }

    /// FastForward support: drops up to `n` instructions from the
    /// stream — including a buffered lookahead instruction — without
    /// grouping them into runs, delegating the bulk skip to `skip`
    /// (pass [`TraceSource::skip`][crate::TraceSource::skip] of the
    /// source that produced `I`). Returns the number of instructions
    /// actually dropped; the next [`Iterator::next`] call resumes run
    /// grouping at the new position.
    pub fn skip_instrs_with<F>(&mut self, n: u64, skip: F) -> u64
    where
        F: FnOnce(&mut I, u64) -> u64,
    {
        if n == 0 {
            return 0;
        }
        let mut dropped = 0;
        if self.pending.take().is_some() {
            dropped = 1;
        }
        dropped + skip(&mut self.inner, n - dropped)
    }
}

impl<I: Iterator<Item = Instr>> Iterator for GroupedRuns<I> {
    type Item = RunInstrs;

    fn next(&mut self) -> Option<RunInstrs> {
        let first = self.pending.take().or_else(|| self.inner.next())?;
        let block = first.pc().block();
        let asid = first.asid();
        let mut instrs = vec![first];
        if !first.is_taken_branch() {
            loop {
                match self.inner.next() {
                    None => break,
                    Some(i) => {
                        if i.pc().block() != block || i.asid() != asid {
                            self.pending = Some(i);
                            break;
                        }
                        let taken = i.is_taken_branch();
                        instrs.push(i);
                        if taken {
                            break;
                        }
                    }
                }
            }
        }
        Some(RunInstrs {
            block,
            asid,
            instrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BranchClass;
    use acic_types::Addr;

    fn seq_alu(n: u64, base: u64) -> Vec<Instr> {
        (0..n)
            .map(|i| Instr::alu(Addr::new(base + i * 4)))
            .collect()
    }

    #[test]
    fn sequential_code_groups_into_blocks() {
        let runs: Vec<_> = BlockRuns::new(seq_alu(48, 0).into_iter()).collect();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len == 16));
        assert_eq!(runs[0].block, BlockAddr::new(0));
        assert_eq!(runs[2].block, BlockAddr::new(2));
    }

    #[test]
    fn not_taken_branch_does_not_split_run() {
        let mut instrs = seq_alu(2, 0);
        instrs.push(Instr::branch(
            Addr::new(8),
            Addr::new(0x100),
            false,
            BranchClass::Conditional,
        ));
        instrs.push(Instr::alu(Addr::new(12)));
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 4);
        assert!(!runs[0].ends_in_taken_branch);
    }

    #[test]
    fn taken_branch_to_same_block_still_splits() {
        let instrs = vec![
            Instr::branch(Addr::new(0), Addr::new(16), true, BranchClass::Direct),
            Instr::alu(Addr::new(16)),
        ];
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].block, runs[1].block);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        assert_eq!(BlockRuns::new(core::iter::empty()).count(), 0);
    }

    #[test]
    fn run_lengths_sum_to_instruction_count() {
        let mut instrs = seq_alu(37, 0);
        instrs.push(Instr::branch(
            Addr::new(37 * 4),
            Addr::new(0),
            true,
            BranchClass::Direct,
        ));
        instrs.extend(seq_alu(5, 0));
        let total: u32 = BlockRuns::new(instrs.iter().copied()).map(|r| r.len).sum();
        assert_eq!(total as usize, instrs.len());
    }

    #[test]
    fn context_switch_splits_runs_even_within_one_block() {
        use acic_types::Asid;
        // Two tenants executing the *same* virtual block back to back:
        // the ASID change must split the run — the fetch belongs to a
        // different address space.
        let instrs = vec![
            Instr::alu(Addr::new(0)),
            Instr::alu(Addr::new(4)),
            Instr::alu(Addr::new(8)).with_asid(Asid::new(1)),
            Instr::alu(Addr::new(12)).with_asid(Asid::new(1)),
        ];
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].block, runs[1].block);
        assert_eq!(runs[0].asid, Asid::HOST);
        assert_eq!(runs[1].asid, Asid::new(1));
        assert_ne!(runs[0].tagged(), runs[1].tagged());
        assert_ne!(runs[0].oracle_key(), runs[1].oracle_key());
        assert_eq!(runs[0].oracle_key(), runs[0].block, "host key is bare");
    }

    #[test]
    fn block_sequence_matches_runs() {
        let instrs = seq_alu(20, 0);
        let seq = block_sequence(instrs.iter().copied());
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(seq.len(), runs.len());
        for (b, r) in seq.iter().zip(&runs) {
            assert_eq!(*b, r.block);
        }
    }
}

#[cfg(test)]
mod grouped_tests {
    use super::*;
    use crate::instr::BranchClass;
    use acic_types::Addr;

    #[test]
    fn stream_instrs_boundaries_match_block_runs() {
        let mut instrs = Vec::new();
        let mut x: u64 = 11;
        for i in 0..400u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
            if x.is_multiple_of(5) {
                instrs.push(Instr::branch(
                    Addr::new(i * 4),
                    Addr::new((x >> 17) % 1024 * 4),
                    x.is_multiple_of(3),
                    BranchClass::Conditional,
                ));
            } else {
                instrs.push(Instr::alu(Addr::new(i * 4)));
            }
        }
        let expect: Vec<BlockRun> = BlockRuns::new(instrs.iter().copied()).collect();
        // Stream in two chunks with an odd split: boundaries must
        // still match, and the hand-off must land on a run boundary.
        let mut runs = GroupedRuns::new(instrs.iter().copied());
        let mut starts = 0u64;
        let mut seen = 0u64;
        let first = runs.stream_instrs(137, |_, s| {
            if s {
                starts += 1;
            }
        });
        seen += first;
        assert!(first >= 137, "overshoots to the end of the run");
        seen += runs.stream_instrs(u64::MAX, |_, s| {
            if s {
                starts += 1;
            }
        });
        assert_eq!(seen as usize, instrs.len());
        assert_eq!(starts as usize, expect.len(), "one start per run");
    }

    #[test]
    fn next_into_matches_next() {
        let mut x: u64 = 3;
        let mut instrs = Vec::new();
        for i in 0..300u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            if x.is_multiple_of(7) {
                instrs.push(Instr::branch(
                    Addr::new(i * 4),
                    Addr::new((x >> 20) % 2048 * 4),
                    x.is_multiple_of(2),
                    BranchClass::Conditional,
                ));
            } else {
                instrs.push(Instr::alu(Addr::new(i * 4)));
            }
        }
        let by_next: Vec<RunInstrs> = GroupedRuns::new(instrs.iter().copied()).collect();
        let mut by_into = Vec::new();
        let mut it = GroupedRuns::new(instrs.iter().copied());
        let mut scratch = RunInstrs {
            block: acic_types::BlockAddr::new(0),
            asid: acic_types::Asid::HOST,
            instrs: Vec::new(),
        };
        while it.next_into(&mut scratch) {
            by_into.push(scratch.clone());
        }
        assert_eq!(by_next, by_into);
    }

    #[test]
    fn skip_instrs_drops_pending_and_resumes_grouping() {
        let instrs: Vec<Instr> = (0..40).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let mut runs = GroupedRuns::new(instrs.iter().copied());
        // Consume one run (16 instrs) — this buffers instruction 16 as
        // the pending lookahead.
        assert_eq!(runs.next().unwrap().instrs.len(), 16);
        // Skip 10 (the pending one + 9 more): resume at instr 26.
        assert_eq!(runs.skip_instrs_with(10, crate::source::skip_instrs), 10);
        let resumed = runs.next().unwrap();
        assert_eq!(resumed.instrs[0].pc(), Addr::new(26 * 4));
        // Remaining instructions all accounted for.
        let rest: usize = core::iter::once(resumed.instrs.len())
            .chain(runs.map(|r| r.instrs.len()))
            .sum();
        assert_eq!(rest, 40 - 16 - 10);
    }

    #[test]
    fn grouped_runs_match_block_runs_boundaries() {
        // Pseudo-random instruction stream with branches.
        let mut x: u64 = 77;
        let mut pc = 0u64;
        let mut instrs = Vec::new();
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(5) {
                let target = (x >> 13) % 4096 * 4;
                let taken = x.is_multiple_of(2);
                instrs.push(Instr::branch(
                    Addr::new(pc),
                    Addr::new(target),
                    taken,
                    BranchClass::Conditional,
                ));
                pc = if taken { target } else { pc + 4 };
            } else {
                instrs.push(Instr::alu(Addr::new(pc)));
                pc += 4;
            }
        }
        let simple: Vec<_> = BlockRuns::new(instrs.iter().copied()).collect();
        let grouped: Vec<_> = GroupedRuns::new(instrs.iter().copied()).collect();
        assert_eq!(simple.len(), grouped.len());
        for (s, g) in simple.iter().zip(&grouped) {
            assert_eq!(s.block, g.block);
            assert_eq!(s.len as usize, g.instrs.len());
        }
        let total: usize = grouped.iter().map(|g| g.instrs.len()).sum();
        assert_eq!(total, instrs.len());
    }
}

//! Grouping instructions into i-cache block accesses.
//!
//! Consecutive instructions that fall in the same 64 B block are
//! serviced by a single i-cache access; the i-cache (and i-Filter) see
//! a new access exactly when the fetch stream moves to a different
//! block. [`BlockRuns`] performs that grouping. Both the functional
//! oracle pre-pass and the timing simulator consume the *same* run
//! sequence, which is what makes the two-pass Belady OPT exact.

use crate::instr::Instr;
use acic_types::{Asid, BlockAddr, TaggedBlock};

/// A maximal run of consecutive instructions within one block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRun {
    /// The instruction block being fetched.
    pub block: BlockAddr,
    /// Address space of every instruction in the run (runs never
    /// cross a context switch).
    pub asid: Asid,
    /// Number of instructions in the run.
    pub len: u32,
    /// Whether the run ends with a taken branch (ends the fetch group
    /// even mid-block).
    pub ends_in_taken_branch: bool,
}

impl BlockRun {
    /// The ASID-tagged identity of the run's block.
    #[inline]
    pub fn tagged(&self) -> TaggedBlock {
        self.block.with_asid(self.asid)
    }

    /// Flat oracle key of the run's identity (equals `block` for the
    /// host space).
    #[inline]
    pub fn oracle_key(&self) -> BlockAddr {
        self.tagged().oracle_key()
    }
}

/// Iterator adapter turning an instruction stream into [`BlockRun`]s.
///
/// A run ends when the next instruction's block differs from the
/// current block, after a taken branch (even to the same block —
/// the front end redirects and re-accesses), or at a context switch
/// (the next instruction carries a different ASID — a new address
/// space means a new fetch even if the virtual block coincides).
///
/// # Examples
///
/// ```
/// use acic_trace::{BlockRuns, BranchClass, Instr};
/// use acic_types::Addr;
///
/// // 3 instrs in block 0, then a taken branch back to block 0:
/// let instrs = vec![
///     Instr::alu(Addr::new(0)),
///     Instr::alu(Addr::new(4)),
///     Instr::branch(Addr::new(8), Addr::new(0), true, BranchClass::Direct),
///     Instr::alu(Addr::new(0)),
/// ];
/// let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
/// assert_eq!(runs.len(), 2); // the taken branch splits the runs
/// assert!(runs[0].ends_in_taken_branch);
/// ```
#[derive(Debug)]
pub struct BlockRuns<I> {
    inner: I,
    pending: Option<Instr>,
}

impl<I: Iterator<Item = Instr>> BlockRuns<I> {
    /// Wraps an instruction iterator.
    pub fn new(inner: I) -> Self {
        BlockRuns {
            inner,
            pending: None,
        }
    }
}

impl<I: Iterator<Item = Instr>> Iterator for BlockRuns<I> {
    type Item = BlockRun;

    fn next(&mut self) -> Option<BlockRun> {
        let first = self.pending.take().or_else(|| self.inner.next())?;
        let block = first.pc().block();
        let asid = first.asid();
        let mut len = 1u32;
        let mut ends_taken = first.is_taken_branch();
        if !ends_taken {
            loop {
                match self.inner.next() {
                    None => break,
                    Some(i) => {
                        if i.pc().block() != block || i.asid() != asid {
                            self.pending = Some(i);
                            break;
                        }
                        len += 1;
                        if i.is_taken_branch() {
                            ends_taken = true;
                            break;
                        }
                    }
                }
            }
        }
        Some(BlockRun {
            block,
            asid,
            len,
            ends_in_taken_branch: ends_taken,
        })
    }
}

/// Collects the block-access sequence of a trace (one entry per run).
///
/// This is the sequence the oracle pre-pass indexes; position `i` in
/// the returned vector is "access index `i`" everywhere else in the
/// workspace.
pub fn block_sequence<I: Iterator<Item = Instr>>(instrs: I) -> Vec<BlockAddr> {
    BlockRuns::new(instrs).map(|r| r.block).collect()
}

/// A block run together with its instructions — the fetch-group unit
/// the timing simulator's front end consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunInstrs {
    /// The instruction block being fetched.
    pub block: BlockAddr,
    /// Address space of every instruction in the run.
    pub asid: Asid,
    /// The instructions of the run, in order.
    pub instrs: Vec<Instr>,
}

impl RunInstrs {
    /// The ASID-tagged identity of the run's block.
    #[inline]
    pub fn tagged(&self) -> TaggedBlock {
        self.block.with_asid(self.asid)
    }
}

/// Like [`BlockRuns`] but carrying the instructions of each run.
///
/// Run boundaries are guaranteed identical to [`BlockRuns`]' (same
/// grouping rule), so the oracle pre-pass over `BlockRuns` indexes the
/// timing pass over `GroupedRuns` one-to-one.
#[derive(Debug)]
pub struct GroupedRuns<I> {
    inner: I,
    pending: Option<Instr>,
}

impl<I: Iterator<Item = Instr>> GroupedRuns<I> {
    /// Wraps an instruction iterator.
    pub fn new(inner: I) -> Self {
        GroupedRuns {
            inner,
            pending: None,
        }
    }
}

impl<I: Iterator<Item = Instr>> Iterator for GroupedRuns<I> {
    type Item = RunInstrs;

    fn next(&mut self) -> Option<RunInstrs> {
        let first = self.pending.take().or_else(|| self.inner.next())?;
        let block = first.pc().block();
        let asid = first.asid();
        let mut instrs = vec![first];
        if !first.is_taken_branch() {
            loop {
                match self.inner.next() {
                    None => break,
                    Some(i) => {
                        if i.pc().block() != block || i.asid() != asid {
                            self.pending = Some(i);
                            break;
                        }
                        let taken = i.is_taken_branch();
                        instrs.push(i);
                        if taken {
                            break;
                        }
                    }
                }
            }
        }
        Some(RunInstrs {
            block,
            asid,
            instrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BranchClass;
    use acic_types::Addr;

    fn seq_alu(n: u64, base: u64) -> Vec<Instr> {
        (0..n)
            .map(|i| Instr::alu(Addr::new(base + i * 4)))
            .collect()
    }

    #[test]
    fn sequential_code_groups_into_blocks() {
        let runs: Vec<_> = BlockRuns::new(seq_alu(48, 0).into_iter()).collect();
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.len == 16));
        assert_eq!(runs[0].block, BlockAddr::new(0));
        assert_eq!(runs[2].block, BlockAddr::new(2));
    }

    #[test]
    fn not_taken_branch_does_not_split_run() {
        let mut instrs = seq_alu(2, 0);
        instrs.push(Instr::branch(
            Addr::new(8),
            Addr::new(0x100),
            false,
            BranchClass::Conditional,
        ));
        instrs.push(Instr::alu(Addr::new(12)));
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len, 4);
        assert!(!runs[0].ends_in_taken_branch);
    }

    #[test]
    fn taken_branch_to_same_block_still_splits() {
        let instrs = vec![
            Instr::branch(Addr::new(0), Addr::new(16), true, BranchClass::Direct),
            Instr::alu(Addr::new(16)),
        ];
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].block, runs[1].block);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        assert_eq!(BlockRuns::new(core::iter::empty()).count(), 0);
    }

    #[test]
    fn run_lengths_sum_to_instruction_count() {
        let mut instrs = seq_alu(37, 0);
        instrs.push(Instr::branch(
            Addr::new(37 * 4),
            Addr::new(0),
            true,
            BranchClass::Direct,
        ));
        instrs.extend(seq_alu(5, 0));
        let total: u32 = BlockRuns::new(instrs.iter().copied()).map(|r| r.len).sum();
        assert_eq!(total as usize, instrs.len());
    }

    #[test]
    fn context_switch_splits_runs_even_within_one_block() {
        use acic_types::Asid;
        // Two tenants executing the *same* virtual block back to back:
        // the ASID change must split the run — the fetch belongs to a
        // different address space.
        let instrs = vec![
            Instr::alu(Addr::new(0)),
            Instr::alu(Addr::new(4)),
            Instr::alu(Addr::new(8)).with_asid(Asid::new(1)),
            Instr::alu(Addr::new(12)).with_asid(Asid::new(1)),
        ];
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].block, runs[1].block);
        assert_eq!(runs[0].asid, Asid::HOST);
        assert_eq!(runs[1].asid, Asid::new(1));
        assert_ne!(runs[0].tagged(), runs[1].tagged());
        assert_ne!(runs[0].oracle_key(), runs[1].oracle_key());
        assert_eq!(runs[0].oracle_key(), runs[0].block, "host key is bare");
    }

    #[test]
    fn block_sequence_matches_runs() {
        let instrs = seq_alu(20, 0);
        let seq = block_sequence(instrs.iter().copied());
        let runs: Vec<_> = BlockRuns::new(instrs.into_iter()).collect();
        assert_eq!(seq.len(), runs.len());
        for (b, r) in seq.iter().zip(&runs) {
            assert_eq!(*b, r.block);
        }
    }
}

#[cfg(test)]
mod grouped_tests {
    use super::*;
    use crate::instr::BranchClass;
    use acic_types::Addr;

    #[test]
    fn grouped_runs_match_block_runs_boundaries() {
        // Pseudo-random instruction stream with branches.
        let mut x: u64 = 77;
        let mut pc = 0u64;
        let mut instrs = Vec::new();
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if x.is_multiple_of(5) {
                let target = (x >> 13) % 4096 * 4;
                let taken = x.is_multiple_of(2);
                instrs.push(Instr::branch(
                    Addr::new(pc),
                    Addr::new(target),
                    taken,
                    BranchClass::Conditional,
                ));
                pc = if taken { target } else { pc + 4 };
            } else {
                instrs.push(Instr::alu(Addr::new(pc)));
                pc += 4;
            }
        }
        let simple: Vec<_> = BlockRuns::new(instrs.iter().copied()).collect();
        let grouped: Vec<_> = GroupedRuns::new(instrs.iter().copied()).collect();
        assert_eq!(simple.len(), grouped.len());
        for (s, g) in simple.iter().zip(&grouped) {
            assert_eq!(s.block, g.block);
            assert_eq!(s.len as usize, g.instrs.len());
        }
        let total: usize = grouped.iter().map(|g| g.instrs.len()).sum();
        assert_eq!(total, instrs.len());
    }
}

//! Trace sources: resettable, deterministic instruction streams.
//!
//! Belady's OPT and the paper's oracle analyses need *two passes* over
//! the same trace (one to learn the future, one to simulate), so a
//! trace source must be re-openable from the start and byte-for-byte
//! deterministic. Synthetic workloads satisfy this by construction
//! (they are seeded); [`VecTrace`] provides an in-memory source for
//! tests and examples.

use crate::instr::Instr;

/// A deterministic, re-openable stream of instructions.
///
/// Implementations must yield the identical sequence on every call to
/// [`TraceSource::iter`]; the OPT oracle relies on this.
///
/// # Reset semantics
///
/// There is no separate `reset` method: **calling `iter()` again is
/// the reset operation.** Each call opens an independent pass from the
/// very first instruction; passes must not share mutable state, and a
/// later pass must be byte-identical to an earlier one regardless of
/// how far the earlier one was driven. Composed sources (e.g.
/// [`crate::InterleavedTrace`]) must reset *every* child and replay
/// the identical composition schedule — partial resets desynchronize
/// the oracle pre-pass from the simulation pass.
pub trait TraceSource {
    /// Iterator type over instructions.
    type Iter<'a>: Iterator<Item = Instr>
    where
        Self: 'a;

    /// Opens a fresh pass over the trace from the beginning.
    fn iter(&self) -> Self::Iter<'_>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "trace"
    }

    /// Exact instruction count, when the source knows it without
    /// walking the trace.
    ///
    /// Simulators use this to size warm-up windows and cycle bounds
    /// without a counting pre-pass; sources that would have to
    /// materialize the stream to answer should return `None` (the
    /// simulator then falls back to counting).
    ///
    /// The hint is a contract, not an estimate: when `Some(n)` is
    /// returned, `iter()` must yield exactly `n` instructions.
    /// Composed sources must propagate exactness — report the
    /// combined count when **all** children report one, and `None`
    /// as soon as any child cannot answer.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Skips up to `n` instructions on an open pass, returning how
    /// many were actually skipped (fewer only when the trace ends
    /// first).
    ///
    /// This is the sampled engine's FastForward path: the default
    /// implementation advances the iterator via [`skip_instrs`],
    /// which exact-sized, slice-backed sources (e.g. [`VecTrace`])
    /// satisfy in O(1) — no per-instruction decode work. Generated
    /// sources fall back to generate-and-discard; an implementation
    /// with a cheaper state jump may override.
    fn skip(iter: &mut Self::Iter<'_>, n: u64) -> u64 {
        skip_instrs(iter, n)
    }

    /// Deterministic seed derived from the trace's name.
    ///
    /// Every simulation path (timing and functional) seeds stochastic
    /// organization components from this one value, so the same
    /// workload produces the same behavior everywhere — keep all
    /// callers on this method rather than hand-rolling the hash.
    fn seed(&self) -> u64 {
        acic_types::hash::mix64(
            self.name()
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)),
        )
    }
}

/// Advances `iter` past up to `n` items, returning the exact number
/// consumed.
///
/// Exact-sized iterators (`size_hint` with equal bounds, e.g. slice
/// iterators) are skipped with a single [`Iterator::nth`] call —
/// O(1) for slices; everything else walks item by item so the count
/// stays exact even when the iterator ends mid-skip.
pub fn skip_instrs<I: Iterator>(iter: &mut I, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let (lo, hi) = iter.size_hint();
    if hi == Some(lo) {
        let k = n.min(lo as u64);
        if k > 0 {
            iter.nth(k as usize - 1);
        }
        return k;
    }
    let mut skipped = 0;
    while skipped < n && iter.next().is_some() {
        skipped += 1;
    }
    skipped
}

/// A prefix view of another source: the first `limit` instructions.
///
/// The multi-fidelity DSE ladder simulates cheap low-budget rungs
/// against the *same* frozen trace the expensive rungs use — the
/// prefix must be byte-identical to the full trace's opening, not a
/// fresh generation at the smaller budget (multi-tenant interleaving
/// schedules differ per total budget). `Truncated` provides exactly
/// that view without copying: it borrows the inner source, clamps
/// iteration and [`TraceSource::skip`] to the limit, and keeps the
/// inner source's name — and therefore, by the seed contract, its
/// [`TraceSource::seed`].
///
/// # Examples
///
/// ```
/// use acic_trace::{Instr, TraceSource, Truncated, VecTrace};
/// use acic_types::Addr;
///
/// let full: VecTrace = (0..10).map(|i| Instr::alu(Addr::new(i * 4))).collect();
/// let prefix = Truncated::new(&full, 4);
/// assert_eq!(prefix.iter().count(), 4);
/// assert_eq!(prefix.len_hint(), Some(4));
/// assert_eq!(prefix.seed(), full.seed());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Truncated<'s, S> {
    inner: &'s S,
    limit: u64,
}

impl<'s, S: TraceSource> Truncated<'s, S> {
    /// Wraps `inner`, exposing at most its first `limit` instructions.
    pub fn new(inner: &'s S, limit: u64) -> Self {
        Truncated { inner, limit }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &'s S {
        self.inner
    }

    /// The instruction cap (the view may be shorter if the inner
    /// source is).
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// Iterator over a [`Truncated`] prefix.
#[derive(Clone, Debug)]
pub struct TruncatedIter<'a, S: TraceSource + 'a> {
    inner: S::Iter<'a>,
    remaining: u64,
}

impl<'a, S: TraceSource> Iterator for TruncatedIter<'a, S> {
    type Item = Instr;

    #[inline(always)]
    fn next(&mut self) -> Option<Instr> {
        if self.remaining == 0 {
            return None;
        }
        let i = self.inner.next()?;
        self.remaining -= 1;
        Some(i)
    }

    /// Fast-forwards via the inner source's own [`TraceSource::skip`]
    /// (O(1) on slice- and packed-backed sources), clamped to the
    /// prefix. [`skip_instrs`] reaches this through `nth` whenever the
    /// view is exact-sized, so sampled simulation over a prefix keeps
    /// the underlying trace's fast-forward cost.
    #[inline]
    fn nth(&mut self, n: usize) -> Option<Instr> {
        let k = (n as u64).min(self.remaining);
        let done = S::skip(&mut self.inner, k);
        self.remaining -= done;
        if done < k {
            self.remaining = 0;
            return None;
        }
        self.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.size_hint();
        let cap = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (lo.min(cap), Some(hi.map_or(cap, |h| h.min(cap))))
    }
}

impl<'a, S: TraceSource> TraceSource for Truncated<'a, S> {
    type Iter<'b>
        = TruncatedIter<'b, S>
    where
        Self: 'b;

    fn iter(&self) -> Self::Iter<'_> {
        TruncatedIter {
            inner: self.inner.iter(),
            remaining: self.limit,
        }
    }

    /// Delegates to the inner source: a prefix is the *same workload*
    /// (same seed, same reports label), just cut short.
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint().map(|n| n.min(self.limit))
    }
}

/// An in-memory trace, mainly for tests and examples.
///
/// # Examples
///
/// ```
/// use acic_trace::{Instr, TraceSource, VecTrace};
/// use acic_types::Addr;
///
/// let t = VecTrace::new(vec![Instr::alu(Addr::new(0)), Instr::alu(Addr::new(4))]);
/// assert_eq!(t.iter().count(), 2);
/// assert_eq!(t.iter().count(), 2); // re-openable
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecTrace {
    instrs: Vec<Instr>,
    name: String,
}

impl VecTrace {
    /// Creates a trace from a vector of instructions.
    pub fn new(instrs: Vec<Instr>) -> Self {
        VecTrace {
            instrs,
            name: "vec-trace".to_string(),
        }
    }

    /// Creates a named trace.
    pub fn with_name(instrs: Vec<Instr>, name: impl Into<String>) -> Self {
        VecTrace {
            instrs,
            name: name.into(),
        }
    }

    /// Materializes another source into memory (keeping its name).
    ///
    /// Generated sources (the synthetic workloads) pay the generator
    /// cost on every pass; materializing once turns repeat
    /// simulations over the same trace — policy sweeps, throughput
    /// benchmarks — into cheap slice iteration.
    pub fn from_source<S: TraceSource>(source: &S) -> Self {
        VecTrace {
            instrs: source.iter().collect(),
            name: source.name().to_string(),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Streaming iterator over a materialized trace.
///
/// Yields by copy like `slice::iter().copied()`, but every cache
/// line's worth of instructions it issues a *non-temporal* host
/// prefetch a couple of kilobytes ahead. A long trace (hundreds of
/// megabytes) read at warm-phase rates is a firehose that would
/// otherwise evict the simulator's tag and predictor arrays from the
/// host's LLC on every pass; the NTA hint keeps the stream out of the
/// way. Values are identical to plain slice iteration — the hint has
/// no architectural effect — and `nth` stays O(1), which is what
/// [`TraceSource::skip`] relies on.
#[derive(Clone, Debug)]
pub struct VecTraceIter<'a> {
    instrs: &'a [Instr],
    at: usize,
}

/// Bytes of lookahead for the streaming prefetch (amortized one hint
/// per 64 B line).
const STREAM_AHEAD_BYTES: usize = 2048;

#[inline(always)]
fn stream_hint(instrs: &[Instr], at: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        let per_line = (64 / core::mem::size_of::<Instr>()).max(1);
        if at.is_multiple_of(per_line) {
            let ahead = at + STREAM_AHEAD_BYTES / core::mem::size_of::<Instr>();
            if ahead < instrs.len() {
                unsafe {
                    core::arch::x86_64::_mm_prefetch(
                        instrs.as_ptr().add(ahead) as *const i8,
                        core::arch::x86_64::_MM_HINT_NTA,
                    );
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (instrs, at);
}

impl Iterator for VecTraceIter<'_> {
    type Item = Instr;

    #[inline(always)]
    fn next(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.at).copied()?;
        stream_hint(self.instrs, self.at);
        self.at += 1;
        Some(i)
    }

    #[inline]
    fn nth(&mut self, n: usize) -> Option<Instr> {
        self.at = self.at.saturating_add(n);
        self.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.instrs.len() - self.at.min(self.instrs.len());
        (left, Some(left))
    }
}

impl ExactSizeIterator for VecTraceIter<'_> {}

impl TraceSource for VecTrace {
    type Iter<'a> = VecTraceIter<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        VecTraceIter {
            instrs: &self.instrs,
            at: 0,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.instrs.len() as u64)
    }
}

impl FromIterator<Instr> for VecTrace {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        VecTrace::new(iter.into_iter().collect())
    }
}

impl Extend<Instr> for VecTrace {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::Addr;

    #[test]
    fn vec_trace_is_reopenable_and_identical() {
        let t: VecTrace = (0..10).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = t.iter().collect();
        assert_eq!(a, b);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn named_trace() {
        let t = VecTrace::with_name(vec![], "web-search");
        assert_eq!(t.name(), "web-search");
        assert!(t.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut t = VecTrace::new(vec![Instr::alu(Addr::new(0))]);
        t.extend([Instr::alu(Addr::new(4))]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn skip_lands_exactly_where_a_walk_would() {
        let t: VecTrace = (0..100).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let mut fast = t.iter();
        assert_eq!(VecTrace::skip(&mut fast, 37), 37);
        let mut slow = t.iter();
        for _ in 0..37 {
            slow.next();
        }
        assert_eq!(fast.next(), slow.next());
    }

    #[test]
    fn skip_past_end_reports_shortfall() {
        let t: VecTrace = (0..10).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let mut it = t.iter();
        assert_eq!(VecTrace::skip(&mut it, 25), 10);
        assert_eq!(it.next(), None);
        // Unsized iterators count exactly too.
        let mut gen = (0..10u64).map(|i| Instr::alu(Addr::new(i * 4))).fuse();
        assert_eq!(skip_instrs(&mut gen.by_ref().filter(|_| true), 25), 10);
    }

    #[test]
    fn truncated_is_a_byte_identical_prefix() {
        let full: VecTrace = (0..100).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let pre = Truncated::new(&full, 37);
        let got: Vec<_> = pre.iter().collect();
        let want: Vec<_> = full.iter().take(37).collect();
        assert_eq!(got, want);
        assert_eq!(pre.len_hint(), Some(37));
        // Re-openable: a second pass is identical.
        assert_eq!(pre.iter().collect::<Vec<_>>(), got);
    }

    #[test]
    fn truncated_keeps_name_and_seed() {
        let full = VecTrace::with_name(
            (0..8).map(|i| Instr::alu(Addr::new(i * 4))).collect(),
            "web-search",
        );
        let pre = Truncated::new(&full, 3);
        assert_eq!(pre.name(), "web-search");
        assert_eq!(pre.seed(), full.seed());
        assert_eq!(pre.limit(), 3);
    }

    #[test]
    fn truncated_longer_than_inner_yields_inner() {
        let full: VecTrace = (0..5).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let pre = Truncated::new(&full, 100);
        assert_eq!(pre.iter().count(), 5);
        assert_eq!(pre.len_hint(), Some(5));
    }

    #[test]
    fn truncated_skip_clamps_to_prefix() {
        let full: VecTrace = (0..50).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let pre = Truncated::new(&full, 20);
        let mut it = pre.iter();
        // Skip inside the prefix lands where a walk would.
        assert_eq!(
            <Truncated<'_, VecTrace> as TraceSource>::skip(&mut it, 7),
            7
        );
        assert_eq!(it.next(), Some(Instr::alu(Addr::new(7 * 4))));
        // Skip past the prefix end stops at the boundary.
        let mut it = pre.iter();
        assert_eq!(
            <Truncated<'_, VecTrace> as TraceSource>::skip(&mut it, 35),
            20
        );
        assert_eq!(it.next(), None);
    }

    #[test]
    fn truncated_size_hint_is_exact_for_exact_inners() {
        let full: VecTrace = (0..10).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let pre = Truncated::new(&full, 4);
        let mut it = pre.iter();
        assert_eq!(it.size_hint(), (4, Some(4)));
        it.next();
        assert_eq!(it.size_hint(), (3, Some(3)));
    }

    #[test]
    fn skip_zero_is_a_no_op() {
        let t: VecTrace = (0..3).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let mut it = t.iter();
        assert_eq!(VecTrace::skip(&mut it, 0), 0);
        assert_eq!(it.count(), 3);
    }
}

//! Trace sources: resettable, deterministic instruction streams.
//!
//! Belady's OPT and the paper's oracle analyses need *two passes* over
//! the same trace (one to learn the future, one to simulate), so a
//! trace source must be re-openable from the start and byte-for-byte
//! deterministic. Synthetic workloads satisfy this by construction
//! (they are seeded); [`VecTrace`] provides an in-memory source for
//! tests and examples.

use crate::instr::Instr;

/// A deterministic, re-openable stream of instructions.
///
/// Implementations must yield the identical sequence on every call to
/// [`TraceSource::iter`]; the OPT oracle relies on this.
///
/// # Reset semantics
///
/// There is no separate `reset` method: **calling `iter()` again is
/// the reset operation.** Each call opens an independent pass from the
/// very first instruction; passes must not share mutable state, and a
/// later pass must be byte-identical to an earlier one regardless of
/// how far the earlier one was driven. Composed sources (e.g.
/// [`crate::InterleavedTrace`]) must reset *every* child and replay
/// the identical composition schedule — partial resets desynchronize
/// the oracle pre-pass from the simulation pass.
pub trait TraceSource {
    /// Iterator type over instructions.
    type Iter<'a>: Iterator<Item = Instr>
    where
        Self: 'a;

    /// Opens a fresh pass over the trace from the beginning.
    fn iter(&self) -> Self::Iter<'_>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "trace"
    }

    /// Exact instruction count, when the source knows it without
    /// walking the trace.
    ///
    /// Simulators use this to size warm-up windows and cycle bounds
    /// without a counting pre-pass; sources that would have to
    /// materialize the stream to answer should return `None` (the
    /// simulator then falls back to counting).
    ///
    /// The hint is a contract, not an estimate: when `Some(n)` is
    /// returned, `iter()` must yield exactly `n` instructions.
    /// Composed sources must propagate exactness — report the
    /// combined count when **all** children report one, and `None`
    /// as soon as any child cannot answer.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Deterministic seed derived from the trace's name.
    ///
    /// Every simulation path (timing and functional) seeds stochastic
    /// organization components from this one value, so the same
    /// workload produces the same behavior everywhere — keep all
    /// callers on this method rather than hand-rolling the hash.
    fn seed(&self) -> u64 {
        acic_types::hash::mix64(
            self.name()
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64)),
        )
    }
}

/// An in-memory trace, mainly for tests and examples.
///
/// # Examples
///
/// ```
/// use acic_trace::{Instr, TraceSource, VecTrace};
/// use acic_types::Addr;
///
/// let t = VecTrace::new(vec![Instr::alu(Addr::new(0)), Instr::alu(Addr::new(4))]);
/// assert_eq!(t.iter().count(), 2);
/// assert_eq!(t.iter().count(), 2); // re-openable
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecTrace {
    instrs: Vec<Instr>,
    name: String,
}

impl VecTrace {
    /// Creates a trace from a vector of instructions.
    pub fn new(instrs: Vec<Instr>) -> Self {
        VecTrace {
            instrs,
            name: "vec-trace".to_string(),
        }
    }

    /// Creates a named trace.
    pub fn with_name(instrs: Vec<Instr>, name: impl Into<String>) -> Self {
        VecTrace {
            instrs,
            name: name.into(),
        }
    }

    /// Materializes another source into memory (keeping its name).
    ///
    /// Generated sources (the synthetic workloads) pay the generator
    /// cost on every pass; materializing once turns repeat
    /// simulations over the same trace — policy sweeps, throughput
    /// benchmarks — into cheap slice iteration.
    pub fn from_source<S: TraceSource>(source: &S) -> Self {
        VecTrace {
            instrs: source.iter().collect(),
            name: source.name().to_string(),
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl TraceSource for VecTrace {
    type Iter<'a> = core::iter::Copied<core::slice::Iter<'a, Instr>>;

    fn iter(&self) -> Self::Iter<'_> {
        self.instrs.iter().copied()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.instrs.len() as u64)
    }
}

impl FromIterator<Instr> for VecTrace {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        VecTrace::new(iter.into_iter().collect())
    }
}

impl Extend<Instr> for VecTrace {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::Addr;

    #[test]
    fn vec_trace_is_reopenable_and_identical() {
        let t: VecTrace = (0..10).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = t.iter().collect();
        assert_eq!(a, b);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn named_trace() {
        let t = VecTrace::with_name(vec![], "web-search");
        assert_eq!(t.name(), "web-search");
        assert!(t.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut t = VecTrace::new(vec![Instr::alu(Addr::new(0))]);
        t.extend([Instr::alu(Addr::new(4))]);
        assert_eq!(t.len(), 2);
    }
}

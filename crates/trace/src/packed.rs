//! The frozen trace format: immutable, compact, shareable, replayable.
//!
//! Every grid experiment replays the same workloads many times — once
//! per configuration row, plus oracle pre-passes — and until this
//! module existed each replay re-ran the Markov walker or re-read
//! 24-byte [`Instr`] records. [`PackedTrace`] freezes a workload once
//! into a delta/run-length byte stream (typically 1–6 B per
//! instruction against `Instr`'s 24) that every consumer then shares
//! read-only: the cursor borrows the arena (`&[u8]`), so N threads
//! replaying one `Arc<PackedTrace>` touch one copy of the bytes.
//!
//! # Encoding
//!
//! The stream is a sequence of records decoded against three words of
//! cursor state — the *expected* next PC (the fall-through/taken-path
//! successor of the previous instruction), the current ASID, and the
//! last data address:
//!
//! * **`AluRun`** — N sequential 1-cycle ALU instructions at the
//!   expected PC. One or two bytes for a whole fetch run; the walker's
//!   straight-line bursts (the ~85% distance-0 mass of Figure 1a)
//!   collapse into these.
//! * **`Alu`/`LongAlu`/`Load`/`Store`/`Branch`** — one header byte
//!   (kind, PC-sequential flag, and for branches taken + class) plus
//!   zigzag-varint deltas for whatever the header cannot imply: the
//!   PC (vs the expected PC), the data address (vs the previous one),
//!   the branch target (vs the PC).
//! * **`AsidSwitch`** — an *explicit* context-switch record. ASIDs are
//!   never carried per instruction; a switch record updates the cursor
//!   ASID and every following instruction is stamped with it. This is
//!   what keeps [`crate::BlockRuns`]/[`crate::GroupedRuns`] semantics
//!   bit-for-bit: a run can only break at an ASID change if the change
//!   is visible in the stream, and here it is a first-class record at
//!   exactly the original boundary.
//!
//! # Skip index
//!
//! Every [`SKIP_STRIDE`] instructions the encoder flushes any pending
//! run and snapshots `(byte offset, expected PC, last data address,
//! ASID)`. [`TraceSource::skip`] jumps to the nearest snapshot at or
//! before the target and decodes at most one stride forward — O(1) by
//! construction (stride-bounded, independent of trace length), which
//! is what makes SMARTS-style fast-forward over frozen traces free.
//! Generated sources must produce-and-discard the same gap.
//!
//! # On-disk container
//!
//! [`PackedTrace::write_to`]/[`PackedTrace::read_from`] serialize the
//! arena as a versioned `.acictrace` container: magic, header,
//! name/payload/index sections, and an FNV-1a checksum over the
//! header fields *and* all sections. The reader rejects bad magic,
//! unknown versions, truncation, trailing bytes, and checksum
//! mismatches, then runs one bounds-checked validation decode of the
//! payload (record stream must encode exactly the claimed number of
//! in-range instructions and every skip-index snapshot must match
//! the true decoder state) so even a checksum-colliding container is
//! rejected at load instead of panicking mid-experiment — a recorded
//! trace either replays bit-for-bit or fails loudly.
//!
//! # Examples
//!
//! ```
//! use acic_trace::{Instr, PackedTrace, TraceSource, VecTrace};
//! use acic_types::Addr;
//!
//! let v: VecTrace = (0..100).map(|i| Instr::alu(Addr::new(i * 4))).collect();
//! let p = PackedTrace::from_source(&v);
//! assert_eq!(p.len(), 100);
//! assert!(p.iter().eq(v.iter())); // bit-identical replay
//! assert!(p.payload_bytes() < 100); // straight-line code packs into runs
//! ```

use crate::instr::{BranchClass, Instr, InstrKind};
use crate::source::TraceSource;
use acic_types::{Addr, Asid};

/// Instructions per skip-index snapshot. Every entry starts at a
/// record boundary (pending runs are flushed), so a skip decodes at
/// most this many instructions after the index jump.
pub const SKIP_STRIDE: u64 = 4096;

// Record opcodes (low 3 bits of the header byte).
const OP_ALU: u8 = 0;
const OP_LONG_ALU: u8 = 1;
const OP_LOAD: u8 = 2;
const OP_STORE: u8 = 3;
const OP_BRANCH: u8 = 4;
const OP_ALU_RUN: u8 = 5;
const OP_ASID: u8 = 6;
const OP_MASK: u8 = 0b111;

/// Header flag: an explicit zigzag-varint PC delta follows (the PC is
/// not the expected fall-through/taken-path successor).
const FLAG_PC: u8 = 0x08;
/// Load/store header flag: the data address equals the previous one
/// (no delta follows).
const FLAG_DATA_SAME: u8 = 0x10;
/// Branch header flag: the branch was taken.
const FLAG_TAKEN: u8 = 0x10;
/// Branch class lives in bits 5..8 of the header byte.
const CLASS_SHIFT: u8 = 5;

/// `AluRun` header: run length in bits 3..8 (1..=31); 0 means a
/// varint length follows.
const RUN_SHIFT: u8 = 3;
const RUN_INLINE_MAX: u64 = 31;

#[inline]
fn class_code(c: BranchClass) -> u8 {
    match c {
        BranchClass::Conditional => 0,
        BranchClass::Direct => 1,
        BranchClass::Call => 2,
        BranchClass::Return => 3,
        BranchClass::Indirect => 4,
    }
}

#[inline]
fn code_class(c: u8) -> BranchClass {
    match c {
        0 => BranchClass::Conditional,
        1 => BranchClass::Direct,
        2 => BranchClass::Call,
        3 => BranchClass::Return,
        _ => BranchClass::Indirect,
    }
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Wrapping difference of two addresses as a signed delta (round-trips
/// through [`zigzag`] for any pair of `u64`s).
#[inline]
fn delta(new: u64, old: u64) -> i64 {
    new.wrapping_sub(old) as i64
}

/// One skip-index snapshot: full decoder state at an
/// instruction-count multiple of [`SKIP_STRIDE`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IndexEntry {
    /// Byte offset of the next record in the payload.
    byte_pos: u64,
    /// Expected PC of the next instruction.
    expect_pc: u64,
    /// Last data address seen (delta base for the next load/store).
    last_data: u64,
    /// Current address space.
    asid: u16,
}

/// An immutable, compact, replayable instruction trace.
///
/// Built once ([`PackedTrace::from_source`], [`PackedTraceBuilder`],
/// or [`PackedTrace::read_from`]) and then shared read-only — clone an
/// `Arc<PackedTrace>` per consumer; the cursor borrows the byte arena
/// directly. Replay is bit-identical to the encoded source: the same
/// `Instr` values, the same ASID boundaries, the same
/// [`TraceSource::seed`] (the name is preserved).
#[derive(Clone, Debug, PartialEq)]
pub struct PackedTrace {
    bytes: Vec<u8>,
    index: Vec<IndexEntry>,
    len: u64,
    name: String,
}

/// Streaming encoder for [`PackedTrace`].
///
/// Feed instructions in trace order via [`PackedTraceBuilder::push`];
/// [`PackedTraceBuilder::finish`] seals the arena. Sequential ALU
/// instructions are accumulated into `AluRun` records; ASID changes
/// emit explicit switch records; skip-index snapshots are taken every
/// [`SKIP_STRIDE`] instructions at record boundaries.
#[derive(Debug)]
pub struct PackedTraceBuilder {
    bytes: Vec<u8>,
    index: Vec<IndexEntry>,
    count: u64,
    expect_pc: u64,
    last_data: u64,
    asid: u16,
    pending_run: u64,
    name: String,
}

impl PackedTraceBuilder {
    /// Starts an empty trace with the given report name (the name
    /// feeds [`TraceSource::seed`], so replay seeds match the source).
    pub fn new(name: impl Into<String>) -> Self {
        PackedTraceBuilder {
            bytes: Vec::new(),
            index: Vec::new(),
            count: 0,
            expect_pc: 0,
            last_data: 0,
            asid: 0,
            pending_run: 0,
            name: name.into(),
        }
    }

    fn flush_run(&mut self) {
        if self.pending_run == 0 {
            return;
        }
        let n = self.pending_run;
        self.pending_run = 0;
        if n <= RUN_INLINE_MAX {
            self.bytes.push(OP_ALU_RUN | ((n as u8) << RUN_SHIFT));
        } else {
            self.bytes.push(OP_ALU_RUN);
            write_varint(&mut self.bytes, n);
        }
    }

    /// Appends one instruction.
    pub fn push(&mut self, instr: Instr) {
        if self.count.is_multiple_of(SKIP_STRIDE) {
            // Snapshot full decoder state at a record boundary; any
            // pending run must not straddle the entry.
            self.flush_run();
            self.index.push(IndexEntry {
                byte_pos: self.bytes.len() as u64,
                expect_pc: self.expect_pc,
                last_data: self.last_data,
                asid: self.asid,
            });
        }
        let asid = instr.asid().raw();
        if asid != self.asid {
            self.flush_run();
            self.bytes.push(OP_ASID);
            write_varint(&mut self.bytes, asid as u64);
            self.asid = asid;
        }
        let pc = instr.pc().raw();
        let seq = pc == self.expect_pc;
        if seq && matches!(instr.kind, InstrKind::Alu) {
            self.pending_run += 1;
            self.expect_pc = pc + 4;
            self.count += 1;
            return;
        }
        self.flush_run();
        let (op, imm) = match instr.kind {
            InstrKind::Alu => (OP_ALU, None),
            InstrKind::LongAlu => (OP_LONG_ALU, None),
            InstrKind::Load { addr } => (OP_LOAD, Some(addr.raw())),
            InstrKind::Store { addr } => (OP_STORE, Some(addr.raw())),
            InstrKind::Branch {
                target,
                taken,
                class,
            } => {
                let mut h = OP_BRANCH | (class_code(class) << CLASS_SHIFT);
                if taken {
                    h |= FLAG_TAKEN;
                }
                (h, Some(target.raw()))
            }
        };
        let mut header = op;
        if !seq {
            header |= FLAG_PC;
        }
        let data_same = matches!(instr.kind, InstrKind::Load { .. } | InstrKind::Store { .. })
            && imm == Some(self.last_data);
        if data_same {
            header |= FLAG_DATA_SAME;
        }
        self.bytes.push(header);
        if !seq {
            write_varint(&mut self.bytes, zigzag(delta(pc, self.expect_pc)));
        }
        match instr.kind {
            InstrKind::Load { addr } | InstrKind::Store { addr } if !data_same => {
                write_varint(&mut self.bytes, zigzag(delta(addr.raw(), self.last_data)));
                self.last_data = addr.raw();
            }
            InstrKind::Branch { target, .. } => {
                write_varint(&mut self.bytes, zigzag(delta(target.raw(), pc)));
            }
            _ => {}
        }
        self.expect_pc = instr.next_pc().raw();
        self.count += 1;
    }

    /// Seals the trace.
    pub fn finish(mut self) -> PackedTrace {
        self.flush_run();
        self.bytes.shrink_to_fit();
        self.index.shrink_to_fit();
        PackedTrace {
            bytes: self.bytes,
            index: self.index,
            len: self.count,
            name: self.name,
        }
    }
}

impl Extend<Instr> for PackedTraceBuilder {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        for i in iter {
            self.push(i);
        }
    }
}

impl PackedTrace {
    /// Freezes an instruction stream under the given name.
    pub fn from_instrs(name: impl Into<String>, instrs: impl IntoIterator<Item = Instr>) -> Self {
        let mut b = PackedTraceBuilder::new(name);
        b.extend(instrs);
        b.finish()
    }

    /// Freezes another source (one full generation/decode pass),
    /// keeping its name so replay derives identical component seeds.
    pub fn from_source<S: TraceSource>(source: &S) -> Self {
        Self::from_instrs(source.name().to_string(), source.iter())
    }

    /// Number of instructions.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the encoded record stream in bytes (excluding the skip
    /// index and name).
    pub fn payload_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Average encoded bytes per instruction (0 for an empty trace).
    pub fn bytes_per_instr(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.bytes.len() as f64 / self.len as f64
        }
    }
}

/// Zero-copy decoding cursor over a [`PackedTrace`].
///
/// Borrows the arena; yields exactly the encoded `Instr` sequence.
/// [`TraceSource::skip`] on a `PackedTrace` jumps through the skip
/// index instead of decoding the gap.
#[derive(Clone, Debug)]
pub struct PackedCursor<'a> {
    trace: &'a PackedTrace,
    /// Byte position of the next record.
    pos: usize,
    /// Instructions already yielded.
    done: u64,
    expect_pc: u64,
    last_data: u64,
    asid: u16,
    /// Remaining instructions of the current `AluRun` record.
    run_left: u64,
}

impl<'a> PackedCursor<'a> {
    fn new(trace: &'a PackedTrace) -> Self {
        PackedCursor {
            trace,
            pos: 0,
            done: 0,
            expect_pc: 0,
            last_data: 0,
            asid: 0,
            run_left: 0,
        }
    }

    #[inline]
    fn stamp(&self, i: Instr) -> Instr {
        if self.asid == 0 {
            i
        } else {
            i.with_asid(Asid::new(self.asid))
        }
    }

    /// Decodes the next instruction (`None` at end of trace).
    #[inline]
    fn decode_next(&mut self) -> Option<Instr> {
        if self.run_left > 0 {
            self.run_left -= 1;
            self.done += 1;
            let i = Instr::alu(Addr::new(self.expect_pc));
            self.expect_pc += 4;
            return Some(self.stamp(i));
        }
        let bytes = &self.trace.bytes;
        loop {
            if self.done == self.trace.len {
                return None;
            }
            let header = bytes[self.pos];
            self.pos += 1;
            let op = header & OP_MASK;
            match op {
                OP_ASID => {
                    self.asid = read_varint(bytes, &mut self.pos) as u16;
                    continue;
                }
                OP_ALU_RUN => {
                    let inline = (header >> RUN_SHIFT) as u64;
                    let n = if inline == 0 {
                        read_varint(bytes, &mut self.pos)
                    } else {
                        inline
                    };
                    self.run_left = n - 1;
                    self.done += 1;
                    let i = Instr::alu(Addr::new(self.expect_pc));
                    self.expect_pc += 4;
                    return Some(self.stamp(i));
                }
                _ => {}
            }
            let pc = if header & FLAG_PC != 0 {
                let d = unzigzag(read_varint(bytes, &mut self.pos));
                self.expect_pc.wrapping_add(d as u64)
            } else {
                self.expect_pc
            };
            let instr = match op {
                OP_ALU => Instr::alu(Addr::new(pc)),
                OP_LONG_ALU => Instr::long_alu(Addr::new(pc)),
                OP_LOAD | OP_STORE => {
                    let addr = if header & FLAG_DATA_SAME != 0 {
                        self.last_data
                    } else {
                        let d = unzigzag(read_varint(bytes, &mut self.pos));
                        self.last_data = self.last_data.wrapping_add(d as u64);
                        self.last_data
                    };
                    if op == OP_LOAD {
                        Instr::load(Addr::new(pc), Addr::new(addr))
                    } else {
                        Instr::store(Addr::new(pc), Addr::new(addr))
                    }
                }
                _ => {
                    let d = unzigzag(read_varint(bytes, &mut self.pos));
                    let target = pc.wrapping_add(d as u64);
                    Instr::branch(
                        Addr::new(pc),
                        Addr::new(target),
                        header & FLAG_TAKEN != 0,
                        code_class(header >> CLASS_SHIFT),
                    )
                }
            };
            self.expect_pc = instr.next_pc().raw();
            self.done += 1;
            return Some(self.stamp(instr));
        }
    }

    /// Advances past up to `n` instructions via the skip index,
    /// returning how many were skipped (fewer only at trace end).
    ///
    /// Jumps to the last index snapshot at or before the target and
    /// decode-discards the remainder — at most [`SKIP_STRIDE`]
    /// instructions of work regardless of `n` or trace length.
    pub fn skip_fast(&mut self, n: u64) -> u64 {
        let target = (self.done + n).min(self.trace.len);
        let skipped = target - self.done;
        // A target at the trace end can land one stride bucket past
        // the last snapshot (len a multiple of the stride): clamp to
        // the last entry so the tail decode stays stride-bounded.
        let entry_no =
            ((target / SKIP_STRIDE) as usize).min(self.trace.index.len().saturating_sub(1));
        if let Some(e) = self.trace.index.get(entry_no) {
            let entry_instr = entry_no as u64 * SKIP_STRIDE;
            if entry_instr > self.done {
                self.pos = e.byte_pos as usize;
                self.done = entry_instr;
                self.expect_pc = e.expect_pc;
                self.last_data = e.last_data;
                self.asid = e.asid;
                self.run_left = 0;
            }
        }
        while self.done < target {
            // Consume whole pending runs without materializing them.
            if self.run_left > 0 {
                let take = self.run_left.min(target - self.done);
                self.run_left -= take;
                self.done += take;
                self.expect_pc += 4 * take;
                continue;
            }
            if self.decode_next().is_none() {
                break;
            }
        }
        skipped
    }
}

impl Iterator for PackedCursor<'_> {
    type Item = Instr;

    #[inline]
    fn next(&mut self) -> Option<Instr> {
        self.decode_next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.trace.len - self.done) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PackedCursor<'_> {}

impl TraceSource for PackedTrace {
    type Iter<'a> = PackedCursor<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        PackedCursor::new(self)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len)
    }

    fn skip(iter: &mut Self::Iter<'_>, n: u64) -> u64 {
        iter.skip_fast(n)
    }
}

// ---------------------------------------------------------------------------
// On-disk container
// ---------------------------------------------------------------------------

/// Magic prefix of a `.acictrace` container (version rides separately
/// so future revisions stay recognizable).
pub const TRACE_MAGIC: &[u8; 8] = b"ACICTRC\0";
/// Current container format version.
pub const TRACE_VERSION: u32 = 1;

/// Why a `.acictrace` container was rejected.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural rejection: bad magic/version, truncation, trailing
    /// bytes, or checksum mismatch.
    Format(String),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O: {e}"),
            TraceFileError::Format(m) => write!(f, "trace file rejected: {m}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<std::io::Error> for TraceFileError {
    fn from(e: std::io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// FNV-1a 64 over a byte slice, continued from `h` (seed with
/// [`FNV_OFFSET`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

const INDEX_ENTRY_BYTES: usize = 8 + 8 + 8 + 2;

fn index_section(index: &[IndexEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(index.len() * INDEX_ENTRY_BYTES);
    for e in index {
        out.extend_from_slice(&e.byte_pos.to_le_bytes());
        out.extend_from_slice(&e.expect_pc.to_le_bytes());
        out.extend_from_slice(&e.last_data.to_le_bytes());
        out.extend_from_slice(&e.asid.to_le_bytes());
    }
    out
}

fn take<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &str,
) -> Result<&'a [u8], TraceFileError> {
    let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
    match end {
        Some(end) => {
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        }
        None => Err(TraceFileError::Format(format!(
            "truncated reading {what} ({n} bytes at offset {pos})"
        ))),
    }
}

fn le_u32(s: &[u8]) -> u32 {
    u32::from_le_bytes(s.try_into().expect("4-byte slice"))
}

fn le_u64(s: &[u8]) -> u64 {
    u64::from_le_bytes(s.try_into().expect("8-byte slice"))
}

impl PackedTrace {
    /// Serializes the container to bytes (the `.acictrace` layout).
    ///
    /// Layout: magic, version `u32`, stride `u32`, instruction count
    /// `u64`, payload length `u64`, index entry count `u64`, name
    /// length `u32`, checksum `u64` (FNV-1a over every header field
    /// after the magic **and** the name + payload + index sections —
    /// a flipped header bit must fail the same way as a flipped
    /// payload bit), then the three sections in that order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let index = index_section(&self.index);
        let mut out = Vec::with_capacity(48 + self.name.len() + self.bytes.len() + index.len());
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(SKIP_STRIDE as u32).to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&(self.bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        let mut checksum = fnv1a(FNV_OFFSET, &out[8..]);
        checksum = fnv1a(checksum, self.name.as_bytes());
        checksum = fnv1a(checksum, &self.bytes);
        checksum = fnv1a(checksum, &index);
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.bytes);
        out.extend_from_slice(&index);
        out
    }

    /// Parses a container produced by [`PackedTrace::to_bytes`].
    ///
    /// # Errors
    ///
    /// Rejects bad magic, unknown versions, mismatched stride,
    /// truncation, trailing bytes, and checksum mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceFileError> {
        let mut pos = 0usize;
        let magic = take(bytes, &mut pos, 8, "magic")?;
        if magic != TRACE_MAGIC {
            return Err(TraceFileError::Format("bad magic".into()));
        }
        let version = le_u32(take(bytes, &mut pos, 4, "version")?);
        if version != TRACE_VERSION {
            return Err(TraceFileError::Format(format!(
                "unsupported version {version} (expected {TRACE_VERSION})"
            )));
        }
        let stride = le_u32(take(bytes, &mut pos, 4, "stride")?) as u64;
        if stride != SKIP_STRIDE {
            return Err(TraceFileError::Format(format!(
                "stride {stride} does not match this build's {SKIP_STRIDE}"
            )));
        }
        let len = le_u64(take(bytes, &mut pos, 8, "instruction count")?);
        let payload_len = le_u64(take(bytes, &mut pos, 8, "payload length")?) as usize;
        let index_count = le_u64(take(bytes, &mut pos, 8, "index count")?) as usize;
        let name_len = le_u32(take(bytes, &mut pos, 4, "name length")?) as usize;
        // Everything between the magic and the checksum field is
        // covered by the checksum.
        let header_sum = fnv1a(FNV_OFFSET, &bytes[8..pos]);
        let checksum = le_u64(take(bytes, &mut pos, 8, "checksum")?);
        let name_bytes = take(bytes, &mut pos, name_len, "name")?;
        let payload = take(bytes, &mut pos, payload_len, "payload")?;
        let index_bytes = take(
            bytes,
            &mut pos,
            index_count
                .checked_mul(INDEX_ENTRY_BYTES)
                .ok_or_else(|| TraceFileError::Format("index count overflow".into()))?,
            "skip index",
        )?;
        if pos != bytes.len() {
            return Err(TraceFileError::Format(format!(
                "{} trailing bytes after the index section",
                bytes.len() - pos
            )));
        }
        let mut h = fnv1a(header_sum, name_bytes);
        h = fnv1a(h, payload);
        h = fnv1a(h, index_bytes);
        if h != checksum {
            return Err(TraceFileError::Format(format!(
                "checksum mismatch (stored {checksum:#018x}, computed {h:#018x})"
            )));
        }
        let name = String::from_utf8(name_bytes.to_vec())
            .map_err(|_| TraceFileError::Format("name is not UTF-8".into()))?;
        let expected_entries = if len == 0 {
            0
        } else {
            (len - 1) / SKIP_STRIDE + 1
        };
        if index_count as u64 != expected_entries {
            return Err(TraceFileError::Format(format!(
                "index has {index_count} entries, {expected_entries} expected for {len} instructions"
            )));
        }
        let mut index = Vec::with_capacity(index_count);
        for chunk in index_bytes.chunks_exact(INDEX_ENTRY_BYTES) {
            index.push(IndexEntry {
                byte_pos: le_u64(&chunk[0..8]),
                expect_pc: le_u64(&chunk[8..16]),
                last_data: le_u64(&chunk[16..24]),
                asid: u16::from_le_bytes(chunk[24..26].try_into().expect("2-byte slice")),
            });
        }
        let trace = PackedTrace {
            bytes: payload.to_vec(),
            index,
            len,
            name,
        };
        trace.validate_payload()?;
        Ok(trace)
    }

    /// Bounds-checked decode of the whole payload, run once at load:
    /// proves the record stream encodes exactly `len` in-range
    /// instructions, never crosses a stride boundary mid-run, leaves
    /// no trailing payload bytes, and that every skip-index snapshot
    /// matches the true decoder state at its boundary. After this, the
    /// unchecked fast cursor — sequential or index-jumping — cannot
    /// read out of bounds, so a checksum-colliding (or hand-crafted)
    /// container is rejected here instead of panicking mid-experiment.
    fn validate_payload(&self) -> Result<(), TraceFileError> {
        let err = |m: String| Err(TraceFileError::Format(m));
        let bytes = &self.bytes;
        let mut pos = 0usize;
        let byte = |pos: &mut usize| -> Result<u8, TraceFileError> {
            let b = bytes
                .get(*pos)
                .copied()
                .ok_or_else(|| TraceFileError::Format("payload ends mid-record".into()))?;
            *pos += 1;
            Ok(b)
        };
        let varint = |pos: &mut usize| -> Result<u64, TraceFileError> {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let b = byte(pos)?;
                if shift >= 64 {
                    return Err(TraceFileError::Format("varint longer than 64 bits".into()));
                }
                v |= ((b & 0x7f) as u64) << shift;
                if b & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        };
        const PC_LIMIT: u64 = 1 << 48;
        let mut done = 0u64;
        let mut expect_pc = 0u64;
        let mut last_data = 0u64;
        let mut asid = 0u16;
        let mut next_entry = 0usize;
        while done < self.len {
            if done == next_entry as u64 * SKIP_STRIDE {
                let Some(e) = self.index.get(next_entry) else {
                    return err(format!("missing skip-index entry {next_entry}"));
                };
                if e.byte_pos as usize != pos
                    || e.expect_pc != expect_pc
                    || e.last_data != last_data
                    || e.asid != asid
                {
                    return err(format!(
                        "skip-index entry {next_entry} does not match the decoded state at instruction {done}"
                    ));
                }
                next_entry += 1;
            }
            let header = byte(&mut pos)?;
            let op = header & OP_MASK;
            match op {
                OP_ASID => {
                    asid = varint(&mut pos)? as u16;
                    continue;
                }
                OP_ALU_RUN => {
                    let inline = (header >> RUN_SHIFT) as u64;
                    let n = if inline == 0 {
                        varint(&mut pos)?
                    } else {
                        inline
                    };
                    if n == 0 || done + n > self.len {
                        return err(format!("run of {n} overruns the trace at {done}"));
                    }
                    // Runs never straddle a stride boundary (the
                    // encoder flushes there; the jump decode relies
                    // on it).
                    if (done / SKIP_STRIDE) != (done + n - 1) / SKIP_STRIDE {
                        return err(format!("run of {n} crosses a stride boundary at {done}"));
                    }
                    // Every PC the run materializes must stay packable
                    // (strictly below 2^48).
                    let last_pc = 4u64
                        .checked_mul(n - 1)
                        .and_then(|d| expect_pc.checked_add(d))
                        .filter(|&p| p < PC_LIMIT);
                    if last_pc.is_none() {
                        return err(format!("run PC leaves the 48-bit space at {done}"));
                    }
                    expect_pc += 4 * n;
                    done += n;
                    continue;
                }
                OP_ALU | OP_LONG_ALU | OP_LOAD | OP_STORE | OP_BRANCH => {}
                _ => return err(format!("unknown opcode {op} at instruction {done}")),
            }
            let pc = if header & FLAG_PC != 0 {
                let d = unzigzag(varint(&mut pos)?);
                expect_pc.wrapping_add(d as u64)
            } else {
                expect_pc
            };
            if pc >= PC_LIMIT {
                return err(format!("PC {pc:#x} leaves the 48-bit space at {done}"));
            }
            expect_pc = match op {
                OP_LOAD | OP_STORE => {
                    if header & FLAG_DATA_SAME == 0 {
                        let d = unzigzag(varint(&mut pos)?);
                        last_data = last_data.wrapping_add(d as u64);
                    }
                    pc + 4
                }
                OP_BRANCH => {
                    let d = unzigzag(varint(&mut pos)?);
                    let target = pc.wrapping_add(d as u64);
                    if header & FLAG_TAKEN != 0 {
                        target
                    } else {
                        pc + 4
                    }
                }
                _ => pc + 4,
            };
            // `expect_pc` itself is only a prediction (a taken branch
            // may legally point anywhere); each materialized PC is
            // range-checked where it is produced.
            done += 1;
        }
        if pos != bytes.len() {
            return err(format!(
                "{} payload bytes remain after the last instruction",
                bytes.len() - pos
            ));
        }
        if next_entry != self.index.len() {
            return err(format!(
                "{} unused skip-index entries",
                self.index.len() - next_entry
            ));
        }
        Ok(())
    }

    /// Writes the container to a file crash-safely: staged into a
    /// sibling temporary, fsynced, then atomically renamed (with a
    /// best-effort directory fsync) so a crashed writer never leaves
    /// a torn trace at the final path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        use std::io::Write;
        let path = path.as_ref();
        let tmp = path.with_extension("acictrace.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Durability of the rename itself; directories cannot be
            // fsynced on every platform, so failures are ignored.
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads a container from a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and every structural rejection of
    /// [`PackedTrace::from_bytes`].
    pub fn read_from(path: impl AsRef<std::path::Path>) -> Result<Self, TraceFileError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecTrace;

    /// Deterministic pseudo-random instruction mix with branches,
    /// loads, stores and ASID switches.
    fn mixed_instrs(n: u64, seed: u64, switch_every: u64) -> Vec<Instr> {
        let mut x = seed | 1;
        let mut pc = 0x1000u64;
        let mut out = Vec::new();
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let asid = i
                .checked_div(switch_every)
                .map_or(Asid::HOST, |q| Asid::new((q % 3) as u16));
            let r = x >> 59;
            let instr = match r {
                0 | 1 => {
                    let addr = (x >> 13) % (1 << 20);
                    if r == 0 {
                        Instr::load(Addr::new(pc), Addr::new(addr))
                    } else {
                        Instr::store(Addr::new(pc), Addr::new(addr))
                    }
                }
                2 => Instr::long_alu(Addr::new(pc)),
                3 | 4 => {
                    let target = (x >> 21) % (1 << 18) * 4;
                    let taken = x & 2 != 0;
                    let class = code_class(((x >> 33) % 5) as u8);
                    Instr::branch(Addr::new(pc), Addr::new(target), taken, class)
                }
                _ => Instr::alu(Addr::new(pc)),
            };
            pc = instr.next_pc().raw();
            out.push(instr.with_asid(asid));
        }
        out
    }

    #[test]
    fn round_trips_a_mixed_stream_bit_for_bit() {
        let instrs = mixed_instrs(20_000, 7, 997);
        let p = PackedTrace::from_instrs("mixed", instrs.clone());
        assert_eq!(p.len(), 20_000);
        let decoded: Vec<Instr> = p.iter().collect();
        assert_eq!(decoded, instrs);
        // Re-openable: a second pass is identical.
        let again: Vec<Instr> = p.iter().collect();
        assert_eq!(again, instrs);
    }

    #[test]
    fn straight_line_code_packs_below_one_byte_per_instr() {
        let instrs: Vec<Instr> = (0..100_000u64)
            .map(|i| Instr::alu(Addr::new(i * 4)))
            .collect();
        let p = PackedTrace::from_instrs("line", instrs);
        assert!(
            p.bytes_per_instr() < 0.1,
            "runs should collapse: {} B/instr",
            p.bytes_per_instr()
        );
    }

    #[test]
    fn mixed_stream_stays_compact() {
        let instrs = mixed_instrs(50_000, 3, 0);
        let p = PackedTrace::from_instrs("mixed", instrs);
        assert!(
            p.bytes_per_instr() < 6.0,
            "{} B/instr exceeds the format's budget",
            p.bytes_per_instr()
        );
    }

    #[test]
    fn skip_lands_exactly_where_a_walk_would() {
        let instrs = mixed_instrs(3 * SKIP_STRIDE + 123, 11, 513);
        let p = PackedTrace::from_instrs("skippy", instrs);
        for &n in &[
            0u64,
            1,
            17,
            SKIP_STRIDE - 1,
            SKIP_STRIDE,
            SKIP_STRIDE + 1,
            2 * SKIP_STRIDE + 7,
        ] {
            let mut fast = p.iter();
            assert_eq!(PackedTrace::skip(&mut fast, n), n);
            let mut slow = p.iter();
            for _ in 0..n {
                slow.next();
            }
            assert_eq!(fast.next(), slow.next(), "diverged after skip({n})");
            // And the rest of the stream matches too.
            assert!(fast.eq(slow), "tail diverged after skip({n})");
        }
    }

    #[test]
    fn skip_past_end_reports_shortfall() {
        let p = PackedTrace::from_instrs("short", mixed_instrs(100, 5, 0));
        let mut it = p.iter();
        assert_eq!(PackedTrace::skip(&mut it, 250), 100);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn chained_skips_accumulate() {
        let instrs = mixed_instrs(2 * SKIP_STRIDE + 50, 23, 0);
        let p = PackedTrace::from_instrs("chain", instrs.clone());
        let mut it = p.iter();
        assert_eq!(PackedTrace::skip(&mut it, 100), 100);
        assert_eq!(it.next(), Some(instrs[100]));
        assert_eq!(PackedTrace::skip(&mut it, SKIP_STRIDE), SKIP_STRIDE);
        assert_eq!(it.next(), Some(instrs[101 + SKIP_STRIDE as usize]));
    }

    #[test]
    fn asid_switches_are_explicit_and_preserved() {
        let instrs = mixed_instrs(6_000, 9, 100);
        let p = PackedTrace::from_instrs("mt", instrs.clone());
        let decoded: Vec<Instr> = p.iter().collect();
        assert_eq!(decoded, instrs);
        // The run grouping downstream sees identical boundaries.
        let a: Vec<_> = crate::BlockRuns::new(instrs.iter().copied()).collect();
        let b: Vec<_> = crate::BlockRuns::new(p.iter()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn vec_trace_round_trip_preserves_name_and_seed() {
        let v = VecTrace::with_name(mixed_instrs(1_000, 2, 0), "web-search");
        let p = PackedTrace::from_source(&v);
        assert_eq!(p.name(), "web-search");
        assert_eq!(p.seed(), v.seed());
        assert!(p.iter().eq(v.iter()));
    }

    #[test]
    fn empty_trace_is_fine() {
        let p = PackedTrace::from_instrs("empty", Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.iter().count(), 0);
        let mut it = p.iter();
        assert_eq!(PackedTrace::skip(&mut it, 5), 0);
        let back = PackedTrace::from_bytes(&p.to_bytes()).expect("serializes");
        assert_eq!(back, p);
    }

    #[test]
    fn container_round_trips() {
        let p = PackedTrace::from_instrs("disk", mixed_instrs(10_000, 31, 777));
        let bytes = p.to_bytes();
        let back = PackedTrace::from_bytes(&bytes).expect("valid container");
        assert_eq!(back, p);
        assert!(back.iter().eq(p.iter()));
    }

    #[test]
    fn container_rejects_corruption() {
        let p = PackedTrace::from_instrs("disk", mixed_instrs(5_000, 13, 333));
        let good = p.to_bytes();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0x40;
        assert!(matches!(
            PackedTrace::from_bytes(&bad),
            Err(TraceFileError::Format(_))
        ));

        // Unknown version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            PackedTrace::from_bytes(&bad),
            Err(TraceFileError::Format(_))
        ));

        // Truncation at every section boundary and mid-payload.
        for cut in [4usize, 20, 47, good.len() / 2, good.len() - 1] {
            assert!(
                PackedTrace::from_bytes(&good[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }

        // Flipped payload byte: checksum mismatch.
        let mut bad = good.clone();
        let mid = 60 + (good.len() - 60) / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            PackedTrace::from_bytes(&bad),
            Err(TraceFileError::Format(m)) if m.contains("checksum")
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            PackedTrace::from_bytes(&bad),
            Err(TraceFileError::Format(m)) if m.contains("trailing")
        ));
    }

    /// Recomputes a (possibly tampered) container's checksum field so
    /// tests can reach the post-checksum validation layers.
    fn reforge_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
        let mut h = fnv1a(FNV_OFFSET, &bytes[8..44]);
        h = fnv1a(h, &bytes[52..]);
        bytes[44..52].copy_from_slice(&h.to_le_bytes());
        bytes
    }

    #[test]
    fn header_field_corruption_is_rejected() {
        // The regression the checksum-over-header fix pins: a flipped
        // low bit of the instruction-count field used to parse fine
        // and then panic (or silently truncate) at replay time.
        let p = PackedTrace::from_instrs("hdr", mixed_instrs(300, 41, 0));
        let good = p.to_bytes();
        for byte_off in 8..52 {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte_off] ^= 1 << bit;
                assert!(
                    PackedTrace::from_bytes(&bad).is_err(),
                    "header flip at byte {byte_off} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn checksum_valid_but_malformed_payloads_are_rejected() {
        let p = PackedTrace::from_instrs("forge", mixed_instrs(6_000, 29, 700));
        let good = p.to_bytes();

        // Shrink the claimed instruction count (checksum re-forged so
        // only the validation decode can catch the mismatch).
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&(p.len() - 7).to_le_bytes());
        assert!(
            PackedTrace::from_bytes(&reforge_checksum(bad)).is_err(),
            "shrunken len accepted: replay would silently truncate"
        );

        // Grow it: the decode must run out of payload, not out of
        // bounds.
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&(p.len() + 1).to_le_bytes());
        assert!(
            PackedTrace::from_bytes(&reforge_checksum(bad)).is_err(),
            "inflated len accepted: replay would index out of bounds"
        );

        // Tamper with a skip-index snapshot: an index jump would
        // otherwise decode garbage from a mid-record offset.
        let mut bad = good.clone();
        let idx_start = bad.len() - p.index.len() * INDEX_ENTRY_BYTES;
        bad[idx_start + INDEX_ENTRY_BYTES] ^= 0x01; // entry 1 byte_pos
        assert!(
            PackedTrace::from_bytes(&reforge_checksum(bad)).is_err(),
            "forged index entry accepted"
        );

        // Drop the last payload record byte (lengths fixed up): the
        // stream now ends mid-record.
        let mut bad = good.clone();
        let payload_len = p.payload_bytes() as u64;
        let name_len = p.name().len();
        bad.remove(52 + name_len + p.payload_bytes() - 1);
        bad[24..32].copy_from_slice(&(payload_len - 1).to_le_bytes());
        assert!(
            PackedTrace::from_bytes(&reforge_checksum(bad)).is_err(),
            "truncated payload accepted"
        );
    }

    #[test]
    fn skip_to_end_is_stride_bounded_when_len_is_a_stride_multiple() {
        // Regression: len = k*SKIP_STRIDE has no snapshot at the end
        // bucket; the skip must clamp to the last entry instead of
        // decoding the whole trace from the cursor position.
        let instrs = mixed_instrs(2 * SKIP_STRIDE, 47, 0);
        let p = PackedTrace::from_instrs("edge", instrs.clone());
        let mut it = p.iter();
        assert_eq!(PackedTrace::skip(&mut it, 2 * SKIP_STRIDE), 2 * SKIP_STRIDE);
        assert_eq!(it.next(), None);
        // And to one-before-end.
        let mut it = p.iter();
        assert_eq!(
            PackedTrace::skip(&mut it, 2 * SKIP_STRIDE - 1),
            2 * SKIP_STRIDE - 1
        );
        assert_eq!(it.next(), Some(instrs[instrs.len() - 1]));
    }

    #[test]
    fn file_round_trip_and_rejection() {
        let dir = std::env::temp_dir().join("acic-packed-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("t.acictrace");
        let p = PackedTrace::from_instrs("file", mixed_instrs(2_000, 17, 0));
        p.write_to(&path).expect("write");
        let back = PackedTrace::read_from(&path).expect("read");
        assert_eq!(back, p);
        // Truncate the file on disk: the reader must reject it.
        let bytes = std::fs::read(&path).expect("re-read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        assert!(PackedTrace::read_from(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, 4096, -4096, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(read_varint(&buf, &mut pos)), v);
            assert_eq!(pos, buf.len());
        }
    }
}

//! The future-knowledge oracle behind OPT, OPT-bypass, and the
//! accuracy studies.
//!
//! Because the demand-fetch block sequence is timing-independent in a
//! trace-driven front end (no wrong-path fetch), Belady's OPT can be
//! computed exactly with two passes: a pre-pass that records, for every
//! access position, when the same block is accessed next (and at what
//! forward stack distance), then the timing pass consults those
//! answers. [`ReuseOracle`] is the pre-pass product; [`OracleCursor`]
//! tracks the current position during the timing pass and answers
//! "when is block B used next?" for any block whose most recent access
//! has been observed.

use acic_types::BlockAddr;
use std::collections::HashMap;

/// Sentinel next-use position for "never used again".
///
/// Using `u64::MAX` lets OPT pick a victim with a simple max-compare.
pub const NO_NEXT_USE: u64 = u64::MAX;

/// Precomputed future-reuse information for a block-access sequence.
///
/// # Examples
///
/// ```
/// use acic_trace::{ReuseOracle, NO_NEXT_USE};
/// use acic_types::BlockAddr;
///
/// let seq: Vec<BlockAddr> = [1u64, 2, 1, 3].iter().map(|&b| BlockAddr::new(b)).collect();
/// let oracle = ReuseOracle::from_sequence(&seq);
/// let mut cur = oracle.cursor();
/// cur.advance(BlockAddr::new(1)); // position 0
/// assert_eq!(cur.next_use_of(BlockAddr::new(1)), 2);
/// cur.advance(BlockAddr::new(2)); // position 1
/// assert_eq!(cur.next_use_of(BlockAddr::new(2)), NO_NEXT_USE);
/// ```
#[derive(Clone, Debug)]
pub struct ReuseOracle {
    /// For access position `i`: the position of the next access to the
    /// same block, or `u32::MAX`.
    next_use: Vec<u32>,
    /// For access position `i`: the stack distance that the *next*
    /// access to this block will observe, or `u32::MAX` if none.
    forward_distance: Vec<u32>,
    /// Sorted access positions per block (for queries about blocks
    /// that entered the cache without a demand access, e.g.
    /// prefetches).
    occurrences: HashMap<BlockAddr, Vec<u32>>,
}

impl ReuseOracle {
    /// Builds the oracle from the block-access sequence (one entry per
    /// [`crate::BlockRun`]).
    ///
    /// # Panics
    ///
    /// Panics if the sequence has `u32::MAX` or more accesses.
    pub fn from_sequence(seq: &[BlockAddr]) -> Self {
        assert!(
            (seq.len() as u64) < u32::MAX as u64,
            "sequence too long for u32 positions"
        );
        let n = seq.len();
        let mut next_use = vec![u32::MAX; n];
        let mut seen: HashMap<BlockAddr, u32> = HashMap::new();
        for i in (0..n).rev() {
            if let Some(&nx) = seen.get(&seq[i]) {
                next_use[i] = nx;
            }
            seen.insert(seq[i], i as u32);
        }
        let mut occurrences: HashMap<BlockAddr, Vec<u32>> = HashMap::new();
        for (i, &b) in seq.iter().enumerate() {
            occurrences.entry(b).or_default().push(i as u32);
        }
        // Forward stack distance at position i = backward stack
        // distance observed at position next_use[i].
        let backward = crate::stack_distance::StackDistanceAnalyzer::analyze(seq);
        let mut forward_distance = vec![u32::MAX; n];
        for (i, &nx) in next_use.iter().enumerate() {
            if nx != u32::MAX {
                if let Some(d) = backward[nx as usize] {
                    forward_distance[i] = d.min(u32::MAX as u64 - 1) as u32;
                }
            }
        }
        ReuseOracle {
            next_use,
            forward_distance,
            occurrences,
        }
    }

    /// First access to `block` at or after position `pos`, or
    /// [`NO_NEXT_USE`]. Works for blocks never observed by a cursor
    /// (e.g. prefetched blocks).
    pub fn next_use_from(&self, block: BlockAddr, pos: u64) -> u64 {
        match self.occurrences.get(&block) {
            None => NO_NEXT_USE,
            Some(list) => {
                let i = list.partition_point(|&p| (p as u64) < pos);
                list.get(i).map_or(NO_NEXT_USE, |&p| p as u64)
            }
        }
    }

    /// Number of accesses covered.
    pub fn len(&self) -> usize {
        self.next_use.len()
    }

    /// Whether the oracle covers zero accesses.
    pub fn is_empty(&self) -> bool {
        self.next_use.is_empty()
    }

    /// Next-use position for the access at `pos`, or [`NO_NEXT_USE`].
    pub fn next_use_at(&self, pos: usize) -> u64 {
        match self.next_use[pos] {
            u32::MAX => NO_NEXT_USE,
            v => v as u64,
        }
    }

    /// Forward stack distance for the access at `pos` (the distance the
    /// next access to the same block will see), or `None`.
    pub fn forward_distance_at(&self, pos: usize) -> Option<u64> {
        match self.forward_distance[pos] {
            u32::MAX => None,
            v => Some(v as u64),
        }
    }

    /// Creates a cursor for walking the sequence during simulation.
    pub fn cursor(&self) -> OracleCursor<'_> {
        OracleCursor {
            oracle: self,
            pos: 0,
            last_access: HashMap::new(),
        }
    }

    /// Creates a cursor positioned mid-sequence with an empty
    /// last-access map — the window-parallel handoff: a worker that
    /// fast-forwards to access `pos` resumes oracle queries there
    /// without replaying the prefix. Blocks whose most recent access
    /// precedes `pos` answer through [`ReuseOracle::next_use_from`]
    /// (via [`OracleCursor::future_use_of`]) rather than the
    /// last-access chain, exactly as prefetched blocks do.
    ///
    /// # Panics
    ///
    /// Panics if `pos` exceeds the sequence length.
    pub fn cursor_at(&self, pos: u64) -> OracleCursor<'_> {
        assert!(
            pos <= self.len() as u64,
            "cursor start {pos} past oracle end {}",
            self.len()
        );
        OracleCursor {
            oracle: self,
            pos,
            last_access: HashMap::new(),
        }
    }
}

/// Tracks the simulation's position in the access sequence and answers
/// future-reuse queries for blocks by their most recent access.
#[derive(Clone, Debug)]
pub struct OracleCursor<'a> {
    oracle: &'a ReuseOracle,
    pos: u64,
    last_access: HashMap<BlockAddr, u32>,
}

impl<'a> OracleCursor<'a> {
    /// Registers the next demand access (must be called once per block
    /// run, in order) and returns its position index.
    ///
    /// # Panics
    ///
    /// Panics if advanced past the end of the oracle's sequence.
    pub fn advance(&mut self, block: BlockAddr) -> u64 {
        let pos = self.pos;
        assert!(
            (pos as usize) < self.oracle.len(),
            "cursor advanced past oracle end"
        );
        self.last_access.insert(block, pos as u32);
        self.pos += 1;
        pos
    }

    /// Current position (number of accesses consumed).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Next-use position of `block` (based on its most recent access),
    /// or [`NO_NEXT_USE`] if it has no future access or was never seen.
    pub fn next_use_of(&self, block: BlockAddr) -> u64 {
        match self.last_access.get(&block) {
            None => NO_NEXT_USE,
            Some(&p) => self.oracle.next_use_at(p as usize),
        }
    }

    /// Forward stack distance of `block` from its most recent access,
    /// or `None` if it is never re-accessed (or never seen).
    pub fn forward_distance_of(&self, block: BlockAddr) -> Option<u64> {
        self.last_access
            .get(&block)
            .and_then(|&p| self.oracle.forward_distance_at(p as usize))
    }

    /// Next-use position of the *current* access that was just
    /// consumed via [`OracleCursor::advance`]; convenience for fill
    /// decisions.
    pub fn next_use_of_last(&self) -> u64 {
        if self.pos == 0 {
            NO_NEXT_USE
        } else {
            self.oracle.next_use_at(self.pos as usize - 1)
        }
    }

    /// Next use of `block` at or after the cursor's position, even if
    /// the block was never observed through [`OracleCursor::advance`]
    /// (needed when a prefetch fills a block the demand stream has
    /// not reached yet).
    pub fn future_use_of(&self, block: BlockAddr) -> u64 {
        match self.last_access.get(&block) {
            Some(&p) => self.oracle.next_use_at(p as usize),
            None => self.oracle.next_use_from(block, self.pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(v: &[u64]) -> Vec<BlockAddr> {
        v.iter().map(|&b| BlockAddr::new(b)).collect()
    }

    #[test]
    fn next_use_chains_are_increasing() {
        let seq = blocks(&[1, 2, 1, 2, 1]);
        let oracle = ReuseOracle::from_sequence(&seq);
        for i in 0..seq.len() {
            let nx = oracle.next_use_at(i);
            if nx != NO_NEXT_USE {
                assert!(nx > i as u64);
                assert_eq!(seq[nx as usize], seq[i]);
            }
        }
    }

    #[test]
    fn last_accesses_have_no_next_use() {
        let seq = blocks(&[1, 2, 3]);
        let oracle = ReuseOracle::from_sequence(&seq);
        for i in 0..3 {
            assert_eq!(oracle.next_use_at(i), NO_NEXT_USE);
        }
    }

    #[test]
    fn forward_distance_matches_backward_at_next_use() {
        // seq: 1 2 3 1 -> access 0 (block 1) has forward distance 2.
        let seq = blocks(&[1, 2, 3, 1]);
        let oracle = ReuseOracle::from_sequence(&seq);
        assert_eq!(oracle.forward_distance_at(0), Some(2));
        assert_eq!(oracle.forward_distance_at(1), None);
    }

    #[test]
    fn cursor_tracks_most_recent_access() {
        let seq = blocks(&[1, 2, 1, 1]);
        let oracle = ReuseOracle::from_sequence(&seq);
        let mut cur = oracle.cursor();
        cur.advance(BlockAddr::new(1));
        assert_eq!(cur.next_use_of(BlockAddr::new(1)), 2);
        cur.advance(BlockAddr::new(2));
        cur.advance(BlockAddr::new(1));
        // Now block 1's most recent access is position 2; next use is 3.
        assert_eq!(cur.next_use_of(BlockAddr::new(1)), 3);
        assert_eq!(cur.next_use_of(BlockAddr::new(99)), NO_NEXT_USE);
    }

    #[test]
    #[should_panic(expected = "past oracle end")]
    fn cursor_overrun_panics() {
        let oracle = ReuseOracle::from_sequence(&blocks(&[1]));
        let mut cur = oracle.cursor();
        cur.advance(BlockAddr::new(1));
        cur.advance(BlockAddr::new(1));
    }

    #[test]
    fn empty_sequence() {
        let oracle = ReuseOracle::from_sequence(&[]);
        assert!(oracle.is_empty());
    }
}

#[cfg(test)]
mod future_use_tests {
    use super::*;

    fn blocks(v: &[u64]) -> Vec<BlockAddr> {
        v.iter().map(|&b| BlockAddr::new(b)).collect()
    }

    #[test]
    fn next_use_from_binary_searches_occurrences() {
        let seq = blocks(&[1, 2, 1, 3, 1]);
        let oracle = ReuseOracle::from_sequence(&seq);
        assert_eq!(oracle.next_use_from(BlockAddr::new(1), 0), 0);
        assert_eq!(oracle.next_use_from(BlockAddr::new(1), 1), 2);
        assert_eq!(oracle.next_use_from(BlockAddr::new(1), 3), 4);
        assert_eq!(oracle.next_use_from(BlockAddr::new(1), 5), NO_NEXT_USE);
        assert_eq!(oracle.next_use_from(BlockAddr::new(9), 0), NO_NEXT_USE);
    }

    #[test]
    fn cursor_at_resumes_mid_sequence() {
        let seq = blocks(&[1, 2, 1, 3, 1]);
        let oracle = ReuseOracle::from_sequence(&seq);
        let mut cur = oracle.cursor_at(2);
        assert_eq!(cur.position(), 2);
        // Unobserved blocks answer from occurrences at or after pos.
        assert_eq!(cur.future_use_of(BlockAddr::new(1)), 2);
        assert_eq!(cur.future_use_of(BlockAddr::new(3)), 3);
        // Advancing registers positions starting at pos.
        assert_eq!(cur.advance(BlockAddr::new(1)), 2);
        assert_eq!(cur.next_use_of(BlockAddr::new(1)), 4);
        assert_eq!(cur.advance(BlockAddr::new(3)), 3);
        assert_eq!(cur.next_use_of(BlockAddr::new(3)), NO_NEXT_USE);
    }

    #[test]
    #[should_panic(expected = "past oracle end")]
    fn cursor_at_rejects_out_of_range_start() {
        let oracle = ReuseOracle::from_sequence(&blocks(&[1, 2]));
        let _ = oracle.cursor_at(3);
    }

    #[test]
    fn future_use_covers_unobserved_blocks() {
        let seq = blocks(&[1, 2, 3]);
        let oracle = ReuseOracle::from_sequence(&seq);
        let mut cur = oracle.cursor();
        cur.advance(BlockAddr::new(1));
        // Block 3 was never advanced through the cursor (imagine a
        // prefetch): future_use_of still answers from occurrences.
        assert_eq!(cur.future_use_of(BlockAddr::new(3)), 2);
        // Observed blocks use the chain.
        assert_eq!(cur.future_use_of(BlockAddr::new(1)), NO_NEXT_USE);
    }
}

//! Exact LRU stack distances over a block-access sequence.
//!
//! The paper (footnote 1) defines reuse distance as "the number of
//! unique instruction cache blocks accessed between two successive
//! accesses to the same instruction block" — i.e. the LRU stack
//! distance. We compute it exactly with the classic Fenwick-tree
//! algorithm: mark the most recent access position of every block with
//! a 1; the distance of a re-access is the count of marks strictly
//! between the previous access and now.

use crate::markov::ReuseBucket;
use acic_types::{BlockAddr, FenwickTree};
use std::collections::HashMap;

/// Computes exact LRU stack distances for a block-access sequence.
///
/// # Examples
///
/// ```
/// use acic_trace::StackDistanceAnalyzer;
/// use acic_types::BlockAddr;
///
/// let seq: Vec<BlockAddr> = [1u64, 2, 3, 1, 1].iter().map(|&b| BlockAddr::new(b)).collect();
/// let d = StackDistanceAnalyzer::analyze(&seq);
/// assert_eq!(d, vec![None, None, None, Some(2), Some(0)]);
/// ```
#[derive(Debug)]
pub struct StackDistanceAnalyzer;

impl StackDistanceAnalyzer {
    /// Returns the stack distance of each access; `None` for the first
    /// (cold) access to a block.
    pub fn analyze(seq: &[BlockAddr]) -> Vec<Option<u64>> {
        let n = seq.len();
        let mut tree = FenwickTree::new(n);
        let mut last_pos: HashMap<BlockAddr, usize> = HashMap::new();
        let mut out = Vec::with_capacity(n);
        for (i, &b) in seq.iter().enumerate() {
            match last_pos.get(&b).copied() {
                None => out.push(None),
                Some(p) => {
                    // Count distinct blocks accessed strictly between p and i.
                    let d = if p < i.saturating_sub(1) && i >= 1 {
                        tree.range_sum(p + 1, i - 1)
                    } else {
                        0
                    };
                    debug_assert!(d >= 0);
                    out.push(Some(d as u64));
                    tree.add(p, -1);
                }
            }
            tree.add(i, 1);
            last_pos.insert(b, i);
        }
        out
    }

    /// Builds the Figure-1a style histogram directly from a sequence.
    pub fn histogram(seq: &[BlockAddr]) -> ReuseHistogram {
        let mut h = ReuseHistogram::default();
        for d in Self::analyze(seq) {
            h.record(d);
        }
        h
    }
}

/// Bucketed reuse-distance histogram (Figure 1a).
///
/// Buckets follow the paper's x-axis: 0, 1–16, 16–512, 512–1024,
/// 1024–10000, plus an explicit ≥10000 bucket; cold (first) accesses
/// are tracked separately and excluded from percentages.
///
/// # Examples
///
/// ```
/// use acic_trace::ReuseHistogram;
///
/// let mut h = ReuseHistogram::default();
/// h.record(Some(0));
/// h.record(Some(0));
/// h.record(Some(700));
/// h.record(None); // cold
/// let f = h.fractions();
/// assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
/// assert!((f[3] - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    counts: [u64; ReuseBucket::COUNT],
    cold: u64,
}

impl ReuseHistogram {
    /// Records one access's distance (`None` = cold access).
    pub fn record(&mut self, distance: Option<u64>) {
        match distance {
            None => self.cold += 1,
            Some(d) => self.counts[ReuseBucket::of(d) as usize] += 1,
        }
    }

    /// Raw counts per bucket, in [`ReuseBucket`] order.
    pub fn counts(&self) -> &[u64; ReuseBucket::COUNT] {
        &self.counts
    }

    /// Number of cold (first) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Total number of non-cold accesses.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of non-cold accesses per bucket (sums to 1 unless
    /// empty).
    pub fn fractions(&self) -> [f64; ReuseBucket::COUNT] {
        let total = self.total();
        let mut out = [0.0; ReuseBucket::COUNT];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(self.counts.iter()) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.cold += other.cold;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(v: &[u64]) -> Vec<BlockAddr> {
        v.iter().map(|&b| BlockAddr::new(b)).collect()
    }

    #[test]
    fn immediate_reaccess_is_distance_zero() {
        let d = StackDistanceAnalyzer::analyze(&blocks(&[7, 7, 7]));
        assert_eq!(d, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn distance_counts_distinct_blocks_only() {
        // 1 2 2 2 3 1 : between the two accesses to 1 there are two
        // distinct blocks (2 and 3) even though 2 is accessed 3 times.
        let d = StackDistanceAnalyzer::analyze(&blocks(&[1, 2, 2, 2, 3, 1]));
        assert_eq!(d[5], Some(2));
    }

    #[test]
    fn distances_bounded_by_distinct_blocks() {
        let seq = blocks(&[1, 2, 3, 4, 5, 1, 2, 3, 4, 5]);
        for d in StackDistanceAnalyzer::analyze(&seq).into_iter().flatten() {
            assert!(d < 5);
        }
    }

    #[test]
    fn matches_naive_computation() {
        // Pseudo-random sequence over a small alphabet, verified
        // against an O(n^2) reference.
        let mut x: u64 = 9;
        let seq: Vec<BlockAddr> = (0..200)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                BlockAddr::new((x >> 40) % 12)
            })
            .collect();
        let fast = StackDistanceAnalyzer::analyze(&seq);
        for i in 0..seq.len() {
            let prev = (0..i).rev().find(|&j| seq[j] == seq[i]);
            let expected = prev.map(|p| {
                let mut distinct = std::collections::HashSet::new();
                for &b in &seq[p + 1..i] {
                    distinct.insert(b);
                }
                distinct.len() as u64
            });
            assert_eq!(fast[i], expected, "at position {i}");
        }
    }

    #[test]
    fn histogram_buckets_and_cold() {
        let h = StackDistanceAnalyzer::histogram(&blocks(&[1, 1, 2, 1]));
        assert_eq!(h.cold(), 2);
        assert_eq!(h.total(), 2);
        // distances: 0 (1->1) and 1 (1 after 2).
        assert_eq!(h.counts()[ReuseBucket::D0 as usize], 1);
        assert_eq!(h.counts()[ReuseBucket::D1To16 as usize], 1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = StackDistanceAnalyzer::histogram(&blocks(&[1, 1]));
        let b = StackDistanceAnalyzer::histogram(&blocks(&[2, 2, 2]));
        a.merge(&b);
        assert_eq!(a.counts()[ReuseBucket::D0 as usize], 3);
    }
}

//! Multi-tenant trace composition: quantum-scheduled interleaving of
//! N child traces with explicit context-switch boundaries.
//!
//! A datacenter core does not run one process to completion; the OS
//! round-robins many address spaces, and every switch exposes the
//! i-cache to a different instruction footprint at *overlapping*
//! virtual addresses. [`InterleavedTrace`] models exactly that: it
//! round-robins its children in fixed instruction quanta, stamping
//! each child's instructions with a per-tenant [`Asid`] (tenant `i`
//! gets ASID `i`). A context switch is the point where consecutive
//! instructions carry different ASIDs — [`crate::BlockRuns`] never
//! merges across one, so every downstream consumer sees the boundary
//! without any side channel.
//!
//! **Single-tenant degeneracy.** With one child, quantum expiry
//! re-selects the same tenant and tenant 0's stamp is [`Asid::HOST`],
//! so the emitted stream is *bit-identical* to the child's own — the
//! no-regression guarantee the equivalence property tests pin down.
//!
//! # Contract
//!
//! As a composed [`TraceSource`], the interleaver honors the trait's
//! reset and `len_hint` contract strictly:
//!
//! * **Reset**: `iter()` re-opens every child from its beginning and
//!   replays the identical schedule — two passes yield byte-identical
//!   streams (required by the two-pass OPT oracle).
//! * **`len_hint`**: exactly the sum of the children's hints when
//!   every child reports one; `None` if any child cannot answer. A
//!   composed hint is never an estimate.

use crate::instr::Instr;
use crate::source::TraceSource;
use acic_types::Asid;

/// A quantum-scheduled, round-robin interleaving of child traces.
///
/// # Examples
///
/// ```
/// use acic_trace::{Instr, InterleavedTrace, TraceSource, VecTrace};
/// use acic_types::{Addr, Asid};
///
/// let a = VecTrace::with_name(vec![Instr::alu(Addr::new(0)); 4], "a");
/// let b = VecTrace::with_name(vec![Instr::alu(Addr::new(64)); 4], "b");
/// let mt = InterleavedTrace::new(vec![a, b], 2);
/// let asids: Vec<u16> = mt.iter().map(|i| i.asid().raw()).collect();
/// assert_eq!(asids, vec![0, 0, 1, 1, 0, 0, 1, 1]);
/// assert_eq!(mt.len_hint(), Some(8)); // exact: both children know
/// ```
#[derive(Debug)]
pub struct InterleavedTrace<S> {
    tenants: Vec<S>,
    quantum: u64,
    name: String,
}

impl<S: TraceSource> InterleavedTrace<S> {
    /// Interleaves `tenants` with `quantum` instructions per
    /// timeslice. Tenant `i` is stamped with ASID `i`.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty, `quantum` is zero, or there are
    /// more tenants than ASIDs.
    pub fn new(tenants: Vec<S>, quantum: u64) -> Self {
        let name = format!(
            "mt{}q{}[{}]",
            tenants.len(),
            quantum,
            tenants
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        Self::with_name(tenants, quantum, name)
    }

    /// Like [`InterleavedTrace::new`] but with an explicit name.
    ///
    /// The name feeds [`TraceSource::seed`]; the 1-tenant equivalence
    /// tests use this to give the interleaved wrapper the child's
    /// name so both paths derive identical component seeds.
    pub fn with_name(tenants: Vec<S>, quantum: u64, name: impl Into<String>) -> Self {
        assert!(!tenants.is_empty(), "interleaver needs at least one tenant");
        assert!(quantum > 0, "switch quantum must be positive");
        assert!(
            tenants.len() <= u16::MAX as usize + 1,
            "more tenants than ASIDs"
        );
        InterleavedTrace {
            tenants,
            quantum,
            name: name.into(),
        }
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Instructions per timeslice.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// The child sources.
    pub fn tenants(&self) -> &[S] {
        &self.tenants
    }
}

/// One pass over an [`InterleavedTrace`].
#[derive(Debug)]
pub struct InterleavedIter<'a, S: TraceSource + 'a> {
    /// Child iterators; `None` once a child is exhausted.
    children: Vec<Option<S::Iter<'a>>>,
    current: usize,
    left_in_quantum: u64,
    quantum: u64,
}

impl<'a, S: TraceSource + 'a> InterleavedIter<'a, S> {
    /// Rotates to the next live tenant (possibly back to the current
    /// one when it is the only survivor) and recharges the quantum.
    /// Returns `false` when every child is exhausted.
    fn switch_to_next_live(&mut self) -> bool {
        let n = self.children.len();
        for step in 1..=n {
            let idx = (self.current + step) % n;
            if self.children[idx].is_some() {
                self.current = idx;
                self.left_in_quantum = self.quantum;
                return true;
            }
        }
        false
    }
}

impl<'a, S: TraceSource + 'a> Iterator for InterleavedIter<'a, S> {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        // At most one attempt per tenant before concluding the whole
        // interleave is drained.
        for _ in 0..=self.children.len() {
            if (self.left_in_quantum == 0 || self.children[self.current].is_none())
                && !self.switch_to_next_live()
            {
                return None;
            }
            let idx = self.current;
            if let Some(it) = self.children[idx].as_mut() {
                match it.next() {
                    Some(i) => {
                        self.left_in_quantum -= 1;
                        return Some(i.with_asid(Asid::new(idx as u16)));
                    }
                    // Exhausted mid-quantum: retire this tenant and
                    // let the loop rotate onward.
                    None => self.children[idx] = None,
                }
            }
        }
        None
    }
}

impl<S: TraceSource> TraceSource for InterleavedTrace<S> {
    type Iter<'a>
        = InterleavedIter<'a, S>
    where
        S: 'a;

    fn iter(&self) -> Self::Iter<'_> {
        InterleavedIter {
            children: self.tenants.iter().map(|t| Some(t.iter())).collect(),
            current: 0,
            left_in_quantum: self.quantum,
            quantum: self.quantum,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn len_hint(&self) -> Option<u64> {
        // Exact-or-nothing: the sum of child hints when all children
        // know their length, never a guess (see the module contract).
        self.tenants
            .iter()
            .try_fold(0u64, |acc, t| t.len_hint().map(|n| acc + n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecTrace;
    use acic_types::Addr;

    fn trace(name: &str, n: u64, base: u64) -> VecTrace {
        VecTrace::with_name(
            (0..n)
                .map(|i| Instr::alu(Addr::new(base + i * 4)))
                .collect(),
            name,
        )
    }

    #[test]
    fn round_robin_respects_quantum() {
        let mt = InterleavedTrace::new(vec![trace("a", 6, 0), trace("b", 6, 0)], 3);
        let asids: Vec<u16> = mt.iter().map(|i| i.asid().raw()).collect();
        assert_eq!(asids, vec![0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn exhausted_tenant_cedes_remaining_time() {
        // Tenant a has 2 instructions, b has 6: once a drains, b runs
        // uninterrupted.
        let mt = InterleavedTrace::new(vec![trace("a", 2, 0), trace("b", 6, 0)], 4);
        let asids: Vec<u16> = mt.iter().map(|i| i.asid().raw()).collect();
        assert_eq!(asids, vec![0, 0, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn single_tenant_stream_is_bit_identical() {
        let child = trace("solo", 37, 0x400);
        let mt = InterleavedTrace::new(vec![trace("solo", 37, 0x400)], 5);
        let a: Vec<Instr> = child.iter().collect();
        let b: Vec<Instr> = mt.iter().collect();
        assert_eq!(a, b, "1-tenant interleave must be the identity");
    }

    #[test]
    fn reset_replays_identical_schedule() {
        let mt = InterleavedTrace::new(vec![trace("a", 10, 0), trace("b", 7, 64)], 3);
        let a: Vec<Instr> = mt.iter().collect();
        let b: Vec<Instr> = mt.iter().collect();
        assert_eq!(a, b, "iter() must re-open from the start");
        assert_eq!(a.len() as u64, mt.len_hint().unwrap());
    }

    #[test]
    fn len_hint_is_exact_sum_or_none() {
        let mt = InterleavedTrace::new(vec![trace("a", 10, 0), trace("b", 7, 0)], 2);
        assert_eq!(mt.len_hint(), Some(17));
        assert_eq!(mt.iter().count() as u64, 17);

        // A source that cannot answer poisons the composed hint.
        struct NoHint;
        impl TraceSource for NoHint {
            type Iter<'a> = core::iter::Empty<Instr>;
            fn iter(&self) -> Self::Iter<'_> {
                core::iter::empty()
            }
            fn name(&self) -> &str {
                "nohint"
            }
        }
        #[derive(Debug)]
        enum Either {
            Vec(VecTrace),
            No(NoHint),
        }
        impl core::fmt::Debug for NoHint {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                f.write_str("NoHint")
            }
        }
        impl TraceSource for Either {
            type Iter<'a> = Box<dyn Iterator<Item = Instr> + 'a>;
            fn iter(&self) -> Self::Iter<'_> {
                match self {
                    Either::Vec(v) => Box::new(v.iter()),
                    Either::No(n) => Box::new(n.iter()),
                }
            }
            fn name(&self) -> &str {
                match self {
                    Either::Vec(v) => v.name(),
                    Either::No(n) => n.name(),
                }
            }
            fn len_hint(&self) -> Option<u64> {
                match self {
                    Either::Vec(v) => v.len_hint(),
                    Either::No(n) => n.len_hint(),
                }
            }
        }
        let mixed =
            InterleavedTrace::new(vec![Either::Vec(trace("a", 3, 0)), Either::No(NoHint)], 2);
        assert_eq!(mixed.len_hint(), None, "no child hint => no hint");
    }

    #[test]
    fn switch_count_matches_quantum_schedule() {
        let mt = InterleavedTrace::new(vec![trace("a", 9, 0), trace("b", 9, 0)], 3);
        let mut switches = 0;
        let mut prev = None;
        for i in mt.iter() {
            if prev.is_some_and(|p| p != i.asid()) {
                switches += 1;
            }
            prev = Some(i.asid());
        }
        // 18 instructions in 6 quanta of 3 => 5 boundaries.
        assert_eq!(switches, 5);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_rejected() {
        let _ = InterleavedTrace::new(vec![trace("a", 1, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "tenant")]
    fn empty_tenant_list_rejected() {
        let _ = InterleavedTrace::new(Vec::<VecTrace>::new(), 4);
    }

    #[test]
    fn default_name_encodes_shape() {
        let mt = InterleavedTrace::new(vec![trace("a", 1, 0), trace("b", 1, 0)], 7);
        assert_eq!(mt.name(), "mt2q7[a+b]");
    }
}

//! Instruction traces and the offline analyses the paper builds on.
//!
//! The paper drives a cycle-level simulator with full-system
//! instruction traces and motivates ACIC with reuse-distance analyses
//! (Figures 1a, 1b, 3b) and an oracle that knows each block's next use
//! (OPT replacement, OPT bypass, and the bypass-accuracy studies). This
//! crate provides all of that machinery:
//!
//! * [`Instr`] / [`InstrKind`] — the trace record.
//! * [`TraceSource`] — a resettable, deterministic stream of
//!   instructions (synthetic workloads implement this).
//! * [`PackedTrace`] — the frozen form of any source: a delta/RLE
//!   byte arena with a skip index and a versioned on-disk container,
//!   replayed zero-copy and bit-identically by any number of
//!   consumers.
//! * [`BlockRuns`] — groups consecutive same-block instructions into
//!   i-cache accesses, the granularity every cache model operates on.
//! * [`StackDistanceAnalyzer`] — exact LRU stack distances over block
//!   accesses (the paper's definition of reuse distance, footnote 1).
//! * [`ReuseBucket`] / [`MarkovChain`] — the bucketed histogram and
//!   transition matrix of Figure 1.
//! * [`ReuseOracle`] — a two-pass oracle giving, at any point in the
//!   trace, the next-use position and forward stack distance of any
//!   block; this powers Belady's OPT, OPT-bypass, and Figures 3b/12a.
//!
//! # Examples
//!
//! ```
//! use acic_trace::{BlockRuns, Instr, TraceSource, VecTrace};
//! use acic_types::Addr;
//!
//! let instrs: Vec<Instr> = (0..32).map(|i| Instr::alu(Addr::new(i * 4))).collect();
//! let trace = VecTrace::new(instrs);
//! let runs: Vec<_> = BlockRuns::new(trace.iter()).collect();
//! assert_eq!(runs.len(), 2); // 32 four-byte instructions span two 64 B blocks
//! assert_eq!(runs[0].len, 16);
//! ```

pub mod instr;
pub mod interleave;
pub mod markov;
pub mod oracle;
pub mod packed;
pub mod runs;
pub mod source;
pub mod stack_distance;

pub use instr::{BranchClass, Instr, InstrKind};
pub use interleave::{InterleavedIter, InterleavedTrace};
pub use markov::{MarkovChain, ReuseBucket};
pub use oracle::{OracleCursor, ReuseOracle, NO_NEXT_USE};
pub use packed::{PackedCursor, PackedTrace, PackedTraceBuilder, TraceFileError, SKIP_STRIDE};
pub use runs::{BlockRun, BlockRuns, GroupedRuns, RunInstrs};
pub use source::{skip_instrs, TraceSource, Truncated, TruncatedIter, VecTrace};
pub use stack_distance::{ReuseHistogram, StackDistanceAnalyzer};

//! The composed ACIC organization (Figure 2 + Figure 4's datapath).
//!
//! Demand fetches probe the i-Filter and i-cache concurrently and
//! search the CSHR to resolve outstanding comparisons. Misses fill
//! the i-Filter only; when the filter overflows, the two-level
//! predictor decides whether the victim displaces the LRU *contender*
//! of its i-cache set or is thrown away, and a new CSHR comparison is
//! opened either way so the predictor keeps learning.

use crate::config::AcicConfig;
use crate::cshr::{Cshr, CshrStats, ResolutionBuf, UnboundedCshr};
use crate::filter::IFilter;
use crate::partial_tag;
use crate::predictor::AdmissionPredictor;
use acic_cache::policy::PolicyKind;
use acic_cache::{AccessCtx, AccessOutcome, CacheStats, IcacheContents, SetAssocCache};
use acic_types::stats::Ratio;
use acic_types::{Cycle, TaggedBlock};

/// Cumulative reuse-distance bounds of Figure 12a: `[0, bound)`,
/// with the first entry meaning "all decisions".
pub const ACCURACY_BOUNDS: [u64; 6] = [u64::MAX, 2048, 1024, 512, 256, 128];

/// Figure 3b bucket labels for the (incoming - outgoing)
/// forward-reuse-distance histogram.
pub const INSERT_DELTA_LABELS: [&str; 11] = [
    "-InF", "-10000", "-1000", "-100", "-10", "0", "10", "100", "1000", "10000", "InF",
];

/// Buckets a signed forward-distance delta for Figure 3b.
pub fn insert_delta_bucket(delta: i128) -> usize {
    match delta {
        d if d <= -10_000 => 0,
        d if d <= -1_000 => 1,
        d if d <= -100 => 2,
        d if d <= -10 => 3,
        d if d < 0 => 4,
        0 => 5,
        d if d < 10 => 6,
        d if d < 100 => 7,
        d if d < 1_000 => 8,
        d if d < 10_000 => 9,
        _ => 10,
    }
}

/// ACIC-specific statistics (Figures 12a, 13, and CSHR health).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AcicStats {
    /// i-Filter victims subjected to an admission decision.
    pub decisions: u64,
    /// Victims admitted into the i-cache.
    pub admitted: u64,
    /// Victims thrown away.
    pub bypassed: u64,
    /// Fills that used an invalid way (no contender, no decision).
    pub free_admissions: u64,
    /// Decision correctness vs the oracle, per [`ACCURACY_BOUNDS`]
    /// range (only populated when the driver attaches an oracle).
    pub accuracy: [Ratio; ACCURACY_BOUNDS.len()],
    /// Fraction of decisions where the oracle would admit (only
    /// populated when the driver attaches an oracle).
    pub oracle_admits: Ratio,
    /// Figure 3b histogram: (incoming - contender) forward reuse
    /// distance at each decision, bucketed per
    /// [`INSERT_DELTA_LABELS`].
    pub insert_delta: [u64; 11],
}

impl AcicStats {
    /// Fraction of decided victims that were admitted (Figure 13).
    pub fn admit_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.admitted as f64 / self.decisions as f64
        }
    }

    /// Adds another instance's counters into this one. Every field is
    /// a sum or a [`Ratio`], so merging per-window statistics in any
    /// grouping yields the same totals as one sequential run.
    pub fn merge(&mut self, other: &AcicStats) {
        self.decisions += other.decisions;
        self.admitted += other.admitted;
        self.bypassed += other.bypassed;
        self.free_admissions += other.free_admissions;
        for (mine, theirs) in self.accuracy.iter_mut().zip(other.accuracy.iter()) {
            mine.merge(*theirs);
        }
        self.oracle_admits.merge(other.oracle_admits);
        for (mine, theirs) in self.insert_delta.iter_mut().zip(other.insert_delta.iter()) {
            *mine += *theirs;
        }
    }
}

/// The admission-controlled instruction cache.
///
/// Implements [`IcacheContents`] so the timing simulator can drive it
/// interchangeably with the other organizations.
///
/// # Examples
///
/// ```
/// use acic_cache::{AccessCtx, IcacheContents};
/// use acic_core::{AcicConfig, AcicIcache};
/// use acic_types::BlockAddr;
///
/// let mut acic = AcicIcache::new(AcicConfig::default());
/// let a = BlockAddr::new(100);
/// acic.fill(&AccessCtx::demand(a, 0));
/// assert!(acic.access(&AccessCtx::demand(a, 1)).hit); // i-Filter hit
/// ```
pub struct AcicIcache {
    cfg: AcicConfig,
    filter: Option<IFilter>,
    cache: SetAssocCache,
    predictor: AdmissionPredictor,
    cshr: Cshr,
    /// Reused CSHR search buffer — the access path never allocates.
    resolutions: ResolutionBuf,
    /// Figure-6 instrumentation, gated behind
    /// [`AcicIcache::with_unbounded_instrumentation`]: boxed so a
    /// default run carries one cold pointer instead of three inline
    /// `HashMap` headers in the middle of the hot fields.
    unbounded: Option<Box<UnboundedCshr>>,
    now: Cycle,
    stats: CacheStats,
    acic_stats: AcicStats,
}

impl AcicIcache {
    /// Builds the organization from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`AcicConfig::validate`]).
    pub fn new(cfg: AcicConfig) -> Self {
        cfg.validate();
        let filter = (cfg.filter_entries > 0).then(|| IFilter::new(cfg.filter_entries));
        AcicIcache {
            filter,
            cache: SetAssocCache::new(cfg.icache, PolicyKind::Lru.build(cfg.icache)),
            predictor: AdmissionPredictor::new(&cfg),
            cshr: Cshr::new(cfg.cshr_sets, cfg.cshr_ways(), cfg.icache.sets()),
            resolutions: ResolutionBuf::new(),
            unbounded: None,
            now: 0,
            stats: CacheStats::default(),
            acic_stats: AcicStats::default(),
            cfg,
        }
    }

    /// Enables the unbounded-CSHR instrumentation used by Figure 6.
    /// This is the only way its bookkeeping maps come into existence —
    /// default runs pay nothing for them.
    pub fn with_unbounded_instrumentation(mut self) -> Self {
        self.unbounded = Some(Box::new(UnboundedCshr::new()));
        self
    }

    /// ACIC-specific statistics.
    pub fn acic_stats(&self) -> &AcicStats {
        &self.acic_stats
    }

    /// CSHR statistics.
    pub fn cshr_stats(&self) -> CshrStats {
        self.cshr.stats()
    }

    /// Unbounded-CSHR instrumentation results, if enabled.
    pub fn unbounded_cshr(&self) -> Option<&UnboundedCshr> {
        self.unbounded.as_deref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AcicConfig {
        &self.cfg
    }

    /// Drains the predictor's pending updates (call at simulation
    /// end before inspecting predictor state).
    pub fn finalize(&mut self) {
        if let AdmissionPredictor::TwoLevel(p) = &mut self.predictor {
            p.flush();
        }
    }

    /// The i-Filter, if configured (for tests and invariant checks).
    pub fn filter(&self) -> Option<&IFilter> {
        self.filter.as_ref()
    }

    /// The backing i-cache (for tests and invariant checks).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    fn ptag(&self, block: TaggedBlock) -> u16 {
        partial_tag(block, self.cfg.cshr_tag_bits)
    }

    /// Runs the admission decision for `incoming` (an i-Filter victim,
    /// or the missed block itself in the no-filter ablation).
    fn decide_and_place(&mut self, incoming: TaggedBlock, ctx: &AccessCtx<'_>) {
        let ictx = AccessCtx {
            block: incoming.block,
            asid: incoming.asid,
            ..*ctx
        };
        let Some(contender) = self.cache.contender(&ictx) else {
            // Invalid way available: admission is free (no comparison).
            self.cache.fill(&ictx);
            if ctx.stats_enabled {
                self.acic_stats.free_admissions += 1;
            }
            return;
        };
        let vtag = self.ptag(incoming);
        let admit = self.predictor.predict(vtag);
        if ctx.stats_enabled {
            self.acic_stats.decisions += 1;
        }

        // Oracle instrumentation (Figure 12a): was the decision right?
        // The oracle is keyed by flattened tagged identity.
        if let Some(cur) = ctx.oracle.filter(|_| ctx.stats_enabled) {
            let oracle_admit =
                cur.next_use_of(incoming.oracle_key()) <= cur.next_use_of(contender.oracle_key());
            self.acic_stats.oracle_admits.record(oracle_admit);
            let correct = admit == oracle_admit;
            let dv = cur
                .forward_distance_of(incoming.oracle_key())
                .unwrap_or(u64::MAX);
            let dc = cur
                .forward_distance_of(contender.oracle_key())
                .unwrap_or(u64::MAX);
            let delta = dv as i128 - dc as i128;
            self.acic_stats.insert_delta[insert_delta_bucket(delta)] += 1;
            let min_dist = dv.min(dc);
            for (i, &bound) in ACCURACY_BOUNDS.iter().enumerate() {
                if min_dist < bound {
                    self.acic_stats.accuracy[i].record(correct);
                }
            }
        }

        if admit {
            if ctx.stats_enabled {
                self.acic_stats.admitted += 1;
            }
            if let Some(evicted) = self.cache.fill(&ictx) {
                debug_assert_eq!(evicted, contender, "LRU contender must be the victim");
            }
        } else if ctx.stats_enabled {
            self.acic_stats.bypassed += 1;
            self.stats.bypasses += 1;
        }

        // Open the comparison regardless of the decision (Figure 5).
        let set = self.cfg.icache.set_of_tagged(incoming);
        if let Some(forced) = self.cshr.insert(vtag, self.ptag(contender), set) {
            self.predictor
                .train(forced.victim_ptag, forced.victim_won, self.now);
        }
        if let Some(u) = self.unbounded.as_mut() {
            u.insert(incoming.oracle_key(), contender.oracle_key());
        }
    }
}

impl IcacheContents for AcicIcache {
    fn access(&mut self, ctx: &AccessCtx<'_>) -> AccessOutcome {
        if !ctx.is_prefetch {
            // Fetch requests search the CSHR (§III-B) and resolve
            // outstanding comparisons into the reused buffer.
            let set = self.cfg.icache.set_of_tagged(ctx.tagged());
            self.cshr
                .search_into(self.ptag(ctx.tagged()), set, &mut self.resolutions);
            for &r in self.resolutions.as_slice() {
                self.predictor.train(r.victim_ptag, r.victim_won, self.now);
            }
            if let Some(u) = self.unbounded.as_mut() {
                u.on_fetch(ctx.tagged().oracle_key());
            }
        }
        let filter_hit = self.filter.as_mut().is_some_and(|f| f.access(ctx.tagged()));
        let hit = filter_hit || self.cache.access(ctx);
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.record_prefetch(hit);
            } else {
                self.stats.record_demand(hit);
            }
        }
        if hit {
            AccessOutcome::hit()
        } else {
            AccessOutcome::miss()
        }
    }

    fn fill(&mut self, ctx: &AccessCtx<'_>) {
        if self.contains_block(ctx.tagged()) {
            return; // a prefetch raced the demand miss
        }
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.prefetch_fills += 1;
            } else {
                self.stats.demand_fills += 1;
            }
        }
        match self.filter.as_mut() {
            Some(filter) => {
                if let Some(victim) = filter.insert(ctx.tagged()) {
                    self.decide_and_place(victim, ctx);
                }
            }
            None => {
                // No-filter ablation: admission control applies to the
                // missed block directly.
                self.decide_and_place(ctx.tagged(), ctx);
            }
        }
    }

    fn contains_block(&self, block: TaggedBlock) -> bool {
        self.filter.as_ref().is_some_and(|f| f.contains(block)) || self.cache.contains(block)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        match (&self.filter, self.predictor.label()) {
            (Some(_), label) => format!("acic({label})"),
            (None, label) => format!("acic(no-filter,{label})"),
        }
    }

    fn tick(&mut self, now: Cycle) {
        self.now = now;
        self.predictor.tick(now);
    }

    fn wants_tick(&self) -> bool {
        true
    }

    fn next_tick_due(&self) -> Option<Cycle> {
        // Ticks before the predictor's earliest pending update only
        // advance `self.now`, which nothing reads between accesses —
        // the event loop may batch them.
        self.predictor.next_due()
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorKind;
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    #[test]
    fn insert_delta_bucket_boundary_values() {
        // Each (delta, bucket) pair sits exactly on a bucket edge of
        // the Figure 3b histogram.
        let cases: [(i128, usize); 16] = [
            (i128::MIN, 0),
            (-10_001, 0),
            (-10_000, 0),
            (-9_999, 1),
            (-1_000, 1),
            (-999, 2),
            (-100, 2),
            (-99, 3),
            (-10, 3),
            (-9, 4),
            (-1, 4),
            (0, 5),
            (1, 6),
            (9, 6),
            (10_000, 10),
            (i128::MAX, 10),
        ];
        for (delta, bucket) in cases {
            assert_eq!(
                insert_delta_bucket(delta),
                bucket,
                "delta {delta} must land in bucket {bucket}"
            );
        }
    }

    #[test]
    fn insert_delta_buckets_cover_and_partition() {
        // Every delta lands in exactly one of the 11 labeled buckets,
        // and bucket index is monotone in delta.
        let mut prev = 0usize;
        for delta in [
            -20_000i128,
            -10_000,
            -5_000,
            -1_000,
            -500,
            -100,
            -50,
            -10,
            -5,
            0,
            5,
            9,
            50,
            99,
            500,
            999,
            5_000,
            9_999,
            10_000,
            20_000,
        ] {
            let b = insert_delta_bucket(delta);
            assert!(b < INSERT_DELTA_LABELS.len());
            assert!(b >= prev, "bucket must not decrease at delta {delta}");
            prev = b;
        }
    }

    fn tiny_cfg() -> AcicConfig {
        AcicConfig {
            icache: acic_cache::CacheGeometry::from_sets_ways(4, 2),
            filter_entries: 2,
            ..AcicConfig::default()
        }
    }

    #[test]
    fn fills_go_to_filter_first() {
        let mut a = AcicIcache::new(tiny_cfg());
        a.fill(&ctx(1, 0));
        assert!(a.filter().unwrap().contains(BlockAddr::new(1)));
        assert!(!a.cache().contains(BlockAddr::new(1)));
    }

    #[test]
    fn filter_overflow_triggers_decision() {
        let mut a = AcicIcache::new(tiny_cfg());
        a.fill(&ctx(1, 0));
        a.fill(&ctx(2, 1));
        a.fill(&ctx(3, 2)); // evicts 1 from the filter
                            // With invalid ways in the cache, admission is free.
        assert_eq!(a.acic_stats().free_admissions, 1);
        assert!(a.cache().contains(BlockAddr::new(1)));
    }

    #[test]
    fn block_never_in_both_filter_and_cache() {
        let mut a = AcicIcache::new(tiny_cfg());
        for i in 0..64u64 {
            let b = i % 7;
            let c = ctx(b, i);
            if !a.access(&c).hit {
                a.fill(&c);
            }
            if let Some(f) = a.filter() {
                for blk in f.resident_blocks() {
                    assert!(!a.cache().contains(blk), "block {blk} duplicated");
                }
            }
        }
    }

    #[test]
    fn cshr_trains_predictor_on_resolution() {
        let mut a = AcicIcache::new(AcicConfig {
            predictor: PredictorKind::TwoLevel,
            update_mode: crate::UpdateMode::Instant,
            ..tiny_cfg()
        });
        // Fill cache set 0 completely so decisions are real.
        for i in 0..16u64 {
            let c = ctx(i, i);
            if !a.access(&c).hit {
                a.fill(&c);
            }
        }
        assert!(a.cshr_stats().inserted > 0, "decisions open comparisons");
    }

    #[test]
    fn never_admit_bypasses_everything() {
        let mut a = AcicIcache::new(AcicConfig {
            predictor: PredictorKind::NeverAdmit,
            ..tiny_cfg()
        });
        // Warm the cache (free admissions use invalid ways), then
        // stream more blocks: every decided victim is bypassed.
        for i in 0..200u64 {
            let c = ctx(i, i);
            a.access(&c);
            a.fill(&c);
        }
        assert!(a.acic_stats().decisions > 0);
        assert_eq!(a.acic_stats().admitted, 0);
        assert_eq!(a.acic_stats().bypassed, a.acic_stats().decisions);
    }

    #[test]
    fn no_filter_ablation_decides_on_misses() {
        let mut a = AcicIcache::new(AcicConfig {
            filter_entries: 0,
            ..tiny_cfg()
        });
        for i in 0..32u64 {
            let c = ctx(i, i);
            a.access(&c);
            a.fill(&c);
        }
        assert!(a.filter().is_none());
        assert!(a.acic_stats().decisions > 0);
        assert!(a.label().contains("no-filter"));
    }

    #[test]
    fn quiet_accesses_learn_without_counting_admissions() {
        let mut a = AcicIcache::new(tiny_cfg());
        for i in 0..200u64 {
            let c = ctx(i % 23, i).quiet();
            if !a.access(&c).hit {
                a.fill(&c);
            }
        }
        // Warmup-mode traffic trains the machinery (comparisons open,
        // blocks place) without moving a single reported counter.
        assert!(a.cshr_stats().inserted > 0, "CSHR keeps learning");
        assert!(!a.cache().resident_blocks().is_empty(), "cache warmed");
        assert_eq!(a.stats(), CacheStats::default());
        let s = *a.acic_stats();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.admitted + s.bypassed + s.free_admissions, 0);
    }

    #[test]
    fn admit_fraction_bounded() {
        let mut a = AcicIcache::new(tiny_cfg());
        for i in 0..500u64 {
            let b = i % 23;
            let c = ctx(b, i);
            if !a.access(&c).hit {
                a.fill(&c);
            }
        }
        let f = a.acic_stats().admit_fraction();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn duplicate_fill_is_ignored() {
        let mut a = AcicIcache::new(tiny_cfg());
        a.fill(&ctx(1, 0));
        a.fill(&ctx(1, 1));
        assert_eq!(a.filter().unwrap().len(), 1);
    }

    #[test]
    fn prefetch_fills_counted_separately() {
        let mut a = AcicIcache::new(tiny_cfg());
        let p = AccessCtx::prefetch(BlockAddr::new(9), 0);
        a.access(&p);
        a.fill(&p);
        assert_eq!(a.stats().prefetch_fills, 1);
        assert_eq!(a.stats().demand_fills, 0);
    }
}

//! ACIC configuration and the Table I storage accounting.

use acic_cache::CacheGeometry;

/// How HRT/PT training updates are applied (§III-C2, Figure 14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UpdateMode {
    /// Updates apply immediately (the idealized comparison point of
    /// Figure 14).
    Instant,
    /// Updates take at least 2 cycles and flow through the per-entry
    /// PT update queues; predictions in the window read stale state
    /// (the realistic hardware path, and the paper's default).
    #[default]
    Pipelined,
}

/// Which admission predictor drives the organization (Figure 17's
/// ablations plus Figure 12b's random baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PredictorKind {
    /// The paper's two-level HRT + PT predictor.
    #[default]
    TwoLevel,
    /// One shared global history register indexing the PT (ablation).
    GlobalHistory,
    /// Per-tag saturating counters, no history (ablation).
    Bimodal,
    /// Admit with fixed probability `num/denom` (Figure 12b uses
    /// 60%).
    Random {
        /// PRNG seed.
        seed: u64,
        /// Probability numerator.
        num: u64,
        /// Probability denominator.
        denom: u64,
    },
    /// Always admit — the "i-Filter only" arm of Figures 3a/17.
    AlwaysAdmit,
    /// Never admit (blind filtering; §III's discarded strawman).
    NeverAdmit,
}

/// Full configuration of an [`crate::AcicIcache`].
///
/// Defaults reproduce Table I / Table IV: 16-entry i-Filter, 1024-entry
/// HRT with 4-bit histories, 16-entry PT with 5-bit counters, 10-slot
/// PT update queues, 256-entry CSHR in 8 sets with 12-bit partial
/// tags, over a 32 KB 8-way LRU i-cache.
///
/// # Examples
///
/// ```
/// use acic_core::AcicConfig;
///
/// let cfg = AcicConfig::default();
/// // Table I: 2.67 KB of new state.
/// assert_eq!(format!("{:.2}", cfg.storage_kib()), "2.67");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcicConfig {
    /// i-cache geometry (default: 32 KB, 8-way).
    pub icache: CacheGeometry,
    /// i-Filter slots (default 16; 0 disables the filter — the
    /// "no i-Filter" ablation).
    pub filter_entries: usize,
    /// HRT entries (default 1024).
    pub hrt_entries: usize,
    /// Bits per history register (default 4; the PT has
    /// `2^history_bits` entries).
    pub history_bits: u32,
    /// Bits per PT saturating counter (default 5).
    pub pt_counter_bits: u32,
    /// Slots per PT update queue (default 10).
    pub pt_queue_slots: usize,
    /// Total CSHR entries (default 256).
    pub cshr_entries: usize,
    /// CSHR sets (default 8; ways = entries / sets).
    pub cshr_sets: usize,
    /// Partial-tag width stored in the CSHR and hashed into the HRT
    /// (default 12).
    pub cshr_tag_bits: u32,
    /// Predictor variant.
    pub predictor: PredictorKind,
    /// Training-update timing.
    pub update_mode: UpdateMode,
}

impl Default for AcicConfig {
    fn default() -> Self {
        AcicConfig {
            icache: CacheGeometry::l1i_32k(),
            filter_entries: 16,
            hrt_entries: 1024,
            history_bits: 4,
            pt_counter_bits: 5,
            pt_queue_slots: 10,
            cshr_entries: 256,
            cshr_sets: 8,
            cshr_tag_bits: 12,
            predictor: PredictorKind::TwoLevel,
            update_mode: UpdateMode::Pipelined,
        }
    }
}

impl AcicConfig {
    /// Number of PT entries implied by the history width.
    pub fn pt_entries(&self) -> usize {
        1 << self.history_bits
    }

    /// CSHR associativity.
    pub fn cshr_ways(&self) -> usize {
        self.cshr_entries / self.cshr_sets
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (non-divisible CSHR sets,
    /// zero HRT, oversized fields).
    pub fn validate(&self) {
        assert!(
            self.hrt_entries.is_power_of_two(),
            "HRT entries must be a power of two"
        );
        assert!((1..=16).contains(&self.history_bits), "history bits 1..=16");
        assert!(
            (1..=16).contains(&self.pt_counter_bits),
            "counter bits 1..=16"
        );
        assert!(
            self.cshr_sets.is_power_of_two(),
            "CSHR sets must be a power of two"
        );
        assert_eq!(
            self.cshr_entries % self.cshr_sets,
            0,
            "CSHR entries must divide evenly into sets"
        );
        assert!(
            (1..=16).contains(&self.cshr_tag_bits),
            "CSHR tag bits 1..=16"
        );
    }

    /// i-Filter storage in bits: per entry, 58 tag bits + 1 valid +
    /// 4 LRU bits of metadata plus the 64 B instruction block
    /// (Table I).
    pub fn filter_bits(&self) -> u64 {
        let metadata = 58 + 1 + 4;
        self.filter_entries as u64 * (metadata + 64 * 8)
    }

    /// HRT storage in bits.
    pub fn hrt_bits(&self) -> u64 {
        self.hrt_entries as u64 * self.history_bits as u64
    }

    /// PT storage in bits.
    pub fn pt_bits(&self) -> u64 {
        self.pt_entries() as u64 * self.pt_counter_bits as u64
    }

    /// PT update-queue storage in bits: one queue per PT entry, each
    /// slot holding a PT index plus an increment/decrement bit.
    pub fn pt_queue_bits(&self) -> u64 {
        self.pt_entries() as u64 * self.pt_queue_slots as u64 * (self.history_bits as u64 + 1)
    }

    /// CSHR storage in bits: two partial tags, a valid bit and LRU
    /// bits per entry.
    pub fn cshr_bits(&self) -> u64 {
        let lru_bits = (self.cshr_ways() as u64)
            .next_power_of_two()
            .trailing_zeros() as u64;
        self.cshr_entries as u64 * (2 * self.cshr_tag_bits as u64 + 1 + lru_bits)
    }

    /// Total added storage in bits (Table I's bottom line).
    pub fn storage_bits(&self) -> u64 {
        self.filter_bits()
            + self.hrt_bits()
            + self.pt_bits()
            + self.pt_queue_bits()
            + self.cshr_bits()
    }

    /// Total added storage in KiB.
    pub fn storage_kib(&self) -> f64 {
        self.storage_bits() as f64 / 8.0 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_component_sizes() {
        let cfg = AcicConfig::default();
        cfg.validate();
        // Table I rows.
        assert_eq!(cfg.filter_bits(), 16 * (63 + 512)); // 1.123 KB
        assert!((cfg.filter_bits() as f64 / 8192.0 - 1.123).abs() < 0.001);
        assert_eq!(cfg.hrt_bits(), 4096); // 0.5 KB
        assert_eq!(cfg.pt_bits(), 80); // 10 B
        assert_eq!(cfg.pt_queue_bits(), 800); // 100 B
        assert_eq!(cfg.cshr_bits(), 256 * 30); // 0.9375 KB
        assert!((cfg.cshr_bits() as f64 / 8192.0 - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn table_one_total_is_2_67_kb() {
        let cfg = AcicConfig::default();
        assert!(
            (cfg.storage_kib() - 2.67).abs() < 0.01,
            "{}",
            cfg.storage_kib()
        );
    }

    #[test]
    fn pt_entries_follow_history_bits() {
        let mut cfg = AcicConfig::default();
        assert_eq!(cfg.pt_entries(), 16);
        cfg.history_bits = 8;
        assert_eq!(cfg.pt_entries(), 256);
    }

    #[test]
    fn cshr_ways() {
        let cfg = AcicConfig::default();
        assert_eq!(cfg.cshr_ways(), 32);
    }

    #[test]
    #[should_panic(expected = "CSHR entries must divide")]
    fn bad_cshr_split_panics() {
        let cfg = AcicConfig {
            cshr_entries: 100,
            cshr_sets: 8,
            ..AcicConfig::default()
        };
        cfg.validate();
    }
}

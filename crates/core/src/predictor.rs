//! The admission predictors (§III-A, Figure 4) and their update
//! pipeline (§III-C2, Figure 8).
//!
//! The paper's predictor is two-level, borrowed from Yeh & Patt branch
//! prediction: a History Register Table (HRT) of per-tag comparison
//! histories and a Pattern Table (PT) of saturating counters indexed
//! by the history pattern. Training outcomes arrive from CSHR
//! resolutions; in the realistic [`UpdateMode::Pipelined`] mode they
//! spend 2 cycles (HRT indexing, then PT update through a bounded
//! per-entry queue) before becoming visible, so predictions can read
//! slightly stale state — Figure 14 shows this costs almost nothing,
//! which this implementation reproduces.

use crate::config::{AcicConfig, PredictorKind, UpdateMode};
use acic_types::hash::{mix64, SplitMix64};
use acic_types::{Cycle, HistoryReg, SatCounter};
use std::collections::VecDeque;

/// Latency of a pipelined predictor update in cycles (§III-C2: "at
/// least 2 cycles are spent in updating HRT and PT").
const UPDATE_LATENCY: Cycle = 2;

/// A pending PT update flowing through one entry's update queue.
#[derive(Clone, Copy, Debug)]
struct PendingUpdate {
    apply_at: Cycle,
    increment: bool,
}

/// The paper's two-level HRT + PT admission predictor.
#[derive(Debug)]
pub struct TwoLevelPredictor {
    hrt: Vec<HistoryReg>,
    pt: Vec<SatCounter>,
    queues: Vec<VecDeque<PendingUpdate>>,
    queue_slots: usize,
    mode: UpdateMode,
    /// Last cycle each HRT entry was written (enforces the paper's
    /// "update each HRT entry for only one request per cycle").
    hrt_last_write: Vec<Cycle>,
    /// Updates dropped due to queue overflow or HRT write conflicts.
    pub dropped_updates: u64,
}

impl TwoLevelPredictor {
    /// Builds the predictor from a configuration.
    pub fn new(cfg: &AcicConfig) -> Self {
        TwoLevelPredictor {
            hrt: vec![HistoryReg::new(cfg.history_bits); cfg.hrt_entries],
            pt: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.pt_entries()],
            queues: vec![VecDeque::new(); cfg.pt_entries()],
            queue_slots: cfg.pt_queue_slots,
            mode: cfg.update_mode,
            hrt_last_write: vec![Cycle::MAX; cfg.hrt_entries],
            dropped_updates: 0,
        }
    }

    fn hrt_index(&self, ptag: u16) -> usize {
        (mix64(ptag as u64) as usize) & (self.hrt.len() - 1)
    }

    /// Predicts whether the i-Filter victim with partial tag `ptag`
    /// should be admitted.
    pub fn predict(&self, ptag: u16) -> bool {
        let pattern = self.hrt[self.hrt_index(ptag)].value() as usize;
        self.pt[pattern].is_high()
    }

    /// Trains with a resolved comparison: `victim_won` is true when
    /// the i-Filter victim was re-accessed before its contender.
    pub fn train(&mut self, ptag: u16, victim_won: bool, now: Cycle) {
        let idx = self.hrt_index(ptag);
        match self.mode {
            UpdateMode::Instant => {
                let pattern = self.hrt[idx].value() as usize;
                self.pt[pattern].update(victim_won);
                self.hrt[idx].push(victim_won);
            }
            UpdateMode::Pipelined => {
                // Only one HRT write per entry per cycle; extra
                // requests this cycle are ignored (§III-C2).
                if self.hrt_last_write[idx] == now {
                    self.dropped_updates += 1;
                    return;
                }
                self.hrt_last_write[idx] = now;
                // The *current* history value indexes the PT update
                // (read in cycle 1, PT written in cycle 2 at the
                // earliest, later if queued behind other updates).
                let pattern = self.hrt[idx].value() as usize;
                if self.queues[pattern].len() >= self.queue_slots {
                    self.dropped_updates += 1;
                } else {
                    self.queues[pattern].push_back(PendingUpdate {
                        apply_at: now + UPDATE_LATENCY,
                        increment: victim_won,
                    });
                }
                // The history register itself is updated right after
                // its value is handed to the PT updater.
                self.hrt[idx].push(victim_won);
            }
        }
    }

    /// Advances the update pipeline: each PT entry's queue head is
    /// applied once its latency has elapsed (one pop per entry per
    /// cycle, as in Figure 8).
    pub fn tick(&mut self, now: Cycle) {
        if self.mode == UpdateMode::Instant {
            return;
        }
        for (pattern, queue) in self.queues.iter_mut().enumerate() {
            if let Some(head) = queue.front() {
                if head.apply_at <= now {
                    let upd = queue.pop_front().expect("head exists");
                    self.pt[pattern].update(upd.increment);
                }
            }
        }
    }

    /// Drains all pending updates (end-of-simulation bookkeeping).
    pub fn flush(&mut self) {
        for (pattern, queue) in self.queues.iter_mut().enumerate() {
            while let Some(upd) = queue.pop_front() {
                self.pt[pattern].update(upd.increment);
            }
        }
    }

    /// PT counter value for a pattern (test hook).
    pub fn pt_value(&self, pattern: usize) -> u16 {
        self.pt[pattern].value()
    }

    /// History value currently associated with `ptag` (test hook).
    pub fn history_of(&self, ptag: u16) -> u32 {
        self.hrt[self.hrt_index(ptag)].value()
    }
}

/// Runtime-selectable admission predictor (Figure 17 ablations).
#[derive(Debug)]
pub enum AdmissionPredictor {
    /// The paper's two-level predictor.
    TwoLevel(TwoLevelPredictor),
    /// A single global history register indexing the PT.
    GlobalHistory {
        /// Shared history register.
        history: HistoryReg,
        /// Pattern table.
        pt: Vec<SatCounter>,
    },
    /// Per-tag bimodal counters, no history.
    Bimodal {
        /// Counter table indexed by hashed partial tag.
        table: Vec<SatCounter>,
    },
    /// Admit with fixed probability.
    Random {
        /// Deterministic PRNG.
        rng: SplitMix64,
        /// Probability numerator.
        num: u64,
        /// Probability denominator.
        denom: u64,
    },
    /// Always admit (i-Filter-only arm).
    Always,
    /// Never admit.
    Never,
}

impl AdmissionPredictor {
    /// Builds the predictor selected by the configuration.
    pub fn new(cfg: &AcicConfig) -> Self {
        match cfg.predictor {
            PredictorKind::TwoLevel => AdmissionPredictor::TwoLevel(TwoLevelPredictor::new(cfg)),
            PredictorKind::GlobalHistory => AdmissionPredictor::GlobalHistory {
                history: HistoryReg::new(cfg.history_bits),
                pt: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.pt_entries()],
            },
            PredictorKind::Bimodal => AdmissionPredictor::Bimodal {
                table: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.hrt_entries],
            },
            PredictorKind::Random { seed, num, denom } => AdmissionPredictor::Random {
                rng: SplitMix64::new(seed),
                num,
                denom,
            },
            PredictorKind::AlwaysAdmit => AdmissionPredictor::Always,
            PredictorKind::NeverAdmit => AdmissionPredictor::Never,
        }
    }

    /// Predicts admission for a victim's partial tag.
    pub fn predict(&mut self, ptag: u16) -> bool {
        match self {
            AdmissionPredictor::TwoLevel(p) => p.predict(ptag),
            AdmissionPredictor::GlobalHistory { history, pt } => {
                pt[history.value() as usize].is_high()
            }
            AdmissionPredictor::Bimodal { table } => {
                let idx = (mix64(ptag as u64) as usize) & (table.len() - 1);
                table[idx].is_high()
            }
            AdmissionPredictor::Random { rng, num, denom } => rng.chance(*num, *denom),
            AdmissionPredictor::Always => true,
            AdmissionPredictor::Never => false,
        }
    }

    /// Trains with a resolved comparison outcome.
    pub fn train(&mut self, ptag: u16, victim_won: bool, now: Cycle) {
        match self {
            AdmissionPredictor::TwoLevel(p) => p.train(ptag, victim_won, now),
            AdmissionPredictor::GlobalHistory { history, pt } => {
                pt[history.value() as usize].update(victim_won);
                history.push(victim_won);
            }
            AdmissionPredictor::Bimodal { table } => {
                let idx = (mix64(ptag as u64) as usize) & (table.len() - 1);
                table[idx].update(victim_won);
            }
            AdmissionPredictor::Random { .. }
            | AdmissionPredictor::Always
            | AdmissionPredictor::Never => {}
        }
    }

    /// Advances pipelined updates.
    pub fn tick(&mut self, now: Cycle) {
        if let AdmissionPredictor::TwoLevel(p) = self {
            p.tick(now);
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPredictor::TwoLevel(_) => "two-level",
            AdmissionPredictor::GlobalHistory { .. } => "global-history",
            AdmissionPredictor::Bimodal { .. } => "bimodal",
            AdmissionPredictor::Random { .. } => "random",
            AdmissionPredictor::Always => "always",
            AdmissionPredictor::Never => "never",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_cfg() -> AcicConfig {
        AcicConfig {
            update_mode: UpdateMode::Instant,
            ..AcicConfig::default()
        }
    }

    #[test]
    fn learns_consistent_winner() {
        let mut p = TwoLevelPredictor::new(&instant_cfg());
        let ptag = 0x123;
        for _ in 0..40 {
            p.train(ptag, false, 0);
        }
        assert!(!p.predict(ptag), "consistent losses should predict bypass");
        for _ in 0..80 {
            p.train(ptag, true, 0);
        }
        assert!(p.predict(ptag), "consistent wins should predict admit");
    }

    #[test]
    fn history_pattern_distinguishes_alternation() {
        // A tag that strictly alternates win/lose: with 4-bit history,
        // the PT learns pattern 0101 -> lose next, 1010 -> win next.
        let mut p = TwoLevelPredictor::new(&instant_cfg());
        let ptag = 0x456;
        let mut outcome = true;
        for _ in 0..200 {
            p.train(ptag, outcome, 0);
            outcome = !outcome;
        }
        // After training, the prediction should match the alternation:
        // history ...0101 (last = 1? depends) — check both phases agree
        // with the next outcome for 20 further steps.
        let mut correct = 0;
        for _ in 0..20 {
            if p.predict(ptag) == outcome {
                correct += 1;
            }
            p.train(ptag, outcome, 0);
            outcome = !outcome;
        }
        assert!(
            correct >= 18,
            "two-level should track alternation: {correct}/20"
        );
    }

    #[test]
    fn pipelined_updates_are_delayed() {
        let cfg = AcicConfig::default(); // pipelined
        let mut p = TwoLevelPredictor::new(&cfg);
        let ptag = 0x789;
        let pattern = p.history_of(ptag) as usize;
        let before = p.pt_value(pattern);
        p.train(ptag, false, 10);
        // Not yet applied.
        assert_eq!(p.pt_value(pattern), before);
        p.tick(11);
        assert_eq!(p.pt_value(pattern), before, "needs 2 cycles");
        p.tick(12);
        assert_eq!(p.pt_value(pattern), before - 1);
    }

    #[test]
    fn queue_overflow_drops_updates() {
        let cfg = AcicConfig {
            pt_queue_slots: 2,
            ..AcicConfig::default()
        };
        let mut p = TwoLevelPredictor::new(&cfg);
        // Different tags, same history pattern (all zeros) -> same
        // queue; three updates in distinct cycles without ticking.
        p.train(1, true, 0);
        p.train(2, true, 1);
        p.train(3, true, 2);
        assert_eq!(p.dropped_updates, 1);
    }

    #[test]
    fn hrt_single_write_per_cycle() {
        let mut p = TwoLevelPredictor::new(&AcicConfig::default());
        // Same tag trained twice in the same cycle: second ignored.
        p.train(7, true, 5);
        p.train(7, true, 5);
        assert_eq!(p.dropped_updates, 1);
    }

    #[test]
    fn flush_applies_everything() {
        let mut p = TwoLevelPredictor::new(&AcicConfig::default());
        let pattern = p.history_of(42) as usize;
        let before = p.pt_value(pattern);
        p.train(42, true, 0);
        p.flush();
        assert_eq!(p.pt_value(pattern), before + 1);
    }

    #[test]
    fn instant_equals_pipelined_after_drain() {
        // The same training sequence (one update per cycle, ticking
        // every cycle) must leave both modes in the same PT state.
        let mut inst = TwoLevelPredictor::new(&instant_cfg());
        let mut pipe = TwoLevelPredictor::new(&AcicConfig::default());
        let mut rng = SplitMix64::new(3);
        for now in 0..500u64 {
            let ptag = (rng.next_below(50)) as u16;
            let outcome = rng.chance(1, 2);
            inst.train(ptag, outcome, now);
            pipe.train(ptag, outcome, now);
            pipe.tick(now);
        }
        pipe.flush();
        for pattern in 0..16 {
            assert_eq!(
                inst.pt_value(pattern),
                pipe.pt_value(pattern),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn ablation_predictors_respond() {
        let cfg = AcicConfig {
            predictor: PredictorKind::Bimodal,
            ..AcicConfig::default()
        };
        let mut p = AdmissionPredictor::new(&cfg);
        for _ in 0..40 {
            p.train(9, false, 0);
        }
        assert!(!p.predict(9));

        let cfg = AcicConfig {
            predictor: PredictorKind::GlobalHistory,
            ..AcicConfig::default()
        };
        let mut p = AdmissionPredictor::new(&cfg);
        for _ in 0..40 {
            p.train(9, false, 0);
        }
        assert!(!p.predict(123), "global history is tag-independent");
    }

    #[test]
    fn random_predictor_rate() {
        let cfg = AcicConfig {
            predictor: PredictorKind::Random {
                seed: 1,
                num: 3,
                denom: 5,
            },
            ..AcicConfig::default()
        };
        let mut p = AdmissionPredictor::new(&cfg);
        let admitted = (0..10_000).filter(|_| p.predict(0)).count();
        assert!((5700..=6300).contains(&admitted), "admitted = {admitted}");
    }
}

//! The admission predictors (§III-A, Figure 4) and their update
//! pipeline (§III-C2, Figure 8).
//!
//! The paper's predictor is two-level, borrowed from Yeh & Patt branch
//! prediction: a History Register Table (HRT) of per-tag comparison
//! histories and a Pattern Table (PT) of saturating counters indexed
//! by the history pattern. Training outcomes arrive from CSHR
//! resolutions; in the realistic [`UpdateMode::Pipelined`] mode they
//! spend 2 cycles (HRT indexing, then PT update through a bounded
//! per-entry queue) before becoming visible, so predictions can read
//! slightly stale state — Figure 14 shows this costs almost nothing,
//! which this implementation reproduces.
//!
//! # Hot-path layout
//!
//! [`TwoLevelPredictor::tick`] runs once per simulated cycle (timing)
//! or block access (functional). The PT update queues are therefore
//! flat fixed-capacity ring buffers carved out of one contiguous
//! allocation (`queue_slots` slots per PT entry) instead of per-entry
//! `VecDeque`s, and the predictor tracks the total number of pending
//! updates plus the earliest due cycle — the overwhelmingly common
//! "nothing is due" tick is a two-compare early exit that never walks
//! the queues. [`LegacyTwoLevelPredictor`] retains the `VecDeque`
//! implementation as the behavioral reference, pinned by an
//! equivalence proptest (`tests/hot_structs_equivalence.rs`).

use crate::config::{AcicConfig, PredictorKind, UpdateMode};
use acic_types::hash::{mix64, SplitMix64};
use acic_types::{Cycle, HistoryReg, SatCounter};
use std::collections::VecDeque;

/// Latency of a pipelined predictor update in cycles (§III-C2: "at
/// least 2 cycles are spent in updating HRT and PT").
const UPDATE_LATENCY: Cycle = 2;

/// A pending PT update flowing through one entry's update queue.
#[derive(Clone, Copy, Debug)]
struct PendingUpdate {
    apply_at: Cycle,
    increment: bool,
}

impl PendingUpdate {
    const EMPTY: PendingUpdate = PendingUpdate {
        apply_at: 0,
        increment: false,
    };
}

/// The paper's two-level HRT + PT admission predictor, with the PT
/// update queues packed into one flat ring-buffer arena.
#[derive(Debug)]
pub struct TwoLevelPredictor {
    hrt: Vec<HistoryReg>,
    pt: Vec<SatCounter>,
    /// Ring-buffer arena: `queue_slots` contiguous slots per PT entry.
    ring: Vec<PendingUpdate>,
    /// Per-entry ring head index (slot of the oldest pending update).
    head: Vec<u8>,
    /// Per-entry ring occupancy.
    qlen: Vec<u8>,
    /// Pending updates across all queues — lets `tick` exit without
    /// touching the arena when the pipeline is drained.
    pending_total: u32,
    /// Earliest `apply_at` among all queue heads (`Cycle::MAX` when
    /// drained); a tick before this cycle cannot apply anything.
    earliest_apply: Cycle,
    queue_slots: usize,
    mode: UpdateMode,
    /// Last cycle each HRT entry was written (enforces the paper's
    /// "update each HRT entry for only one request per cycle").
    hrt_last_write: Vec<Cycle>,
    /// Updates dropped due to queue overflow or HRT write conflicts.
    pub dropped_updates: u64,
}

impl TwoLevelPredictor {
    /// Builds the predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `pt_queue_slots` exceeds the ring occupancy counter's
    /// range (255 — the paper uses 10).
    pub fn new(cfg: &AcicConfig) -> Self {
        assert!(
            cfg.pt_queue_slots <= u8::MAX as usize,
            "pt_queue_slots {} exceeds ring counter range",
            cfg.pt_queue_slots
        );
        TwoLevelPredictor {
            hrt: vec![HistoryReg::new(cfg.history_bits); cfg.hrt_entries],
            pt: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.pt_entries()],
            ring: vec![PendingUpdate::EMPTY; cfg.pt_entries() * cfg.pt_queue_slots],
            head: vec![0; cfg.pt_entries()],
            qlen: vec![0; cfg.pt_entries()],
            pending_total: 0,
            earliest_apply: Cycle::MAX,
            queue_slots: cfg.pt_queue_slots,
            mode: cfg.update_mode,
            hrt_last_write: vec![Cycle::MAX; cfg.hrt_entries],
            dropped_updates: 0,
        }
    }

    fn hrt_index(&self, ptag: u16) -> usize {
        (mix64(ptag as u64) as usize) & (self.hrt.len() - 1)
    }

    /// Predicts whether the i-Filter victim with partial tag `ptag`
    /// should be admitted.
    pub fn predict(&self, ptag: u16) -> bool {
        let pattern = self.hrt[self.hrt_index(ptag)].value() as usize;
        self.pt[pattern].is_high()
    }

    /// Trains with a resolved comparison: `victim_won` is true when
    /// the i-Filter victim was re-accessed before its contender.
    pub fn train(&mut self, ptag: u16, victim_won: bool, now: Cycle) {
        let idx = self.hrt_index(ptag);
        match self.mode {
            UpdateMode::Instant => {
                let pattern = self.hrt[idx].value() as usize;
                self.pt[pattern].update(victim_won);
                self.hrt[idx].push(victim_won);
            }
            UpdateMode::Pipelined => {
                // Only one HRT write per entry per cycle; extra
                // requests this cycle are ignored (§III-C2).
                if self.hrt_last_write[idx] == now {
                    self.dropped_updates += 1;
                    return;
                }
                self.hrt_last_write[idx] = now;
                // The *current* history value indexes the PT update
                // (read in cycle 1, PT written in cycle 2 at the
                // earliest, later if queued behind other updates).
                let pattern = self.hrt[idx].value() as usize;
                if self.qlen[pattern] as usize >= self.queue_slots {
                    self.dropped_updates += 1;
                } else {
                    let slot = (self.head[pattern] as usize + self.qlen[pattern] as usize)
                        % self.queue_slots;
                    let apply_at = now + UPDATE_LATENCY;
                    self.ring[pattern * self.queue_slots + slot] = PendingUpdate {
                        apply_at,
                        increment: victim_won,
                    };
                    self.qlen[pattern] += 1;
                    self.pending_total += 1;
                    self.earliest_apply = self.earliest_apply.min(apply_at);
                }
                // The history register itself is updated right after
                // its value is handed to the PT updater.
                self.hrt[idx].push(victim_won);
            }
        }
    }

    /// Advances the update pipeline: each PT entry's queue head is
    /// applied once its latency has elapsed (one pop per entry per
    /// cycle, as in Figure 8). When nothing can be due — the usual
    /// case on both simulation hot loops — this returns after two
    /// compares without touching the queues.
    #[inline]
    pub fn tick(&mut self, now: Cycle) {
        if self.pending_total == 0 || now < self.earliest_apply {
            return;
        }
        self.tick_slow(now);
    }

    fn tick_slow(&mut self, now: Cycle) {
        let mut next_earliest = Cycle::MAX;
        for pattern in 0..self.pt.len() {
            if self.qlen[pattern] == 0 {
                continue;
            }
            let base = pattern * self.queue_slots;
            let h = self.head[pattern] as usize;
            let upd = self.ring[base + h];
            if upd.apply_at <= now {
                self.pt[pattern].update(upd.increment);
                self.head[pattern] = ((h + 1) % self.queue_slots) as u8;
                self.qlen[pattern] -= 1;
                self.pending_total -= 1;
                if self.qlen[pattern] > 0 {
                    let nh = self.head[pattern] as usize;
                    next_earliest = next_earliest.min(self.ring[base + nh].apply_at);
                }
            } else {
                next_earliest = next_earliest.min(upd.apply_at);
            }
        }
        self.earliest_apply = next_earliest;
    }

    /// Earliest cycle at which a [`TwoLevelPredictor::tick`] can apply
    /// a pending update, or `None` when the pipeline is drained (every
    /// tick is then a no-op). `tick_slow` can leave this at or before
    /// the current cycle when a queue held more than one due update —
    /// the one-pop-per-entry-per-cycle limit means the next cycle's
    /// tick still has work to do.
    pub fn next_due(&self) -> Option<Cycle> {
        (self.pending_total > 0).then_some(self.earliest_apply)
    }

    /// Drains all pending updates (end-of-simulation bookkeeping).
    pub fn flush(&mut self) {
        for pattern in 0..self.pt.len() {
            let base = pattern * self.queue_slots;
            while self.qlen[pattern] > 0 {
                let h = self.head[pattern] as usize;
                let upd = self.ring[base + h];
                self.pt[pattern].update(upd.increment);
                self.head[pattern] = ((h + 1) % self.queue_slots) as u8;
                self.qlen[pattern] -= 1;
                self.pending_total -= 1;
            }
        }
        self.earliest_apply = Cycle::MAX;
    }

    /// PT counter value for a pattern (test hook).
    pub fn pt_value(&self, pattern: usize) -> u16 {
        self.pt[pattern].value()
    }

    /// History value currently associated with `ptag` (test hook).
    pub fn history_of(&self, ptag: u16) -> u32 {
        self.hrt[self.hrt_index(ptag)].value()
    }
}

/// The original `VecDeque`-queued two-level predictor, retained as the
/// behavioral reference for the ring-buffered [`TwoLevelPredictor`]
/// (equivalence-pinned by proptest, measured against by the
/// `hot_structs` bench group).
#[derive(Debug)]
pub struct LegacyTwoLevelPredictor {
    hrt: Vec<HistoryReg>,
    pt: Vec<SatCounter>,
    queues: Vec<VecDeque<PendingUpdate>>,
    queue_slots: usize,
    mode: UpdateMode,
    hrt_last_write: Vec<Cycle>,
    /// Updates dropped due to queue overflow or HRT write conflicts.
    pub dropped_updates: u64,
}

impl LegacyTwoLevelPredictor {
    /// Builds the reference predictor from a configuration.
    pub fn new(cfg: &AcicConfig) -> Self {
        LegacyTwoLevelPredictor {
            hrt: vec![HistoryReg::new(cfg.history_bits); cfg.hrt_entries],
            pt: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.pt_entries()],
            queues: vec![VecDeque::new(); cfg.pt_entries()],
            queue_slots: cfg.pt_queue_slots,
            mode: cfg.update_mode,
            hrt_last_write: vec![Cycle::MAX; cfg.hrt_entries],
            dropped_updates: 0,
        }
    }

    fn hrt_index(&self, ptag: u16) -> usize {
        (mix64(ptag as u64) as usize) & (self.hrt.len() - 1)
    }

    /// Predicts admission for `ptag` (same contract as
    /// [`TwoLevelPredictor::predict`]).
    pub fn predict(&self, ptag: u16) -> bool {
        let pattern = self.hrt[self.hrt_index(ptag)].value() as usize;
        self.pt[pattern].is_high()
    }

    /// Trains with a resolved comparison (same contract as
    /// [`TwoLevelPredictor::train`]).
    pub fn train(&mut self, ptag: u16, victim_won: bool, now: Cycle) {
        let idx = self.hrt_index(ptag);
        match self.mode {
            UpdateMode::Instant => {
                let pattern = self.hrt[idx].value() as usize;
                self.pt[pattern].update(victim_won);
                self.hrt[idx].push(victim_won);
            }
            UpdateMode::Pipelined => {
                if self.hrt_last_write[idx] == now {
                    self.dropped_updates += 1;
                    return;
                }
                self.hrt_last_write[idx] = now;
                let pattern = self.hrt[idx].value() as usize;
                if self.queues[pattern].len() >= self.queue_slots {
                    self.dropped_updates += 1;
                } else {
                    self.queues[pattern].push_back(PendingUpdate {
                        apply_at: now + UPDATE_LATENCY,
                        increment: victim_won,
                    });
                }
                self.hrt[idx].push(victim_won);
            }
        }
    }

    /// Advances the update pipeline (same contract as
    /// [`TwoLevelPredictor::tick`]).
    pub fn tick(&mut self, now: Cycle) {
        if self.mode == UpdateMode::Instant {
            return;
        }
        for (pattern, queue) in self.queues.iter_mut().enumerate() {
            if let Some(head) = queue.front() {
                if head.apply_at <= now {
                    let upd = queue.pop_front().expect("head exists");
                    self.pt[pattern].update(upd.increment);
                }
            }
        }
    }

    /// Drains all pending updates (same contract as
    /// [`TwoLevelPredictor::flush`]).
    pub fn flush(&mut self) {
        for (pattern, queue) in self.queues.iter_mut().enumerate() {
            while let Some(upd) = queue.pop_front() {
                self.pt[pattern].update(upd.increment);
            }
        }
    }

    /// PT counter value for a pattern (test hook).
    pub fn pt_value(&self, pattern: usize) -> u16 {
        self.pt[pattern].value()
    }

    /// History value currently associated with `ptag` (test hook).
    pub fn history_of(&self, ptag: u16) -> u32 {
        self.hrt[self.hrt_index(ptag)].value()
    }
}

/// Runtime-selectable admission predictor (Figure 17 ablations).
#[derive(Debug)]
pub enum AdmissionPredictor {
    /// The paper's two-level predictor.
    TwoLevel(TwoLevelPredictor),
    /// A single global history register indexing the PT.
    GlobalHistory {
        /// Shared history register.
        history: HistoryReg,
        /// Pattern table.
        pt: Vec<SatCounter>,
    },
    /// Per-tag bimodal counters, no history.
    Bimodal {
        /// Counter table indexed by hashed partial tag.
        table: Vec<SatCounter>,
    },
    /// Admit with fixed probability.
    Random {
        /// Deterministic PRNG.
        rng: SplitMix64,
        /// Probability numerator.
        num: u64,
        /// Probability denominator.
        denom: u64,
    },
    /// Always admit (i-Filter-only arm).
    Always,
    /// Never admit.
    Never,
}

impl AdmissionPredictor {
    /// Builds the predictor selected by the configuration.
    pub fn new(cfg: &AcicConfig) -> Self {
        match cfg.predictor {
            PredictorKind::TwoLevel => AdmissionPredictor::TwoLevel(TwoLevelPredictor::new(cfg)),
            PredictorKind::GlobalHistory => AdmissionPredictor::GlobalHistory {
                history: HistoryReg::new(cfg.history_bits),
                pt: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.pt_entries()],
            },
            PredictorKind::Bimodal => AdmissionPredictor::Bimodal {
                table: vec![SatCounter::new_weakly_high(cfg.pt_counter_bits); cfg.hrt_entries],
            },
            PredictorKind::Random { seed, num, denom } => AdmissionPredictor::Random {
                rng: SplitMix64::new(seed),
                num,
                denom,
            },
            PredictorKind::AlwaysAdmit => AdmissionPredictor::Always,
            PredictorKind::NeverAdmit => AdmissionPredictor::Never,
        }
    }

    /// Predicts admission for a victim's partial tag.
    pub fn predict(&mut self, ptag: u16) -> bool {
        match self {
            AdmissionPredictor::TwoLevel(p) => p.predict(ptag),
            AdmissionPredictor::GlobalHistory { history, pt } => {
                pt[history.value() as usize].is_high()
            }
            AdmissionPredictor::Bimodal { table } => {
                let idx = (mix64(ptag as u64) as usize) & (table.len() - 1);
                table[idx].is_high()
            }
            AdmissionPredictor::Random { rng, num, denom } => rng.chance(*num, *denom),
            AdmissionPredictor::Always => true,
            AdmissionPredictor::Never => false,
        }
    }

    /// Trains with a resolved comparison outcome.
    pub fn train(&mut self, ptag: u16, victim_won: bool, now: Cycle) {
        match self {
            AdmissionPredictor::TwoLevel(p) => p.train(ptag, victim_won, now),
            AdmissionPredictor::GlobalHistory { history, pt } => {
                pt[history.value() as usize].update(victim_won);
                history.push(victim_won);
            }
            AdmissionPredictor::Bimodal { table } => {
                let idx = (mix64(ptag as u64) as usize) & (table.len() - 1);
                table[idx].update(victim_won);
            }
            AdmissionPredictor::Random { .. }
            | AdmissionPredictor::Always
            | AdmissionPredictor::Never => {}
        }
    }

    /// Advances pipelined updates.
    #[inline]
    pub fn tick(&mut self, now: Cycle) {
        if let AdmissionPredictor::TwoLevel(p) = self {
            p.tick(now);
        }
    }

    /// Earliest cycle at which [`AdmissionPredictor::tick`] can do
    /// state-changing work, or `None` when every tick is a no-op (the
    /// non-pipelined ablation predictors never tick).
    pub fn next_due(&self) -> Option<Cycle> {
        match self {
            AdmissionPredictor::TwoLevel(p) => p.next_due(),
            _ => None,
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPredictor::TwoLevel(_) => "two-level",
            AdmissionPredictor::GlobalHistory { .. } => "global-history",
            AdmissionPredictor::Bimodal { .. } => "bimodal",
            AdmissionPredictor::Random { .. } => "random",
            AdmissionPredictor::Always => "always",
            AdmissionPredictor::Never => "never",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_cfg() -> AcicConfig {
        AcicConfig {
            update_mode: UpdateMode::Instant,
            ..AcicConfig::default()
        }
    }

    #[test]
    fn learns_consistent_winner() {
        let mut p = TwoLevelPredictor::new(&instant_cfg());
        let ptag = 0x123;
        for _ in 0..40 {
            p.train(ptag, false, 0);
        }
        assert!(!p.predict(ptag), "consistent losses should predict bypass");
        for _ in 0..80 {
            p.train(ptag, true, 0);
        }
        assert!(p.predict(ptag), "consistent wins should predict admit");
    }

    #[test]
    fn history_pattern_distinguishes_alternation() {
        // A tag that strictly alternates win/lose: with 4-bit history,
        // the PT learns pattern 0101 -> lose next, 1010 -> win next.
        let mut p = TwoLevelPredictor::new(&instant_cfg());
        let ptag = 0x456;
        let mut outcome = true;
        for _ in 0..200 {
            p.train(ptag, outcome, 0);
            outcome = !outcome;
        }
        // After training, the prediction should match the alternation:
        // history ...0101 (last = 1? depends) — check both phases agree
        // with the next outcome for 20 further steps.
        let mut correct = 0;
        for _ in 0..20 {
            if p.predict(ptag) == outcome {
                correct += 1;
            }
            p.train(ptag, outcome, 0);
            outcome = !outcome;
        }
        assert!(
            correct >= 18,
            "two-level should track alternation: {correct}/20"
        );
    }

    #[test]
    fn pipelined_updates_are_delayed() {
        let cfg = AcicConfig::default(); // pipelined
        let mut p = TwoLevelPredictor::new(&cfg);
        let ptag = 0x789;
        let pattern = p.history_of(ptag) as usize;
        let before = p.pt_value(pattern);
        p.train(ptag, false, 10);
        // Not yet applied.
        assert_eq!(p.pt_value(pattern), before);
        p.tick(11);
        assert_eq!(p.pt_value(pattern), before, "needs 2 cycles");
        p.tick(12);
        assert_eq!(p.pt_value(pattern), before - 1);
    }

    #[test]
    fn queue_overflow_drops_updates() {
        let cfg = AcicConfig {
            pt_queue_slots: 2,
            ..AcicConfig::default()
        };
        let mut p = TwoLevelPredictor::new(&cfg);
        // Different tags, same history pattern (all zeros) -> same
        // queue; three updates in distinct cycles without ticking.
        p.train(1, true, 0);
        p.train(2, true, 1);
        p.train(3, true, 2);
        assert_eq!(p.dropped_updates, 1);
    }

    #[test]
    fn ring_wraps_across_many_trains_and_ticks() {
        // Force the ring head around its capacity several times: one
        // update per cycle with a tick each cycle keeps occupancy low
        // while the head index wraps repeatedly.
        let cfg = AcicConfig {
            pt_queue_slots: 3,
            ..AcicConfig::default()
        };
        let mut p = TwoLevelPredictor::new(&cfg);
        let mut legacy = LegacyTwoLevelPredictor::new(&cfg);
        for now in 0..200u64 {
            let tag = (now % 17) as u16;
            let won = now % 3 == 0;
            p.train(tag, won, now);
            legacy.train(tag, won, now);
            p.tick(now);
            legacy.tick(now);
        }
        p.flush();
        legacy.flush();
        for pattern in 0..16 {
            assert_eq!(p.pt_value(pattern), legacy.pt_value(pattern));
        }
        assert_eq!(p.dropped_updates, legacy.dropped_updates);
    }

    #[test]
    fn hrt_single_write_per_cycle() {
        let mut p = TwoLevelPredictor::new(&AcicConfig::default());
        // Same tag trained twice in the same cycle: second ignored.
        p.train(7, true, 5);
        p.train(7, true, 5);
        assert_eq!(p.dropped_updates, 1);
    }

    #[test]
    fn flush_applies_everything() {
        let mut p = TwoLevelPredictor::new(&AcicConfig::default());
        let pattern = p.history_of(42) as usize;
        let before = p.pt_value(pattern);
        p.train(42, true, 0);
        p.flush();
        assert_eq!(p.pt_value(pattern), before + 1);
    }

    #[test]
    fn instant_equals_pipelined_after_drain() {
        // The same training sequence (one update per cycle, ticking
        // every cycle) must leave both modes in the same PT state.
        let mut inst = TwoLevelPredictor::new(&instant_cfg());
        let mut pipe = TwoLevelPredictor::new(&AcicConfig::default());
        let mut rng = SplitMix64::new(3);
        for now in 0..500u64 {
            let ptag = (rng.next_below(50)) as u16;
            let outcome = rng.chance(1, 2);
            inst.train(ptag, outcome, now);
            pipe.train(ptag, outcome, now);
            pipe.tick(now);
        }
        pipe.flush();
        for pattern in 0..16 {
            assert_eq!(
                inst.pt_value(pattern),
                pipe.pt_value(pattern),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn ablation_predictors_respond() {
        let cfg = AcicConfig {
            predictor: PredictorKind::Bimodal,
            ..AcicConfig::default()
        };
        let mut p = AdmissionPredictor::new(&cfg);
        for _ in 0..40 {
            p.train(9, false, 0);
        }
        assert!(!p.predict(9));

        let cfg = AcicConfig {
            predictor: PredictorKind::GlobalHistory,
            ..AcicConfig::default()
        };
        let mut p = AdmissionPredictor::new(&cfg);
        for _ in 0..40 {
            p.train(9, false, 0);
        }
        assert!(!p.predict(123), "global history is tag-independent");
    }

    #[test]
    fn random_predictor_rate() {
        let cfg = AcicConfig {
            predictor: PredictorKind::Random {
                seed: 1,
                num: 3,
                denom: 5,
            },
            ..AcicConfig::default()
        };
        let mut p = AdmissionPredictor::new(&cfg);
        let admitted = (0..10_000).filter(|_| p.predict(0)).count();
        assert!((5700..=6300).contains(&admitted), "admitted = {admitted}");
    }
}

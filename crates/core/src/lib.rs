//! ACIC — the Admission-Controlled Instruction Cache (HPCA 2023).
//!
//! This crate implements the paper's contribution:
//!
//! * [`IFilter`] — a 16-entry fully-associative buffer that absorbs
//!   the spatial / short-term-temporal *burst* of accesses to an
//!   instruction block (§II).
//! * [`TwoLevelPredictor`] — the HRT + PT admission predictor (§III-A):
//!   a 1024-entry History Register Table of 4-bit comparison histories
//!   indexed by a hash of the block's partial tag, and a 16-entry
//!   Pattern Table of 5-bit saturating counters indexed by the history
//!   pattern, with optional pipelined (2-cycle + update-queue) training
//!   (§III-C2).
//! * [`Cshr`] — Comparison Status Holding Registers (§III-B): a
//!   256-entry, 8-set x 32-way structure of (i-Filter victim,
//!   i-cache contender) partial-tag pairs whose resolution — which
//!   block gets fetched again first — trains the predictor.
//! * [`AcicIcache`] — the composed organization implementing
//!   [`acic_cache::IcacheContents`], including the ablation variants of
//!   Figure 17 (no filter, filter-only, global-history predictor,
//!   bimodal predictor) and the oracle-instrumented accuracy
//!   accounting of Figure 12a.
//!
//! # Examples
//!
//! ```
//! use acic_cache::{AccessCtx, IcacheContents};
//! use acic_core::{AcicConfig, AcicIcache};
//! use acic_types::BlockAddr;
//!
//! let mut icache = AcicIcache::new(AcicConfig::default());
//! let ctx = AccessCtx::demand(BlockAddr::new(7), 0);
//! assert!(!icache.access(&ctx).hit);
//! icache.fill(&ctx); // lands in the i-Filter first
//! assert!(icache.access(&AccessCtx::demand(BlockAddr::new(7), 1)).hit);
//! ```

pub mod acic;
pub mod config;
pub mod cshr;
pub mod filter;
pub mod filtered;
pub mod predictor;

pub use acic::{AcicIcache, AcicStats};
pub use config::{AcicConfig, PredictorKind, UpdateMode};
pub use cshr::{Cshr, CshrStats, LegacyCshr, Resolution, ResolutionBuf, UnboundedCshr};
pub use filter::IFilter;
pub use filtered::FilteredIcache;
pub use predictor::{AdmissionPredictor, LegacyTwoLevelPredictor, TwoLevelPredictor};

/// Computes the `tag_bits`-bit partial tag of a block identity
/// (§III-C1: CSHR stores 12-bit partial tags, and the HRT is indexed
/// by hashing the partial tag).
///
/// The hash covers the ASID-tagged identity, so admission learning is
/// per-tenant: two tenants' overlapping virtual addresses train
/// separate HRT histories. For the host space (ASID 0) the tag equals
/// the pre-ASID value bit for bit.
#[inline]
pub fn partial_tag(block: acic_types::TaggedBlock, tag_bits: u32) -> u16 {
    acic_types::hash::fold(acic_types::hash::mix64(block.ident()), tag_bits) as u16
}

//! i-Filter + generic admission policy — the comparison organizations
//! of Figure 3a and Table IV that share ACIC's filter but not its
//! predictor: always-insert ("i-Filter only"), access-count
//! comparison, and oracle OPT-bypass.

use crate::filter::IFilter;
use acic_cache::bypass::AdmissionPolicy;
use acic_cache::policy::PolicyKind;
use acic_cache::{
    AccessCtx, AccessOutcome, CacheGeometry, CacheStats, IcacheContents, SetAssocCache,
};
use acic_types::TaggedBlock;

/// An i-cache fronted by an i-Filter whose victims pass through an
/// arbitrary [`AdmissionPolicy`].
///
/// # Examples
///
/// ```
/// use acic_cache::bypass::AlwaysAdmit;
/// use acic_cache::{AccessCtx, CacheGeometry, IcacheContents};
/// use acic_core::FilteredIcache;
/// use acic_types::{BlockAddr, TaggedBlock};
///
/// let mut org = FilteredIcache::new(CacheGeometry::l1i_32k(), 16, Box::new(AlwaysAdmit));
/// org.fill(&AccessCtx::demand(BlockAddr::new(3), 0));
/// assert!(org.contains_block(TaggedBlock::untagged(BlockAddr::new(3))));
/// ```
pub struct FilteredIcache {
    filter: IFilter,
    cache: SetAssocCache,
    admission: Box<dyn AdmissionPolicy>,
    stats: CacheStats,
    /// Victims admitted into the i-cache.
    pub admitted: u64,
    /// Victims thrown away.
    pub bypassed: u64,
}

impl FilteredIcache {
    /// Creates the organization with an LRU i-cache of the given
    /// geometry and a `filter_entries`-slot i-Filter.
    pub fn new(
        geom: CacheGeometry,
        filter_entries: usize,
        admission: Box<dyn AdmissionPolicy>,
    ) -> Self {
        FilteredIcache {
            filter: IFilter::new(filter_entries),
            cache: SetAssocCache::new(geom, PolicyKind::Lru.build(geom)),
            admission,
            stats: CacheStats::default(),
            admitted: 0,
            bypassed: 0,
        }
    }

    /// The i-Filter (for tests).
    pub fn filter(&self) -> &IFilter {
        &self.filter
    }

    /// The backing cache (for tests).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

impl IcacheContents for FilteredIcache {
    fn access(&mut self, ctx: &AccessCtx<'_>) -> AccessOutcome {
        if !ctx.is_prefetch {
            self.admission.on_demand_access(ctx.tagged(), ctx);
        }
        let hit = self.filter.access(ctx.tagged()) || self.cache.access(ctx);
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.record_prefetch(hit);
            } else {
                self.stats.record_demand(hit);
            }
        }
        if hit {
            AccessOutcome::hit()
        } else {
            AccessOutcome::miss()
        }
    }

    fn fill(&mut self, ctx: &AccessCtx<'_>) {
        if self.contains_block(ctx.tagged()) {
            return;
        }
        if ctx.stats_enabled {
            if ctx.is_prefetch {
                self.stats.prefetch_fills += 1;
            } else {
                self.stats.demand_fills += 1;
            }
        }
        let Some(victim) = self.filter.insert(ctx.tagged()) else {
            return;
        };
        let vctx = AccessCtx {
            block: victim.block,
            asid: victim.asid,
            // The victim's own next use (not the triggering block's)
            // is what OPT-flavored admission must compare; policies
            // that need it consult the oracle by block.
            ..*ctx
        };
        let contender = self.cache.contender(&vctx);
        if contender.is_none() || self.admission.should_admit(victim, contender, &vctx) {
            if ctx.stats_enabled {
                self.admitted += 1;
            }
            let evicted = self.cache.fill(&vctx);
            self.admission.on_fill(victim, evicted, &vctx);
        } else if ctx.stats_enabled {
            self.bypassed += 1;
            self.stats.bypasses += 1;
        }
    }

    fn contains_block(&self, block: TaggedBlock) -> bool {
        self.filter.contains(block) || self.cache.contains(block)
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn label(&self) -> String {
        format!("ifilter+{}", self.admission.name())
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_cache::bypass::{AlwaysAdmit, NeverAdmit};
    use acic_types::BlockAddr;

    fn ctx(b: u64, i: u64) -> AccessCtx<'static> {
        AccessCtx::demand(BlockAddr::new(b), i)
    }

    fn tiny(admission: Box<dyn AdmissionPolicy>) -> FilteredIcache {
        FilteredIcache::new(CacheGeometry::from_sets_ways(4, 2), 2, admission)
    }

    #[test]
    fn always_admit_pushes_victims_into_cache() {
        let mut org = tiny(Box::new(AlwaysAdmit));
        org.fill(&ctx(1, 0));
        org.fill(&ctx(2, 1));
        org.fill(&ctx(3, 2)); // filter victim 1 admitted
        assert!(org.cache().contains(BlockAddr::new(1)));
        assert_eq!(org.admitted, 1);
    }

    #[test]
    fn never_admit_drops_victims() {
        let mut org = tiny(Box::new(NeverAdmit));
        org.fill(&ctx(1, 0));
        org.fill(&ctx(2, 1));
        org.fill(&ctx(3, 2));
        // With invalid ways the contender is None, so the victim is
        // still admitted for free; fill the set first.
        for b in [9u64, 17, 25, 33] {
            org.fill(&ctx(b, 10 + b));
        }
        let before = org.cache().resident_blocks().len();
        org.fill(&ctx(41, 100));
        org.fill(&ctx(49, 101));
        assert!(org.bypassed > 0 || org.cache().resident_blocks().len() >= before);
    }

    #[test]
    fn filter_hits_do_not_touch_cache_stats() {
        let mut org = tiny(Box::new(AlwaysAdmit));
        org.fill(&ctx(1, 0));
        assert!(org.access(&ctx(1, 1)).hit);
        assert_eq!(org.stats().demand_accesses, 1);
        assert_eq!(org.cache().stats().demand_accesses, 0);
    }
}

//! The i-Filter: a small fully-associative buffer in front of the
//! i-cache (§II, Figure 2).
//!
//! Missed blocks are placed in the i-Filter *only*; while resident
//! they absorb the burst of spatial/short-term-temporal accesses. When
//! the filter overflows, its LRU block becomes the *i-Filter victim*
//! whose admission into the i-cache ACIC decides.

use acic_types::{Asid, LruStamps, TaggedBlock};

/// Sentinel identity marking an empty slot; unreachable by real
/// identities (see `acic_cache`'s tag store, which uses the same
/// encoding argument).
const EMPTY_IDENT: u64 = u64::MAX;

/// A fully-associative LRU buffer of instruction blocks.
///
/// Probed on every fetch, so slots are stored structure-of-arrays:
/// one flattened-ident `u64` lane scanned as a straight single-word
/// loop (the ASID lane confirms matches and reconstructs victims),
/// exactly like the main tag store.
///
/// # Examples
///
/// ```
/// use acic_core::IFilter;
/// use acic_types::BlockAddr;
///
/// let mut f = IFilter::new(2);
/// assert_eq!(f.insert(BlockAddr::new(1)), None);
/// assert_eq!(f.insert(BlockAddr::new(2)), None);
/// assert!(f.access(BlockAddr::new(1))); // 2 becomes LRU
/// assert_eq!(
///     f.insert(BlockAddr::new(3)),
///     Some(acic_types::TaggedBlock::untagged(BlockAddr::new(2))),
/// );
/// ```
#[derive(Debug)]
pub struct IFilter {
    ids: Vec<u64>,
    asids: Vec<u16>,
    lru: LruStamps,
}

impl IFilter {
    /// Creates an i-Filter with `entries` slots (the paper uses 16).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero; use `Option<IFilter>` for the
    /// no-filter ablation.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "i-Filter needs at least one slot");
        IFilter {
            ids: vec![EMPTY_IDENT; entries],
            asids: vec![0; entries],
            lru: LruStamps::new(entries),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// Number of blocks currently buffered.
    pub fn len(&self) -> usize {
        self.ids.iter().filter(|&&id| id != EMPTY_IDENT).count()
    }

    /// Whether the filter holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The block stored in `slot`, if any.
    #[inline]
    fn slot_block(&self, slot: usize) -> Option<TaggedBlock> {
        (self.ids[slot] != EMPTY_IDENT)
            .then(|| TaggedBlock::from_ident(self.ids[slot], Asid::new(self.asids[slot])))
    }

    /// Slot holding `t`, if buffered. Single-word ident scan with an
    /// ASID confirm on match (same soundness argument as the tag
    /// store's scan).
    // Explicit slice loop (not `Iterator::find` over indices) so the
    // ident compare compiles to a straight bounds-check-free scan —
    // this runs once per fetch in the ACIC hot path.
    #[allow(clippy::manual_find)]
    #[inline]
    fn find(&self, t: TaggedBlock) -> Option<usize> {
        let id = t.ident();
        let asid = t.asid.raw();
        let ids = self.ids.as_slice();
        let asids = self.asids.as_slice();
        for s in 0..ids.len() {
            if ids[s] == id && asids[s] == asid {
                return Some(s);
            }
        }
        None
    }

    /// Whether `block` is buffered (no state change).
    #[inline]
    pub fn contains(&self, block: impl Into<TaggedBlock>) -> bool {
        self.find(block.into()).is_some()
    }

    /// Looks up `block`; on hit refreshes its recency and returns
    /// `true`.
    #[inline]
    pub fn access(&mut self, block: impl Into<TaggedBlock>) -> bool {
        if let Some(slot) = self.find(block.into()) {
            self.lru.touch(slot);
            true
        } else {
            false
        }
    }

    /// Inserts `block`; if the filter is full, evicts and returns the
    /// LRU block (the *i-Filter victim*).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `block` is already resident (the driver
    /// must only fill on a filter miss).
    pub fn insert(&mut self, block: impl Into<TaggedBlock>) -> Option<TaggedBlock> {
        let block = block.into();
        debug_assert!(!self.contains(block), "duplicate i-Filter insert");
        debug_assert_ne!(block.ident(), EMPTY_IDENT, "block collides with sentinel");
        let slot = match self.ids.iter().position(|&id| id == EMPTY_IDENT) {
            Some(free) => free,
            None => self.lru.lru_way(),
        };
        let victim = self.slot_block(slot);
        self.ids[slot] = block.ident();
        self.asids[slot] = block.asid.raw();
        self.lru.touch(slot);
        victim
    }

    /// Removes `block` if present (used when a block is promoted or
    /// invalidated externally).
    pub fn remove(&mut self, block: impl Into<TaggedBlock>) -> bool {
        if let Some(slot) = self.find(block.into()) {
            self.ids[slot] = EMPTY_IDENT;
            self.lru.clear(slot);
            true
        } else {
            false
        }
    }

    /// Blocks currently buffered, MRU first (for tests).
    pub fn resident_blocks(&self) -> Vec<TaggedBlock> {
        let mut with_stamp: Vec<(u64, TaggedBlock)> = (0..self.ids.len())
            .filter_map(|i| self.slot_block(i).map(|b| (self.lru.stamp(i), b)))
            .collect();
        with_stamp.sort_by_key(|&(s, _)| u64::MAX - s);
        with_stamp.into_iter().map(|(_, b)| b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    #[test]
    fn fills_before_evicting() {
        let mut f = IFilter::new(3);
        assert_eq!(f.insert(BlockAddr::new(1)), None);
        assert_eq!(f.insert(BlockAddr::new(2)), None);
        assert_eq!(f.insert(BlockAddr::new(3)), None);
        assert_eq!(f.len(), 3);
        assert_eq!(
            f.insert(BlockAddr::new(4)),
            Some(TaggedBlock::untagged(BlockAddr::new(1)))
        );
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn access_refreshes_recency() {
        let mut f = IFilter::new(2);
        f.insert(BlockAddr::new(1));
        f.insert(BlockAddr::new(2));
        assert!(f.access(BlockAddr::new(1)));
        assert_eq!(
            f.insert(BlockAddr::new(3)),
            Some(TaggedBlock::untagged(BlockAddr::new(2)))
        );
    }

    #[test]
    fn miss_does_not_change_state() {
        let mut f = IFilter::new(2);
        f.insert(BlockAddr::new(1));
        assert!(!f.access(BlockAddr::new(9)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn remove_frees_slot() {
        let mut f = IFilter::new(2);
        f.insert(BlockAddr::new(1));
        f.insert(BlockAddr::new(2));
        assert!(f.remove(BlockAddr::new(1)));
        assert_eq!(f.insert(BlockAddr::new(3)), None); // reused the free slot
    }

    #[test]
    fn resident_order_is_mru_first() {
        let mut f = IFilter::new(3);
        f.insert(BlockAddr::new(1));
        f.insert(BlockAddr::new(2));
        f.insert(BlockAddr::new(3));
        f.access(BlockAddr::new(1));
        let order: Vec<_> = f.resident_blocks().iter().map(|t| t.block).collect();
        assert_eq!(
            order,
            vec![BlockAddr::new(1), BlockAddr::new(3), BlockAddr::new(2)]
        );
    }

    #[test]
    fn paper_capacity() {
        let f = IFilter::new(16);
        assert_eq!(f.capacity(), 16);
    }
}

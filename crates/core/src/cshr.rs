//! CSHR — Comparison Status Holding Registers (§III-B, Figures 5-7).
//!
//! Each entry tracks one unresolved comparison between an i-Filter
//! victim and its i-cache contender, stored as partial tags. Fetch
//! requests search the CSHR set derived from the i-cache set index;
//! matching the victim field means the victim was re-accessed first
//! (train `1`), matching the contender field trains `0`. Entries are
//! organized as 8 sets x 32 ways with per-set LRU; an unresolved entry
//! evicted for capacity trains "benefit of the doubt" in the victim's
//! favor (§III-C1).
//!
//! # Hot-path layout
//!
//! [`Cshr`] is probed once per i-cache access, making its set scan one
//! of the hottest loops in the workspace. The flat layout packs each
//! entry's two partial tags into one `u32` lane (victim in the low
//! half, contender in the high half) stored contiguously per set, with
//! validity as a per-set `u64` bitmask — the search builds victim- and
//! contender-match masks branch-free over the packed lane and only
//! branches once per *resolution*, not once per way. Results land in a
//! caller-provided fixed [`ResolutionBuf`]
//! ([`Cshr::search_into`]), so the steady-state probe performs no heap
//! allocation. [`LegacyCshr`] retains the original array-of-structs
//! implementation as the behavioral reference; the two are pinned
//! against each other by an equivalence proptest
//! (`tests/hot_structs_equivalence.rs`).
//!
//! [`UnboundedCshr`] is the instrumentation twin used to regenerate
//! Figure 6 (how many concurrent comparisons a resolution needed). Its
//! bookkeeping `HashMap`s exist only while Figure-6 instrumentation is
//! explicitly enabled — default runs never construct it.

use acic_types::{BlockAddr, LruStamps};
use std::collections::HashMap;

/// A resolved (or force-resolved) comparison to train the predictor
/// with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// Partial tag of the i-Filter victim of the comparison.
    pub victim_ptag: u16,
    /// Whether the victim was (or is assumed to have been) re-accessed
    /// before the contender.
    pub victim_won: bool,
}

impl Resolution {
    const EMPTY: Resolution = Resolution {
        victim_ptag: 0,
        victim_won: false,
    };
}

/// Counters exposed by the CSHR.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CshrStats {
    /// Comparisons inserted.
    pub inserted: u64,
    /// Resolutions where the victim was fetched first.
    pub victim_first: u64,
    /// Resolutions where the contender was fetched first.
    pub contender_first: u64,
    /// Unresolved entries evicted for capacity (trained in the
    /// victim's favor).
    pub evicted_unresolved: u64,
}

impl CshrStats {
    /// Adds another instance's counters into this one (pure sums, so
    /// per-window merges are order-independent).
    pub fn merge(&mut self, other: &CshrStats) {
        self.inserted += other.inserted;
        self.victim_first += other.victim_first;
        self.contender_first += other.contender_first;
        self.evicted_unresolved += other.evicted_unresolved;
    }
}

/// Upper bound on CSHR associativity supported by the packed layout
/// (validity is a per-set `u64` bitmask). The paper's configuration is
/// 32-way; construction panics past the bound.
pub const MAX_CSHR_WAYS: usize = 64;

/// Fixed-capacity, stack-allocated buffer for CSHR search results.
///
/// One probe can resolve at most one comparison per way, so
/// [`MAX_CSHR_WAYS`] slots always suffice. Callers keep one buffer
/// alive across probes ([`Cshr::search_into`] clears it first), making
/// the search path allocation-free.
#[derive(Clone, Debug)]
pub struct ResolutionBuf {
    len: usize,
    items: [Resolution; MAX_CSHR_WAYS],
}

impl ResolutionBuf {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        ResolutionBuf {
            len: 0,
            items: [Resolution::EMPTY; MAX_CSHR_WAYS],
        }
    }

    /// Empties the buffer.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, r: Resolution) {
        self.items[self.len] = r;
        self.len += 1;
    }

    /// Resolutions recorded by the last search.
    #[inline]
    pub fn as_slice(&self) -> &[Resolution] {
        &self.items[..self.len]
    }

    /// Number of resolutions recorded.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last search resolved nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for ResolutionBuf {
    fn default() -> Self {
        ResolutionBuf::new()
    }
}

impl core::ops::Deref for ResolutionBuf {
    type Target = [Resolution];

    fn deref(&self) -> &[Resolution] {
        self.as_slice()
    }
}

/// The set-associative CSHR (default 256 entries, 8 sets x 32 ways,
/// 12-bit partial tags) in the packed structure-of-arrays layout.
///
/// # Examples
///
/// ```
/// use acic_core::Cshr;
///
/// let mut cshr = Cshr::new(8, 32, 64);
/// let evicted = cshr.insert(0x123, 0x456, 5);
/// assert!(evicted.is_none());
/// // Fetching the victim's tag in the same i-cache set resolves it.
/// let resolutions = cshr.search(0x123, 5);
/// assert_eq!(resolutions.len(), 1);
/// assert!(resolutions[0].victim_won);
/// ```
#[derive(Debug)]
pub struct Cshr {
    sets: usize,
    ways: usize,
    /// Right-shift applied to an i-cache set index to select the CSHR
    /// set ("the m most significant bits of the i-cache set index").
    shift: u32,
    /// Packed partial-tag lanes, one `u32` per entry: victim tag in
    /// bits 0..16, contender tag in bits 16..32; `sets * ways` long,
    /// set-major so one set's lane is contiguous.
    lanes: Vec<u32>,
    /// Per-set validity bitmask (bit `w` = way `w` holds an open
    /// comparison).
    valid: Vec<u64>,
    /// Per-way LRU stamps (0 = never touched), flat set-major, with a
    /// per-set monotone clock — the flat equivalent of one
    /// `LruStamps` per set.
    stamps: Vec<u64>,
    clock: Vec<u64>,
    stats: CshrStats,
}

impl Cshr {
    /// Creates a CSHR with `sets` x `ways` entries serving an i-cache
    /// with `icache_sets` sets. When the CSHR has at least as many
    /// sets as the i-cache (only in scaled-down test configurations),
    /// i-cache sets map one-to-one and the excess CSHR sets stay
    /// unused.
    ///
    /// # Panics
    ///
    /// Panics unless both set counts are powers of two and `ways` is
    /// in `1..=`[`MAX_CSHR_WAYS`].
    pub fn new(sets: usize, ways: usize, icache_sets: usize) -> Self {
        assert!(sets.is_power_of_two() && icache_sets.is_power_of_two());
        assert!((1..=MAX_CSHR_WAYS).contains(&ways));
        let shift = icache_sets
            .trailing_zeros()
            .saturating_sub(sets.trailing_zeros());
        Cshr {
            sets,
            ways,
            shift,
            lanes: vec![0; sets * ways],
            valid: vec![0; sets],
            stamps: vec![0; sets * ways],
            clock: vec![0; sets],
            stats: CshrStats::default(),
        }
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.lanes.len()
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }

    /// Counters.
    pub fn stats(&self) -> CshrStats {
        self.stats
    }

    fn set_of(&self, icache_set: usize) -> usize {
        (icache_set >> self.shift) & (self.sets - 1)
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock[set] += 1;
        self.stamps[set * self.ways + way] = self.clock[set];
    }

    /// Least-recently-used way of `set` (lowest stamp, ties broken by
    /// lowest way index — untouched ways first, in order), matching
    /// [`LruStamps::lru_way`].
    fn lru_way(&self, set: usize) -> usize {
        let base = set * self.ways;
        let mut best = 0usize;
        let mut best_stamp = self.stamps[base];
        for w in 1..self.ways {
            let s = self.stamps[base + w];
            if s < best_stamp {
                best = w;
                best_stamp = s;
            }
        }
        best
    }

    /// Opens a comparison between `victim_ptag` and `contender_ptag`
    /// whose blocks map to `icache_set`. If an unresolved entry must
    /// be evicted for capacity, it is returned force-resolved in the
    /// victim's favor (benefit of the doubt).
    pub fn insert(
        &mut self,
        victim_ptag: u16,
        contender_ptag: u16,
        icache_set: usize,
    ) -> Option<Resolution> {
        self.stats.inserted += 1;
        let set = self.set_of(icache_set);
        let free = !self.valid[set] & ways_mask(self.ways);
        let (way, forced) = if free != 0 {
            (free.trailing_zeros() as usize, None)
        } else {
            let w = self.lru_way(set);
            let old_victim = (self.lanes[set * self.ways + w] & 0xFFFF) as u16;
            self.stats.evicted_unresolved += 1;
            (
                w,
                Some(Resolution {
                    victim_ptag: old_victim,
                    victim_won: true,
                }),
            )
        };
        self.lanes[set * self.ways + way] = (victim_ptag as u32) | ((contender_ptag as u32) << 16);
        self.valid[set] |= 1 << way;
        self.touch(set, way);
        forced
    }

    /// Searches the CSHR set for the fetched block's partial tag and
    /// resolves matches into `out` (cleared first): a victim-field
    /// match trains `1`, contender matches train `0`; resolved entries
    /// are invalidated and reusable. Resolutions land in ascending way
    /// order, matching [`LegacyCshr::search`].
    #[inline]
    pub fn search_into(&mut self, fetched_ptag: u16, icache_set: usize, out: &mut ResolutionBuf) {
        out.clear();
        let set = self.set_of(icache_set);
        let live = self.valid[set];
        if live == 0 {
            return;
        }
        let base = set * self.ways;
        let probe = fetched_ptag as u32;
        let lanes = &self.lanes[base..base + self.ways];
        // Fast pre-check: most probes resolve nothing (~93% on the
        // paper's configuration), so first run a pure or-reduction
        // over the packed lane — branch-free, vectorizable — and bail
        // before any mask bookkeeping. Stale tags in invalid entries
        // can force a spurious slow pass, never a wrong result (the
        // slow pass filters by the validity mask).
        let mut any = false;
        for &lane in lanes {
            any |= (lane & 0xFFFF) == probe;
            any |= (lane >> 16) == probe;
        }
        if !any {
            return;
        }
        // Branch-free match-mask build over the packed lane.
        let mut vmask = 0u64;
        let mut cmask = 0u64;
        for (w, &lane) in lanes.iter().enumerate() {
            vmask |= (((lane & 0xFFFF) == probe) as u64) << w;
            cmask |= (((lane >> 16) == probe) as u64) << w;
        }
        // A victim match wins over a contender match on the same entry
        // (mirrors the legacy `if / else if`).
        let vhits = vmask & live;
        let chits = cmask & live & !vmask;
        let mut hits = vhits | chits;
        if hits == 0 {
            return;
        }
        self.stats.victim_first += vhits.count_ones() as u64;
        self.stats.contender_first += chits.count_ones() as u64;
        self.valid[set] = live & !hits;
        while hits != 0 {
            let w = hits.trailing_zeros() as usize;
            hits &= hits - 1;
            out.push(Resolution {
                victim_ptag: (self.lanes[base + w] & 0xFFFF) as u16,
                victim_won: vhits >> w & 1 == 1,
            });
            self.stamps[base + w] = 0;
        }
    }

    /// Allocating convenience wrapper over [`Cshr::search_into`] for
    /// tests and cold paths.
    pub fn search(&mut self, fetched_ptag: u16, icache_set: usize) -> Vec<Resolution> {
        let mut buf = ResolutionBuf::new();
        self.search_into(fetched_ptag, icache_set, &mut buf);
        buf.as_slice().to_vec()
    }
}

#[inline]
fn ways_mask(ways: usize) -> u64 {
    if ways == 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct LegacyEntry {
    valid: bool,
    victim: u16,
    contender: u16,
}

/// The original array-of-structs CSHR, retained as the behavioral
/// reference for the packed [`Cshr`]: one probe loop with a branch per
/// way and a freshly allocated `Vec` per search. Benchmarks measure
/// the layout win against it; the equivalence proptest pins the two
/// implementations to identical observable behavior.
#[derive(Debug)]
pub struct LegacyCshr {
    sets: usize,
    ways: usize,
    shift: u32,
    entries: Vec<LegacyEntry>,
    lru: Vec<LruStamps>,
    stats: CshrStats,
}

impl LegacyCshr {
    /// Creates the reference CSHR (same contract as [`Cshr::new`]).
    ///
    /// # Panics
    ///
    /// Panics unless both set counts are powers of two and `ways` is
    /// positive.
    pub fn new(sets: usize, ways: usize, icache_sets: usize) -> Self {
        assert!(sets.is_power_of_two() && icache_sets.is_power_of_two());
        assert!(ways > 0);
        let shift = icache_sets
            .trailing_zeros()
            .saturating_sub(sets.trailing_zeros());
        LegacyCshr {
            sets,
            ways,
            shift,
            entries: vec![LegacyEntry::default(); sets * ways],
            lru: (0..sets).map(|_| LruStamps::new(ways)).collect(),
            stats: CshrStats::default(),
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Counters.
    pub fn stats(&self) -> CshrStats {
        self.stats
    }

    fn set_of(&self, icache_set: usize) -> usize {
        (icache_set >> self.shift) & (self.sets - 1)
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Opens a comparison (same contract as [`Cshr::insert`]).
    pub fn insert(
        &mut self,
        victim_ptag: u16,
        contender_ptag: u16,
        icache_set: usize,
    ) -> Option<Resolution> {
        self.stats.inserted += 1;
        let set = self.set_of(icache_set);
        let way = (0..self.ways).find(|&w| !self.entries[self.idx(set, w)].valid);
        let (way, forced) = match way {
            Some(w) => (w, None),
            None => {
                let w = self.lru[set].lru_way();
                let old = self.entries[self.idx(set, w)];
                self.stats.evicted_unresolved += 1;
                (
                    w,
                    Some(Resolution {
                        victim_ptag: old.victim,
                        victim_won: true,
                    }),
                )
            }
        };
        let i = self.idx(set, way);
        self.entries[i] = LegacyEntry {
            valid: true,
            victim: victim_ptag,
            contender: contender_ptag,
        };
        self.lru[set].touch(way);
        forced
    }

    /// Searches and resolves matches (same contract as
    /// [`Cshr::search`]).
    pub fn search(&mut self, fetched_ptag: u16, icache_set: usize) -> Vec<Resolution> {
        let set = self.set_of(icache_set);
        let mut out = Vec::new();
        for w in 0..self.ways {
            let i = self.idx(set, w);
            let e = self.entries[i];
            if !e.valid {
                continue;
            }
            if e.victim == fetched_ptag {
                self.stats.victim_first += 1;
                out.push(Resolution {
                    victim_ptag: e.victim,
                    victim_won: true,
                });
                self.entries[i].valid = false;
                self.lru[set].clear(w);
            } else if e.contender == fetched_ptag {
                self.stats.contender_first += 1;
                out.push(Resolution {
                    victim_ptag: e.victim,
                    victim_won: false,
                });
                self.entries[i].valid = false;
                self.lru[set].clear(w);
            }
        }
        out
    }
}

/// Figure 6's bucket boundaries: comparisons needing `[0,50)`,
/// `[50,100)`, ..., `[350,400)` concurrent slots, and `>= 400`.
pub const LIFETIME_BUCKETS: usize = 9;

/// An unbounded CSHR twin that records, for every comparison, how
/// many other comparisons were inserted before it resolved — the data
/// behind Figure 6's capacity-sizing argument. Tracks full block
/// addresses (oracle instrumentation, not hardware).
///
/// The three bookkeeping `HashMap`s here are the only map-backed state
/// on the admission path, and they exist *only* when Figure-6
/// instrumentation is explicitly requested
/// ([`crate::AcicIcache::with_unbounded_instrumentation`]); a default
/// ACIC run never constructs this type, so the maps cost nothing.
#[derive(Debug, Default)]
pub struct UnboundedCshr {
    by_victim: HashMap<u64, u64>, // victim block -> insert sequence
    by_contender: HashMap<u64, Vec<u64>>,
    open: HashMap<u64, (u64, u64)>, // seq -> (victim, contender)
    insert_seq: u64,
    /// Histogram over [`LIFETIME_BUCKETS`] lifetime buckets.
    pub lifetime_counts: [u64; LIFETIME_BUCKETS],
}

impl UnboundedCshr {
    /// Creates an empty instrumentation structure.
    pub fn new() -> Self {
        UnboundedCshr::default()
    }

    fn record_lifetime(&mut self, opened_at: u64) {
        let lifetime = self.insert_seq - opened_at;
        let bucket = ((lifetime / 50) as usize).min(LIFETIME_BUCKETS - 1);
        self.lifetime_counts[bucket] += 1;
    }

    fn resolve_seq(&mut self, seq: u64) {
        if let Some((victim, contender)) = self.open.remove(&seq) {
            self.by_victim.remove(&victim);
            if let Some(v) = self.by_contender.get_mut(&contender) {
                v.retain(|&s| s != seq);
                if v.is_empty() {
                    self.by_contender.remove(&contender);
                }
            }
            self.record_lifetime(seq);
        }
    }

    /// Opens a comparison (full block addresses).
    pub fn insert(&mut self, victim: BlockAddr, contender: BlockAddr) {
        let v = victim.raw();
        let c = contender.raw();
        // A re-inserted victim implies its previous comparison resolved
        // (it must have been re-fetched to re-enter the filter).
        if let Some(&old) = self.by_victim.get(&v) {
            self.resolve_seq(old);
        }
        let seq = self.insert_seq;
        self.insert_seq += 1;
        self.open.insert(seq, (v, c));
        self.by_victim.insert(v, seq);
        self.by_contender.entry(c).or_default().push(seq);
    }

    /// Observes a fetched block, resolving any matching comparisons.
    pub fn on_fetch(&mut self, block: BlockAddr) {
        let b = block.raw();
        if let Some(&seq) = self.by_victim.get(&b) {
            self.resolve_seq(seq);
        }
        if let Some(seqs) = self.by_contender.remove(&b) {
            for seq in seqs {
                if let Some((victim, _)) = self.open.remove(&seq) {
                    self.by_victim.remove(&victim);
                    self.record_lifetime(seq);
                }
            }
        }
    }

    /// Comparisons still open (never resolved).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Total comparisons opened.
    pub fn inserted(&self) -> u64 {
        self.insert_seq
    }

    /// Fraction of resolved comparisons per lifetime bucket, with
    /// never-resolved comparisons folded into the final (`>= 400`)
    /// bucket as the paper's "InF" column.
    pub fn fractions_with_unresolved(&self) -> [f64; LIFETIME_BUCKETS] {
        let mut counts = self.lifetime_counts;
        counts[LIFETIME_BUCKETS - 1] += self.open.len() as u64;
        let total: u64 = counts.iter().sum();
        let mut out = [0.0; LIFETIME_BUCKETS];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts.iter()) {
                *o = *c as f64 / total as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_match_wins() {
        let mut c = Cshr::new(8, 32, 64);
        c.insert(1, 2, 0);
        let r = c.search(1, 0);
        assert_eq!(
            r,
            vec![Resolution {
                victim_ptag: 1,
                victim_won: true
            }]
        );
        // Entry consumed.
        assert!(c.search(1, 0).is_empty());
        assert_eq!(c.stats().victim_first, 1);
    }

    #[test]
    fn contender_match_loses() {
        let mut c = Cshr::new(8, 32, 64);
        c.insert(1, 2, 0);
        let r = c.search(2, 0);
        assert_eq!(r[0].victim_ptag, 1);
        assert!(!r[0].victim_won);
    }

    #[test]
    fn multiple_contender_matches_resolve_together() {
        // The same contender can defend against several victims
        // (§III-C2): one fetch resolves all of them.
        let mut c = Cshr::new(8, 32, 64);
        c.insert(10, 99, 0);
        c.insert(11, 99, 0);
        c.insert(12, 99, 0);
        let r = c.search(99, 0);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|x| !x.victim_won));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn victim_match_beats_contender_match_on_same_entry() {
        // A self-comparison (same partial tag on both sides) must
        // resolve as a victim win, exactly like the legacy `else if`.
        let mut c = Cshr::new(8, 32, 64);
        c.insert(7, 7, 0);
        let r = c.search(7, 0);
        assert_eq!(r.len(), 1);
        assert!(r[0].victim_won);
        assert_eq!(c.stats().victim_first, 1);
        assert_eq!(c.stats().contender_first, 0);
    }

    #[test]
    fn set_mapping_uses_top_bits() {
        let c = Cshr::new(8, 32, 64);
        // 64 i-cache sets (6 bits), 8 CSHR sets: shift 3.
        assert_eq!(c.set_of(0b000_111), 0);
        assert_eq!(c.set_of(0b111_000), 7);
    }

    #[test]
    fn searches_only_within_mapped_set() {
        let mut c = Cshr::new(8, 32, 64);
        c.insert(5, 6, 0); // CSHR set 0
        assert!(c.search(5, 63).is_empty()); // CSHR set 7
        assert_eq!(c.search(5, 7).len(), 1); // still set 0
    }

    #[test]
    fn capacity_eviction_gives_benefit_of_doubt() {
        let mut c = Cshr::new(1, 2, 64);
        assert!(c.insert(1, 101, 0).is_none());
        assert!(c.insert(2, 102, 0).is_none());
        let forced = c.insert(3, 103, 0).expect("evicts LRU entry");
        assert_eq!(forced.victim_ptag, 1);
        assert!(forced.victim_won);
        assert_eq!(c.stats().evicted_unresolved, 1);
    }

    #[test]
    fn search_into_reuses_buffer() {
        let mut c = Cshr::new(8, 32, 64);
        let mut buf = ResolutionBuf::new();
        c.insert(1, 2, 0);
        c.search_into(1, 0, &mut buf);
        assert_eq!(buf.len(), 1);
        // A fresh search clears the stale contents first.
        c.search_into(1, 0, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn sixty_four_way_set_works() {
        // The widest supported associativity exercises the full-width
        // validity mask (`ways_mask(64)`).
        let mut c = Cshr::new(1, MAX_CSHR_WAYS, 64);
        for i in 0..MAX_CSHR_WAYS as u16 {
            assert!(c.insert(i, 1000 + i, 0).is_none());
        }
        assert_eq!(c.occupancy(), MAX_CSHR_WAYS);
        let forced = c.insert(999, 1999, 0).expect("full set evicts");
        assert_eq!(forced.victim_ptag, 0);
    }

    #[test]
    fn unbounded_lifetimes_counted() {
        let mut u = UnboundedCshr::new();
        u.insert(BlockAddr::new(1), BlockAddr::new(100));
        for i in 0..60u64 {
            u.insert(BlockAddr::new(2 + i), BlockAddr::new(200 + i));
        }
        u.on_fetch(BlockAddr::new(1)); // resolved after 60 inserts
        assert_eq!(u.lifetime_counts[1], 1, "lifetime 60 lands in [50,100)");
    }

    #[test]
    fn unbounded_unresolved_fold_into_inf() {
        let mut u = UnboundedCshr::new();
        u.insert(BlockAddr::new(1), BlockAddr::new(2));
        let f = u.fractions_with_unresolved();
        assert_eq!(f[LIFETIME_BUCKETS - 1], 1.0);
    }

    #[test]
    fn unbounded_reinsert_resolves_prior() {
        let mut u = UnboundedCshr::new();
        u.insert(BlockAddr::new(1), BlockAddr::new(2));
        u.insert(BlockAddr::new(1), BlockAddr::new(3));
        assert_eq!(u.open_count(), 1);
        assert_eq!(u.lifetime_counts[0], 1);
    }
}

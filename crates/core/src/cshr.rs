//! CSHR — Comparison Status Holding Registers (§III-B, Figures 5-7).
//!
//! Each entry tracks one unresolved comparison between an i-Filter
//! victim and its i-cache contender, stored as partial tags. Fetch
//! requests search the CSHR set derived from the i-cache set index;
//! matching the victim field means the victim was re-accessed first
//! (train `1`), matching the contender field trains `0`. Entries are
//! organized as 8 sets x 32 ways with per-set LRU; an unresolved entry
//! evicted for capacity trains "benefit of the doubt" in the victim's
//! favor (§III-C1).
//!
//! [`UnboundedCshr`] is the instrumentation twin used to regenerate
//! Figure 6 (how many concurrent comparisons a resolution needed).

use acic_types::{BlockAddr, LruStamps};
use std::collections::HashMap;

/// A resolved (or force-resolved) comparison to train the predictor
/// with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// Partial tag of the i-Filter victim of the comparison.
    pub victim_ptag: u16,
    /// Whether the victim was (or is assumed to have been) re-accessed
    /// before the contender.
    pub victim_won: bool,
}

/// Counters exposed by the CSHR.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CshrStats {
    /// Comparisons inserted.
    pub inserted: u64,
    /// Resolutions where the victim was fetched first.
    pub victim_first: u64,
    /// Resolutions where the contender was fetched first.
    pub contender_first: u64,
    /// Unresolved entries evicted for capacity (trained in the
    /// victim's favor).
    pub evicted_unresolved: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    valid: bool,
    victim: u16,
    contender: u16,
}

/// The set-associative CSHR (default 256 entries, 8 sets x 32 ways,
/// 12-bit partial tags).
///
/// # Examples
///
/// ```
/// use acic_core::Cshr;
///
/// let mut cshr = Cshr::new(8, 32, 64);
/// let evicted = cshr.insert(0x123, 0x456, 5);
/// assert!(evicted.is_none());
/// // Fetching the victim's tag in the same i-cache set resolves it.
/// let resolutions = cshr.search(0x123, 5);
/// assert_eq!(resolutions.len(), 1);
/// assert!(resolutions[0].victim_won);
/// ```
#[derive(Debug)]
pub struct Cshr {
    sets: usize,
    ways: usize,
    /// Right-shift applied to an i-cache set index to select the CSHR
    /// set ("the m most significant bits of the i-cache set index").
    shift: u32,
    entries: Vec<Entry>,
    lru: Vec<LruStamps>,
    stats: CshrStats,
}

impl Cshr {
    /// Creates a CSHR with `sets` x `ways` entries serving an i-cache
    /// with `icache_sets` sets. When the CSHR has at least as many
    /// sets as the i-cache (only in scaled-down test configurations),
    /// i-cache sets map one-to-one and the excess CSHR sets stay
    /// unused.
    ///
    /// # Panics
    ///
    /// Panics unless both set counts are powers of two and `ways` is
    /// positive.
    pub fn new(sets: usize, ways: usize, icache_sets: usize) -> Self {
        assert!(sets.is_power_of_two() && icache_sets.is_power_of_two());
        assert!(ways > 0);
        let shift = icache_sets
            .trailing_zeros()
            .saturating_sub(sets.trailing_zeros());
        Cshr {
            sets,
            ways,
            shift,
            entries: vec![Entry::default(); sets * ways],
            lru: (0..sets).map(|_| LruStamps::new(ways)).collect(),
            stats: CshrStats::default(),
        }
    }

    /// Total entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Counters.
    pub fn stats(&self) -> CshrStats {
        self.stats
    }

    fn set_of(&self, icache_set: usize) -> usize {
        (icache_set >> self.shift) & (self.sets - 1)
    }

    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Opens a comparison between `victim_ptag` and `contender_ptag`
    /// whose blocks map to `icache_set`. If an unresolved entry must
    /// be evicted for capacity, it is returned force-resolved in the
    /// victim's favor (benefit of the doubt).
    pub fn insert(
        &mut self,
        victim_ptag: u16,
        contender_ptag: u16,
        icache_set: usize,
    ) -> Option<Resolution> {
        self.stats.inserted += 1;
        let set = self.set_of(icache_set);
        let way = (0..self.ways).find(|&w| !self.entries[self.idx(set, w)].valid);
        let (way, forced) = match way {
            Some(w) => (w, None),
            None => {
                let w = self.lru[set].lru_way();
                let old = self.entries[self.idx(set, w)];
                self.stats.evicted_unresolved += 1;
                (
                    w,
                    Some(Resolution {
                        victim_ptag: old.victim,
                        victim_won: true,
                    }),
                )
            }
        };
        let i = self.idx(set, way);
        self.entries[i] = Entry {
            valid: true,
            victim: victim_ptag,
            contender: contender_ptag,
        };
        self.lru[set].touch(way);
        forced
    }

    /// Searches the CSHR set for the fetched block's partial tag and
    /// resolves matches: a victim-field match trains `1`, contender
    /// matches train `0`; resolved entries are invalidated and
    /// reusable.
    pub fn search(&mut self, fetched_ptag: u16, icache_set: usize) -> Vec<Resolution> {
        let set = self.set_of(icache_set);
        let mut out = Vec::new();
        for w in 0..self.ways {
            let i = self.idx(set, w);
            let e = self.entries[i];
            if !e.valid {
                continue;
            }
            if e.victim == fetched_ptag {
                self.stats.victim_first += 1;
                out.push(Resolution {
                    victim_ptag: e.victim,
                    victim_won: true,
                });
                self.entries[i].valid = false;
                self.lru[set].clear(w);
            } else if e.contender == fetched_ptag {
                self.stats.contender_first += 1;
                out.push(Resolution {
                    victim_ptag: e.victim,
                    victim_won: false,
                });
                self.entries[i].valid = false;
                self.lru[set].clear(w);
            }
        }
        out
    }
}

/// Figure 6's bucket boundaries: comparisons needing `[0,50)`,
/// `[50,100)`, ..., `[350,400)` concurrent slots, and `>= 400`.
pub const LIFETIME_BUCKETS: usize = 9;

/// An unbounded CSHR twin that records, for every comparison, how
/// many other comparisons were inserted before it resolved — the data
/// behind Figure 6's capacity-sizing argument. Tracks full block
/// addresses (oracle instrumentation, not hardware).
#[derive(Debug, Default)]
pub struct UnboundedCshr {
    by_victim: HashMap<u64, u64>, // victim block -> insert sequence
    by_contender: HashMap<u64, Vec<u64>>,
    open: HashMap<u64, (u64, u64)>, // seq -> (victim, contender)
    insert_seq: u64,
    /// Histogram over [`LIFETIME_BUCKETS`] lifetime buckets.
    pub lifetime_counts: [u64; LIFETIME_BUCKETS],
}

impl UnboundedCshr {
    /// Creates an empty instrumentation structure.
    pub fn new() -> Self {
        UnboundedCshr::default()
    }

    fn record_lifetime(&mut self, opened_at: u64) {
        let lifetime = self.insert_seq - opened_at;
        let bucket = ((lifetime / 50) as usize).min(LIFETIME_BUCKETS - 1);
        self.lifetime_counts[bucket] += 1;
    }

    fn resolve_seq(&mut self, seq: u64) {
        if let Some((victim, contender)) = self.open.remove(&seq) {
            self.by_victim.remove(&victim);
            if let Some(v) = self.by_contender.get_mut(&contender) {
                v.retain(|&s| s != seq);
                if v.is_empty() {
                    self.by_contender.remove(&contender);
                }
            }
            self.record_lifetime(seq);
        }
    }

    /// Opens a comparison (full block addresses).
    pub fn insert(&mut self, victim: BlockAddr, contender: BlockAddr) {
        let v = victim.raw();
        let c = contender.raw();
        // A re-inserted victim implies its previous comparison resolved
        // (it must have been re-fetched to re-enter the filter).
        if let Some(&old) = self.by_victim.get(&v) {
            self.resolve_seq(old);
        }
        let seq = self.insert_seq;
        self.insert_seq += 1;
        self.open.insert(seq, (v, c));
        self.by_victim.insert(v, seq);
        self.by_contender.entry(c).or_default().push(seq);
    }

    /// Observes a fetched block, resolving any matching comparisons.
    pub fn on_fetch(&mut self, block: BlockAddr) {
        let b = block.raw();
        if let Some(&seq) = self.by_victim.get(&b) {
            self.resolve_seq(seq);
        }
        if let Some(seqs) = self.by_contender.remove(&b) {
            for seq in seqs {
                if let Some((victim, _)) = self.open.remove(&seq) {
                    self.by_victim.remove(&victim);
                    self.record_lifetime(seq);
                }
            }
        }
    }

    /// Comparisons still open (never resolved).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Total comparisons opened.
    pub fn inserted(&self) -> u64 {
        self.insert_seq
    }

    /// Fraction of resolved comparisons per lifetime bucket, with
    /// never-resolved comparisons folded into the final (`>= 400`)
    /// bucket as the paper's "InF" column.
    pub fn fractions_with_unresolved(&self) -> [f64; LIFETIME_BUCKETS] {
        let mut counts = self.lifetime_counts;
        counts[LIFETIME_BUCKETS - 1] += self.open.len() as u64;
        let total: u64 = counts.iter().sum();
        let mut out = [0.0; LIFETIME_BUCKETS];
        if total > 0 {
            for (o, c) in out.iter_mut().zip(counts.iter()) {
                *o = *c as f64 / total as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_match_wins() {
        let mut c = Cshr::new(8, 32, 64);
        c.insert(1, 2, 0);
        let r = c.search(1, 0);
        assert_eq!(
            r,
            vec![Resolution {
                victim_ptag: 1,
                victim_won: true
            }]
        );
        // Entry consumed.
        assert!(c.search(1, 0).is_empty());
        assert_eq!(c.stats().victim_first, 1);
    }

    #[test]
    fn contender_match_loses() {
        let mut c = Cshr::new(8, 32, 64);
        c.insert(1, 2, 0);
        let r = c.search(2, 0);
        assert_eq!(r[0].victim_ptag, 1);
        assert!(!r[0].victim_won);
    }

    #[test]
    fn multiple_contender_matches_resolve_together() {
        // The same contender can defend against several victims
        // (§III-C2): one fetch resolves all of them.
        let mut c = Cshr::new(8, 32, 64);
        c.insert(10, 99, 0);
        c.insert(11, 99, 0);
        c.insert(12, 99, 0);
        let r = c.search(99, 0);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|x| !x.victim_won));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn set_mapping_uses_top_bits() {
        let c = Cshr::new(8, 32, 64);
        // 64 i-cache sets (6 bits), 8 CSHR sets: shift 3.
        assert_eq!(c.set_of(0b000_111), 0);
        assert_eq!(c.set_of(0b111_000), 7);
    }

    #[test]
    fn searches_only_within_mapped_set() {
        let mut c = Cshr::new(8, 32, 64);
        c.insert(5, 6, 0); // CSHR set 0
        assert!(c.search(5, 63).is_empty()); // CSHR set 7
        assert_eq!(c.search(5, 7).len(), 1); // still set 0
    }

    #[test]
    fn capacity_eviction_gives_benefit_of_doubt() {
        let mut c = Cshr::new(1, 2, 64);
        assert!(c.insert(1, 101, 0).is_none());
        assert!(c.insert(2, 102, 0).is_none());
        let forced = c.insert(3, 103, 0).expect("evicts LRU entry");
        assert_eq!(forced.victim_ptag, 1);
        assert!(forced.victim_won);
        assert_eq!(c.stats().evicted_unresolved, 1);
    }

    #[test]
    fn unbounded_lifetimes_counted() {
        let mut u = UnboundedCshr::new();
        u.insert(BlockAddr::new(1), BlockAddr::new(100));
        for i in 0..60u64 {
            u.insert(BlockAddr::new(2 + i), BlockAddr::new(200 + i));
        }
        u.on_fetch(BlockAddr::new(1)); // resolved after 60 inserts
        assert_eq!(u.lifetime_counts[1], 1, "lifetime 60 lands in [50,100)");
    }

    #[test]
    fn unbounded_unresolved_fold_into_inf() {
        let mut u = UnboundedCshr::new();
        u.insert(BlockAddr::new(1), BlockAddr::new(2));
        let f = u.fractions_with_unresolved();
        assert_eq!(f[LIFETIME_BUCKETS - 1], 1.0);
    }

    #[test]
    fn unbounded_reinsert_resolves_prior() {
        let mut u = UnboundedCshr::new();
        u.insert(BlockAddr::new(1), BlockAddr::new(2));
        u.insert(BlockAddr::new(1), BlockAddr::new(3));
        assert_eq!(u.open_count(), 1);
        assert_eq!(u.lifetime_counts[0], 1);
    }
}

//! Replay fallback matrix (the `--traces <dir>` degradation paths).
//!
//! A replay directory with one healthy, one corrupt, one wrong-budget
//! and one missing container must regenerate exactly the three broken
//! specs — observable through [`acic_bench::trace_store::Provenance`]
//! — and produce a grid bit-identical to an all-generated run, because
//! the generator is ground truth and packed replay round-trips it
//! exactly.

use acic_bench::trace_store::{freeze_with, Provenance, TraceStoreMode};
use acic_sim::{IcacheOrg, SimConfig, Simulator};
use acic_workloads::{AppProfile, WorkloadSpec};
use std::path::PathBuf;

const BUDGET: u64 = 2_000;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("acic-replayfb-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn specs() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Single(AppProfile::web_search()),
        WorkloadSpec::Single(AppProfile::sibench()),
        WorkloadSpec::Single(AppProfile::tpc_c()),
        WorkloadSpec::Single(AppProfile::finagle_http()),
    ]
}

fn container(dir: &std::path::Path, spec: &WorkloadSpec, budget: u64) -> PathBuf {
    dir.join(format!("{}.acictrace", spec.store_key(budget)))
}

#[test]
fn broken_containers_regenerate_exactly_and_bit_identically() {
    let dir = scratch("matrix");
    let record = TraceStoreMode::Record(dir.clone());
    let replay = TraceStoreMode::Replay(dir.clone());
    let specs = specs();

    // Record containers for specs 0..3; leave spec 3 missing.
    for spec in &specs[..3] {
        freeze_with(&record, spec, BUDGET).unwrap();
    }
    // Corrupt spec 1's container: truncate to half.
    let corrupt = container(&dir, &specs[1], BUDGET);
    let bytes = std::fs::read(&corrupt).unwrap();
    std::fs::write(&corrupt, &bytes[..bytes.len() / 2]).unwrap();
    // Wrong budget for spec 2: record a valid container at a smaller
    // budget and move it under the requested-budget key.
    freeze_with(&record, &specs[2], BUDGET - 1).unwrap();
    std::fs::rename(
        container(&dir, &specs[2], BUDGET - 1),
        container(&dir, &specs[2], BUDGET),
    )
    .unwrap();

    let expected = [
        Provenance::Replayed,
        Provenance::RegeneratedCorrupt,
        Provenance::RegeneratedBudget,
        Provenance::RegeneratedMissing,
    ];
    let configs = [
        SimConfig::default(),
        SimConfig::default().with_org(IcacheOrg::acic_default()),
    ];
    for (spec, want) in specs.iter().zip(expected) {
        let frozen = freeze_with(&replay, spec, BUDGET).unwrap();
        assert_eq!(
            frozen.provenance,
            want,
            "wrong fallback decision for '{}'",
            spec.label()
        );
        assert_eq!(frozen.trace.len(), BUDGET);
        // Grid row: every config's report must match the all-generated
        // run bit-for-bit regardless of how the trace was obtained.
        for cfg in &configs {
            let generated = Simulator::run(cfg, &spec.generator(BUDGET));
            let replayed = Simulator::run(cfg, frozen.trace.as_ref());
            assert_eq!(
                format!("{replayed:?}"),
                format!("{generated:?}"),
                "replay-path grid cell diverged for '{}'",
                spec.label()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthy_directory_replays_every_spec() {
    let dir = scratch("healthy");
    let record = TraceStoreMode::Record(dir.clone());
    let replay = TraceStoreMode::Replay(dir.clone());
    for spec in &specs() {
        freeze_with(&record, spec, BUDGET).unwrap();
        let frozen = freeze_with(&replay, spec, BUDGET).unwrap();
        assert_eq!(frozen.provenance, Provenance::Replayed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end checks of the `experiments` binary: argument
//! hardening, keep-going figure isolation, and the kill-and-resume
//! result-store round trip — all at a tiny instruction budget so the
//! debug binary stays fast.

use std::path::PathBuf;
use std::process::{Command, Output};

const BUDGET: &str = "2000";

fn experiments() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    // Isolate from ambient configuration: the harness reads these.
    for var in [
        "ACIC_EXP_INSTRUCTIONS",
        "ACIC_BENCH_THREADS",
        "ACIC_CELL_TIMEOUT_SECS",
        "ACIC_PANIC_CELL",
        "ACIC_ABORT_CELL",
        "ACIC_STALL_CELL",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("ACIC_EXP_INSTRUCTIONS", BUDGET);
    cmd
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("acic-cli-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn a_flag_missing_its_value_is_a_usage_error_not_a_filter() {
    let out = experiments().arg("--results").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--results requires a value"));

    // Historically `--record-traces --smoke` recorded into a
    // directory literally named `--smoke`.
    let out = experiments()
        .args(["--record-traces", "--smoke"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--record-traces requires a value"));

    let out = experiments().arg("--keep-gonig").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"));
}

#[test]
fn keep_going_completes_every_other_figure_and_summarizes_failures() {
    // Cell (config 0, app 5) panics in every grid large enough to
    // have it; table1_storage does no simulation and must still
    // print, and every selected figure header must appear (the run
    // keeps going past failures).
    let out = experiments()
        .env("ACIC_PANIC_CELL", "0:5")
        .arg("table")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let so = stdout(&out);
    for name in [
        "table1_storage",
        "table2_config",
        "table3_mpki",
        "table4_schemes",
    ] {
        assert!(so.contains(&format!("==== {name} ====")), "missing {name}");
    }
    assert!(so.contains("i-Filter"), "table1's body must still print");
    let se = stderr(&out);
    assert!(se.contains("==== failure summary ===="));
    assert!(se.contains("[table3_mpki FAILED"), "stderr: {se}");
    assert!(
        se.contains("grid failed:"),
        "the structured grid report names the failed cells: {se}"
    );
    assert!(se.contains("injected test panic in cell (0,5)"));
}

#[test]
fn fail_fast_stops_at_the_first_failing_figure() {
    let out = experiments()
        .env("ACIC_PANIC_CELL", "0:5")
        .args(["--fail-fast", "table"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // table3_mpki always fails under this injection, so the loop can
    // never reach table4.
    assert!(!stdout(&out).contains("==== table4_schemes ===="));
    assert!(stderr(&out).contains("==== failure summary ===="));
}

#[test]
fn killed_sweep_resumes_bit_identically_from_the_result_store() {
    let results = scratch("resume");
    let results_arg = results.to_str().unwrap();

    // Reference: one uninterrupted run without a store.
    let reference = experiments()
        .args(["--only", "table3_mpki"])
        .output()
        .unwrap();
    assert!(reference.status.success(), "stderr: {}", stderr(&reference));

    // Killed run: one worker finishes cells 0..=4 into the journal,
    // then the process dies hard (abort, not a clean panic) in cell 5.
    let killed = experiments()
        .env("ACIC_ABORT_CELL", "0:5")
        .env("ACIC_BENCH_THREADS", "1")
        .args(["--results", results_arg, "--only", "table3_mpki"])
        .output()
        .unwrap();
    assert!(!killed.status.success(), "the abort must kill the run");
    assert!(results.join("results.jsonl").exists(), "journal survives");

    // Resume: only the unfinished cells recompute, and stdout is
    // bit-identical to the uninterrupted reference run.
    let resumed = experiments()
        .env("ACIC_BENCH_THREADS", "1")
        .args(["--results", results_arg, "--only", "table3_mpki"])
        .output()
        .unwrap();
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    assert!(
        stderr(&resumed).contains("[results: 5 replayed, 5 computed]"),
        "stderr: {}",
        stderr(&resumed)
    );
    assert_eq!(
        stdout(&resumed),
        stdout(&reference),
        "resume must be bit-identical"
    );

    // A third run replays everything.
    let replayed = experiments()
        .args(["--results", results_arg, "--only", "table3_mpki"])
        .output()
        .unwrap();
    assert!(replayed.status.success());
    assert!(stderr(&replayed).contains("[results: 10 replayed, 0 computed]"));
    assert_eq!(stdout(&replayed), stdout(&reference));

    std::fs::remove_dir_all(&results).ok();
}

#[test]
fn list_names_every_figure_without_simulating() {
    let out = experiments().arg("--list").output().unwrap();
    assert!(out.status.success());
    let so = stdout(&out);
    for name in ["table3_mpki", "fig11_mpki", "energy_summary"] {
        assert!(so.lines().any(|l| l == name), "missing {name}");
    }
}

#[test]
fn a_stalled_cell_is_failed_by_the_watchdog_not_hung_forever() {
    let start = std::time::Instant::now();
    let out = experiments()
        .env("ACIC_STALL_CELL", "0:5:30000")
        .env("ACIC_BENCH_THREADS", "1")
        .env("ACIC_CELL_TIMEOUT_SECS", "1")
        .args(["--only", "table3_mpki"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(25),
        "the watchdog must fire long before the 30s stall ends"
    );
    let se = stderr(&out);
    assert!(se.contains("==== failure summary ===="), "stderr: {se}");
    assert!(se.contains("cell watchdog"), "stderr: {se}");
}

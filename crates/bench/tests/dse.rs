//! End-to-end properties of the adaptive design-space exploration:
//!
//! 1. **Pruning correctness** — on the pinned space (LRU, SRRIP, and
//!    four ACIC points over two SPEC apps), the DSE survivor set is a
//!    superset of the true Pareto frontier computed by an exhaustive
//!    full-detail sweep (interval pruning never produces a false
//!    prune), the surviving configurations' final reports are
//!    bit-identical to the exhaustive reference (the final rung
//!    re-simulates at full fidelity), and the two frontier sets agree
//!    exactly.
//! 2. **Kill and resume** — a `--dse` sweep aborted mid-rung resumes
//!    from its `--results` journal with zero recomputed finished
//!    cells and reproduces the uninterrupted run's provenance report
//!    line for line.

use acic_bench::dse::{midpoints, pareto_frontier, pinned_space, run_dse, DseOptions, Ladder};
use acic_bench::Runner;
use acic_sim::{SampleSchedule, SimConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("acic-dse-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn dse_frontier_is_a_superset_of_the_exhaustive_pareto_frontier() {
    let space = pinned_space();
    // The pinned space spans the three scheme families the paper
    // compares, so a false prune of any of them would be caught here.
    let labels: Vec<&str> = space.configs.iter().map(|c| c.label.as_str()).collect();
    assert!(labels.contains(&"lru") && labels.contains(&"srrip"));
    assert!(labels.iter().filter(|l| l.starts_with("acic")).count() >= 4);

    let budget = 60_000;
    let opts = DseOptions {
        ladder: Ladder::new(budget, 2, SampleSchedule::Full),
        store: None,
        threads: 2,
        ..DseOptions::default()
    };
    let run = run_dse(&space, &opts).expect("sweep completes");

    // Exhaustive full-detail reference over every configuration.
    let runner = Runner {
        instructions: budget,
        baseline: SimConfig::default(),
        store: None,
        cell_timeout: None,
        window_threads: 0,
        supervise: None,
    };
    let configs: Vec<SimConfig> = space
        .configs
        .iter()
        .map(|c| c.cfg.with_schedule(SampleSchedule::Full))
        .collect();
    let grid = runner.run_grid(&configs, &space.specs);
    let points: Vec<Vec<f64>> = grid.iter().map(|reps| midpoints(reps)).collect();
    let true_frontier: BTreeSet<usize> = pareto_frontier(&points)
        .into_iter()
        .enumerate()
        .filter(|&(_, keep)| keep)
        .map(|(i, _)| i)
        .collect();
    assert!(!true_frontier.is_empty());

    // (a) No false prunes: every true-frontier configuration survived.
    for &i in &true_frontier {
        assert!(
            run.outcomes[i].alive,
            "config '{}' is on the true Pareto frontier but was pruned{}",
            run.outcomes[i].label,
            run.outcomes[i]
                .pruned_by
                .as_ref()
                .map(|by| format!(" (by '{by}')"))
                .unwrap_or_default()
        );
    }

    // (b) Identical ranking: survivors' final-rung reports are
    // bit-identical to the exhaustive full-detail reference, so any
    // ranking derived from them agrees by construction.
    for &i in &run.survivors() {
        assert_eq!(
            format!("{:?}", run.outcomes[i].reports),
            format!("{:?}", grid[i]),
            "config '{}' final-rung reports differ from the exhaustive reference",
            run.outcomes[i].label
        );
    }

    // (c) The frontier over the survivors equals the true frontier
    // exactly (no false prunes + bit-identical points).
    let survivors = run.survivors();
    let survivor_points: Vec<Vec<f64>> = survivors
        .iter()
        .map(|&i| midpoints(&run.outcomes[i].reports))
        .collect();
    let dse_frontier: BTreeSet<usize> = survivors
        .iter()
        .zip(pareto_frontier(&survivor_points))
        .filter(|&(_, keep)| keep)
        .map(|(&i, _)| i)
        .collect();
    assert_eq!(dse_frontier, true_frontier, "frontier sets must agree");
}

const BUDGET: &str = "2000";

fn experiments() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    for var in [
        "ACIC_EXP_INSTRUCTIONS",
        "ACIC_BENCH_THREADS",
        "ACIC_CELL_TIMEOUT_SECS",
        "ACIC_PANIC_CELL",
        "ACIC_ABORT_CELL",
        "ACIC_STALL_CELL",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("ACIC_EXP_INSTRUCTIONS", BUDGET);
    cmd
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The provenance report without its header line (the header carries
/// this run's replayed/computed counters, which legitimately differ
/// between an uninterrupted run and a resumed one).
fn report_body(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    text.lines().skip(1).collect::<Vec<_>>().join("\n")
}

#[test]
fn killed_dse_sweep_resumes_with_zero_recomputed_finished_cells() {
    let dir = scratch("resume");
    std::fs::create_dir_all(&dir).unwrap();
    let results = dir.join("results");
    let results_arg = results.to_str().unwrap().to_string();
    let ref_report = dir.join("reference.jsonl");
    let res_report = dir.join("resumed.jsonl");

    // Reference: one uninterrupted run without a store.
    let reference = experiments()
        .args([
            "--dse",
            "--smoke",
            "--dse-report",
            ref_report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(reference.status.success(), "stderr: {}", stderr(&reference));

    // Killed run: one worker journals configs 0 and 1 of rung 0, then
    // the process dies hard (abort, not a clean panic) in config 2.
    let killed = experiments()
        .env("ACIC_ABORT_CELL", "2:0")
        .env("ACIC_BENCH_THREADS", "1")
        .args(["--dse", "--smoke", "--results", &results_arg])
        .output()
        .unwrap();
    assert!(!killed.status.success(), "the abort must kill the run");
    assert!(results.join("results.jsonl").exists(), "journal survives");

    // Resume: rung 0 replays the two finished cells and recomputes
    // only the rest; the provenance report matches the uninterrupted
    // reference line for line.
    let resumed = experiments()
        .env("ACIC_BENCH_THREADS", "1")
        .args([
            "--dse",
            "--smoke",
            "--results",
            &results_arg,
            "--dse-report",
            res_report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    let so = stdout(&resumed);
    assert!(
        so.contains("(2 cells replayed, 2 computed)"),
        "rung 0 must replay exactly the cells finished before the kill:\n{so}"
    );
    assert_eq!(
        report_body(&res_report),
        report_body(&ref_report),
        "resumed provenance must match the uninterrupted reference"
    );

    // A third run replays everything — zero recomputed finished cells.
    let replayed = experiments()
        .args(["--dse", "--smoke", "--results", &results_arg])
        .output()
        .unwrap();
    assert!(replayed.status.success(), "stderr: {}", stderr(&replayed));
    let so = stdout(&replayed);
    for line in so.lines().filter(|l| l.trim_start().starts_with("rung ")) {
        assert!(
            line.contains(", 0 computed)"),
            "every rung must be served from the journal:\n{so}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

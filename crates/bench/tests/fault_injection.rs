//! Fault-injection properties for the two on-disk stores.
//!
//! The store-layer invariant under injected IO faults
//! ([`acic_bench::fault`]) is: **loud failure or bit-identical
//! success, never silent corruption** — a read that parses yields
//! exactly the bytes that were written, or the caller sees an error
//! (or, for the result journal, a per-cell miss that recomputes).
//! A second family of properties pins the resume guarantee: under the
//! crash model (EIO / ENOSPC / torn rename — atomic rename honored),
//! every acknowledged `put` survives reopen, and a torn journal
//! recovers into a rerun with no lost and no double-counted cell.

use acic_bench::fault::{self, Fault, FaultPlan};
use acic_bench::result_store::ResultStore;
use acic_sim::{IcacheOrg, SimConfig, SimReport, Simulator};
use acic_trace::PackedTrace;
use acic_workloads::{AppProfile, WorkloadSpec};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A fresh scratch directory per property case (cases run in one
/// process; a shared dir would alias journals across cases).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "acic-faultprop-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One small frozen container, serialized once for every case.
fn container_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        WorkloadSpec::Single(AppProfile::web_search())
            .materialize(2_000)
            .to_bytes()
    })
}

/// A few distinct finished-cell reports (distinct budgets and
/// configs), simulated once for every case.
fn reports() -> &'static Vec<SimReport> {
    static REPORTS: OnceLock<Vec<SimReport>> = OnceLock::new();
    REPORTS.get_or_init(|| {
        let acic = SimConfig::default().with_org(IcacheOrg::acic_default());
        let base = SimConfig::default();
        [
            (AppProfile::sibench(), &base, 1_500u64),
            (AppProfile::sibench(), &acic, 1_500),
            (AppProfile::web_search(), &base, 1_500),
            (AppProfile::web_search(), &acic, 2_500),
        ]
        .into_iter()
        .map(|(app, cfg, n)| Simulator::run(cfg, &WorkloadSpec::Single(app).generator(n)))
        .collect()
    })
}

fn key(i: usize) -> String {
    format!("cell-{i}")
}

fn same_report(a: &SimReport, b: &SimReport) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    /// Trace containers under an arbitrary seeded fault plan over
    /// both the write and the read: whenever `from_bytes` accepts
    /// what came back, it is bit-identical to what went in.
    #[test]
    fn trace_containers_fail_loudly_or_round_trip(seed in any::<u64>(), density in 0u8..=60u8) {
        let bytes = container_bytes();
        let dir = scratch("tc");
        let path = dir.join("t.acictrace");
        let (_wrote, _) = fault::with_faults(FaultPlan::seeded(seed, density), || {
            fault::write_atomic(&path, bytes)
        });
        let (raw, _) = fault::with_faults(FaultPlan::seeded(seed ^ 0x5bd1_e995, density), || {
            fault::read(&path)
        });
        if let Ok(raw) = raw {
            if let Ok(trace) = PackedTrace::from_bytes(&raw) {
                prop_assert!(
                    trace.to_bytes() == bytes,
                    "a container that parses must be bit-identical to the recorded one \
                     (seed {seed}, density {density}%)"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Silent media corruption — a write that flips one bit and still
    /// reports success — is always rejected by the container parser:
    /// the checksum covers every byte after the magic, and a flipped
    /// magic or checksum field fails just the same.
    #[test]
    fn any_single_bit_flip_on_write_is_caught_at_parse(bit in any::<u32>()) {
        let bytes = container_bytes();
        let dir = scratch("flip");
        let path = dir.join("t.acictrace");
        let (wrote, injected) = fault::with_faults(
            FaultPlan::script(vec![Some(Fault::BitFlipWrite(bit))]),
            || fault::write_atomic(&path, bytes),
        );
        prop_assert!(wrote.is_ok(), "the flip is silent at write time");
        prop_assert_eq!(injected, 1);
        let raw = std::fs::read(&path).unwrap();
        prop_assert!(raw != bytes, "exactly one bit differs");
        prop_assert!(
            PackedTrace::from_bytes(&raw).is_err(),
            "bit {bit} flipped silently yet the container still parsed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash model (atomic rename honored): every `put` that returned
    /// `Ok` is present and bit-identical after reopening the store,
    /// no matter which puts failed around it.
    #[test]
    fn acknowledged_puts_survive_crash_faults(seed in any::<u64>()) {
        // Derive a crash-only script (never TruncateTmp/BitFlip*: those
        // model non-atomic or silently-corrupting storage, where
        // durability of *previous* writes is exactly what's lost).
        let crash = [
            None,
            Some(Fault::WriteEio),
            Some(Fault::WriteEnospc),
            Some(Fault::TornRename),
        ];
        let script: Vec<Option<Fault>> = (0..reports().len() as u64)
            .map(|op| crash[(seed.rotate_left(7 * op as u32) % 4) as usize])
            .collect();
        let dir = scratch("crash");
        let store = ResultStore::open(&dir).unwrap();
        let mut acked = Vec::new();
        fault::with_faults(FaultPlan::script(script), || {
            for (i, r) in reports().iter().enumerate() {
                if store.put(&key(i), r).is_ok() {
                    acked.push(i);
                }
            }
        });
        let reopened = ResultStore::open(&dir).unwrap();
        for &i in &acked {
            let got = reopened.get(&key(i));
            prop_assert!(got.is_some(), "acknowledged put '{}' lost on reopen", key(i));
            prop_assert!(
                same_report(&got.unwrap(), &reports()[i]),
                "acknowledged put '{}' came back different",
                key(i)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Reopening a healthy journal under an arbitrary fault plan:
    /// either the open fails loudly, or every cell it reports is
    /// bit-identical to what was stored — a faulted line degrades to
    /// a miss (recompute), never to a different report.
    #[test]
    fn reopen_under_faults_never_silently_corrupts(seed in any::<u64>(), density in 0u8..=80u8) {
        let dir = scratch("reopen");
        let store = ResultStore::open(&dir).unwrap();
        for (i, r) in reports().iter().enumerate() {
            store.put(&key(i), r).unwrap();
        }
        let (reopened, _) = fault::with_faults(FaultPlan::seeded(seed, density), || {
            ResultStore::open(&dir)
        });
        if let Ok(s) = reopened {
            for (i, r) in reports().iter().enumerate() {
                if let Some(got) = s.get(&key(i)) {
                    prop_assert!(
                        same_report(&got, r),
                        "cell '{}' decoded to a different report under seed {seed}",
                        key(i)
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A journal torn at an arbitrary byte offset recovers into a
    /// rerun with no loss and no double-count: surviving entries are
    /// bit-identical, re-putting the missing cells restores exactly
    /// one journal line per cell.
    #[test]
    fn torn_journal_recovers_without_loss_or_double_count(cut_pct in 0u8..=100u8) {
        let n = reports().len();
        let dir = scratch("torn");
        let store = ResultStore::open(&dir).unwrap();
        for (i, r) in reports().iter().enumerate() {
            store.put(&key(i), r).unwrap();
        }
        let journal = store.journal_path().to_path_buf();
        let full = std::fs::read(&journal).unwrap();
        let keep = full.len() * cut_pct as usize / 100;
        std::fs::write(&journal, &full[..keep]).unwrap();
        match ResultStore::open(&dir) {
            // The tear ate into the schema header: loud, typed failure.
            Err(e) => prop_assert!(e.to_string().contains(&journal.display().to_string())),
            Ok(s) => {
                prop_assert!(s.len() <= n);
                // Rerun: recompute (here: re-put) exactly the missing cells.
                for (i, r) in reports().iter().enumerate() {
                    match s.get(&key(i)) {
                        Some(got) => prop_assert!(same_report(&got, r)),
                        None => s.put(&key(i), r).unwrap(),
                    }
                }
                prop_assert_eq!(s.len(), n, "every cell present after the rerun");
                let text = std::fs::read_to_string(&journal).unwrap();
                let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
                prop_assert_eq!(lines, n + 1, "one line per cell plus the header");
                for (i, r) in reports().iter().enumerate() {
                    let got = ResultStore::open(&dir).unwrap().get(&key(i));
                    prop_assert!(got.is_some_and(|g| same_report(&g, r)));
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

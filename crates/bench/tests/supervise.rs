//! End-to-end checks of `--supervise`: one child process per cell,
//! hard timeouts, retry with backoff, crash forensics, and
//! bit-identity with the in-process reference path — all on the small
//! `table3_mpki` grid (1 config x 10 specs) at a tiny instruction
//! budget so the debug binary stays fast.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

const BUDGET: &str = "2000";
const FIGURE: &str = "table3_mpki";

fn experiments() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    // Isolate from ambient configuration: the harness (and every
    // child it spawns) reads these.
    for var in acic_bench::fault::CELL_FAULT_VARS {
        cmd.env_remove(var);
    }
    for var in [
        "ACIC_EXP_INSTRUCTIONS",
        "ACIC_BENCH_THREADS",
        "ACIC_CELL_TIMEOUT_SECS",
        "ACIC_SUPERVISE_RETRIES",
        "ACIC_SUPERVISE_BACKOFF_MS",
        "ACIC_WINDOW_THREADS",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("ACIC_EXP_INSTRUCTIONS", BUDGET);
    // Keep test-time retry delays in the milliseconds.
    cmd.env("ACIC_SUPERVISE_BACKOFF_MS", "10");
    cmd
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("acic-supervise-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The single `.txt` crash report under `dir`.
fn crash_report(dir: &Path) -> String {
    let mut reports: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("crash dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    assert_eq!(
        reports.len(),
        1,
        "want exactly one crash report: {reports:?}"
    );
    std::fs::read_to_string(reports.pop().unwrap()).unwrap()
}

/// The in-process reference output, computed once per scenario that
/// compares against it.
fn reference_stdout() -> String {
    let out = experiments().args(["--only", FIGURE]).output().unwrap();
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    stdout(&out)
}

#[test]
fn healthy_supervised_run_is_bit_identical_to_in_process() {
    let dir = scratch("healthy");
    let ref_rs = dir.join("ref-results");
    let sup_rs = dir.join("sup-results");
    let sup_cr = dir.join("crash");

    let reference = experiments()
        .args(["--only", FIGURE, "--results", ref_rs.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(reference.status.success(), "stderr: {}", stderr(&reference));

    let supervised = experiments()
        .args([
            "--only",
            FIGURE,
            "--results",
            sup_rs.to_str().unwrap(),
            "--supervise",
            "--crash-reports",
            sup_cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        supervised.status.success(),
        "stderr: {}",
        stderr(&supervised)
    );
    assert_eq!(
        stdout(&supervised),
        stdout(&reference),
        "supervised stdout must be bit-identical"
    );
    assert_eq!(
        std::fs::read(sup_rs.join("results.jsonl")).unwrap(),
        std::fs::read(ref_rs.join("results.jsonl")).unwrap(),
        "supervised journal must be byte-identical"
    );
    let stray = std::fs::read_dir(&sup_cr)
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "txt"))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(stray, 0, "a healthy run must leave no crash reports");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_sigkilled_child_is_retried_as_transient_and_the_campaign_recovers() {
    let dir = scratch("kill");
    let cr = dir.join("crash");
    let out = experiments()
        .env("ACIC_KILL_CELL", "0:1")
        .env("ACIC_FAULT_ATTEMPTS", "1") // first attempt only
        .args([
            "--only",
            FIGURE,
            "--supervise",
            "--crash-reports",
            cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert_eq!(stdout(&out), reference_stdout(), "campaign bit-identical");
    let report = crash_report(&cr);
    assert!(report.contains("killed by signal 9"), "report:\n{report}");
    assert!(report.contains("[transient]"), "report:\n{report}");
    assert!(report.contains("retrying in"), "report:\n{report}");
    assert!(
        report.contains("disposition: recovered"),
        "report:\n{report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_aborting_cell_costs_one_cell_not_the_campaign() {
    let dir = scratch("abort");
    let cr = dir.join("crash");
    let out = experiments()
        .env("ACIC_ABORT_CELL", "0:1") // every attempt
        .args([
            "--only",
            FIGURE,
            "--supervise",
            "--crash-reports",
            cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let se = stderr(&out);
    assert!(
        se.contains("9 of 10 cells completed"),
        "the other nine cells must survive the abort: {se}"
    );
    assert!(se.contains("crash reports:"), "stderr: {se}");
    let report = crash_report(&cr);
    // abort() raises SIGABRT: deterministic, retried once to confirm.
    assert!(report.contains("SIGABRT"), "report:\n{report}");
    assert!(report.contains("[deterministic]"), "report:\n{report}");
    assert!(report.contains("attempt 2"), "report:\n{report}");
    assert!(!report.contains("attempt 3"), "report:\n{report}");
    assert!(
        report.contains("disposition: failed (deterministic)"),
        "report:\n{report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_stalled_child_is_hard_killed_at_the_deadline() {
    let dir = scratch("stall");
    let cr = dir.join("crash");
    let start = Instant::now();
    let out = experiments()
        .env("ACIC_STALL_CELL", "0:1:30000")
        .env("ACIC_FAULT_ATTEMPTS", "1")
        .env("ACIC_CELL_TIMEOUT_SECS", "2")
        .args([
            "--only",
            FIGURE,
            "--supervise",
            "--crash-reports",
            cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        start.elapsed() < Duration::from_secs(25),
        "the hard kill must fire long before the 30s stall ends"
    );
    assert_eq!(stdout(&out), reference_stdout(), "campaign bit-identical");
    let report = crash_report(&cr);
    assert!(
        report.contains("hard timeout after 2s"),
        "report:\n{report}"
    );
    assert!(
        report.contains("disposition: recovered"),
        "report:\n{report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_deterministically_panicking_cell_fails_loudly_with_forensics() {
    let dir = scratch("panic");
    let cr = dir.join("crash");
    let out = experiments()
        .env("ACIC_PANIC_CELL", "0:1") // every attempt
        .args([
            "--only",
            FIGURE,
            "--supervise",
            "--crash-reports",
            cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    let se = stderr(&out);
    assert!(se.contains("9 of 10 cells completed"), "stderr: {se}");
    assert!(
        se.contains("child failed after 2 attempt(s)"),
        "stderr: {se}"
    );
    let report = crash_report(&cr);
    // A Rust panic exits 101; the stderr tail carries the message.
    assert!(
        report.contains("exited with status 101"),
        "report:\n{report}"
    );
    assert!(report.contains("stderr tail:"), "report:\n{report}");
    assert!(report.contains("injected test panic"), "report:\n{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_failed_supervised_sweep_resumes_without_recomputing_finished_cells() {
    let dir = scratch("resume");
    let rs = dir.join("results");
    let cr = dir.join("crash");

    // First supervised run: one cell panics deterministically, the
    // other nine complete and are journaled.
    let failed = experiments()
        .env("ACIC_PANIC_CELL", "0:1")
        .args([
            "--only",
            FIGURE,
            "--results",
            rs.to_str().unwrap(),
            "--supervise",
            "--crash-reports",
            cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(failed.status.code(), Some(1), "stderr: {}", stderr(&failed));
    assert!(rs.join("results.jsonl").exists(), "journal survives");

    // Clean rerun: exactly the one failed cell recomputes.
    let resumed = experiments()
        .args([
            "--only",
            FIGURE,
            "--results",
            rs.to_str().unwrap(),
            "--supervise",
            "--crash-reports",
            cr.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    assert!(
        stderr(&resumed).contains("[results: 9 replayed, 1 computed]"),
        "stderr: {}",
        stderr(&resumed)
    );
    assert_eq!(
        stdout(&resumed),
        reference_stdout(),
        "resumed supervised sweep must match the in-process reference"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Property suite for the supervisor's pure retry/backoff policy
//! ([`acic_bench::supervise::policy`]).
//!
//! The policy is a function of its arguments — no clocks, no sleeps,
//! no environment — so every property here runs without spawning a
//! child or waiting a millisecond. Pinned invariants: backoff
//! schedules are monotone non-decreasing and capped, equal seeds
//! replay equal schedules, and the transient/deterministic
//! classification drives the attempt budget exactly as documented
//! (full budget for transient failures, one confirmation retry for
//! deterministic ones).

use acic_bench::supervise::policy::{
    classify, ChildOutcome, Decision, FailureClass, RetryPolicy, SIGABRT,
};
use proptest::prelude::*;
use std::time::Duration;

/// A policy from raw knobs, keeping base ≤ cap so the cap is a real
/// ceiling rather than degenerate.
fn policy(base_ms: u64, cap_factor: u64, seed: u64) -> RetryPolicy {
    let base = Duration::from_millis(base_ms);
    RetryPolicy {
        base,
        cap: base * cap_factor as u32,
        seed,
        ..RetryPolicy::default()
    }
}

/// An outcome from a small discriminant + payload, covering every arm
/// of the taxonomy.
fn outcome(kind: u8, payload: i32) -> ChildOutcome {
    match kind % 5 {
        0 => ChildOutcome::Exited(payload),
        1 => ChildOutcome::Signaled(payload),
        2 => ChildOutcome::TimedOut(Duration::from_secs(payload.unsigned_abs() as u64)),
        3 => ChildOutcome::SpawnFailed(format!("errno {payload}")),
        _ => ChildOutcome::NoReport,
    }
}

proptest! {
    /// Backoff never decreases from one attempt to the next, for any
    /// key, seed, and base/cap shape: the jitter fraction stays under
    /// 25% while the raw delay doubles, and the cap clamps both sides
    /// of the comparison equally.
    #[test]
    fn backoff_is_monotone_non_decreasing(
        seed in any::<u64>(),
        key_salt in any::<u64>(),
        base_ms in 1u64..=500,
        cap_factor in 1u64..=100,
    ) {
        let p = policy(base_ms, cap_factor, seed);
        let key = format!("cell-{key_salt}");
        let mut prev = Duration::ZERO;
        for attempt in 1..=24u32 {
            let d = p.backoff(&key, attempt);
            prop_assert!(
                d >= prev,
                "delay shrank at attempt {attempt}: {prev:?} -> {d:?} (seed {seed})"
            );
            prev = d;
        }
    }

    /// No delay ever exceeds the cap, and once the raw exponential
    /// passes it the schedule pins there exactly.
    #[test]
    fn backoff_respects_the_cap(
        seed in any::<u64>(),
        key_salt in any::<u64>(),
        base_ms in 1u64..=500,
        cap_factor in 1u64..=100,
    ) {
        let p = policy(base_ms, cap_factor, seed);
        let key = format!("cell-{key_salt}");
        for attempt in 1..=30u32 {
            prop_assert!(p.backoff(&key, attempt) <= p.cap);
        }
        prop_assert_eq!(p.backoff(&key, 30), p.cap, "far attempts pin at the cap");
    }

    /// Equal seeds replay equal schedules; the jitter is a pure
    /// function of (seed, key, attempt), so a failing supervision run
    /// reproduces delay-for-delay.
    #[test]
    fn backoff_is_deterministic_under_a_fixed_seed(
        seed in any::<u64>(),
        key_salt in any::<u64>(),
        base_ms in 1u64..=500,
    ) {
        let a = policy(base_ms, 50, seed);
        let b = policy(base_ms, 50, seed);
        let key = format!("cell-{key_salt}");
        for attempt in 1..=10u32 {
            prop_assert_eq!(a.backoff(&key, attempt), b.backoff(&key, attempt));
        }
    }

    /// The classification matrix: exactly the supervisor-kill,
    /// external-signal, and spawn-failure arms are transient; every
    /// exit status, SIGABRT, and the no-report protocol violation are
    /// deterministic.
    #[test]
    fn classification_matrix_over_exit_evidence(kind in any::<u8>(), payload in any::<i32>()) {
        let o = outcome(kind, payload);
        let want = match &o {
            ChildOutcome::TimedOut(_) | ChildOutcome::SpawnFailed(_) => FailureClass::Transient,
            ChildOutcome::Signaled(sig) if *sig == SIGABRT => FailureClass::Deterministic,
            ChildOutcome::Signaled(_) => FailureClass::Transient,
            ChildOutcome::Exited(_) | ChildOutcome::NoReport => FailureClass::Deterministic,
        };
        prop_assert_eq!(classify(&o), want, "{}", o);
    }

    /// `decide` spends exactly the class's attempt budget for every
    /// outcome shape and retry count: retries strictly below the cap,
    /// a give-up carrying the class at and beyond it.
    #[test]
    fn decide_spends_exactly_the_class_budget(
        kind in any::<u8>(),
        payload in any::<i32>(),
        key_salt in any::<u64>(),
        transient_attempts in 1u32..=6,
        deterministic_attempts in 1u32..=3,
    ) {
        let p = RetryPolicy {
            transient_attempts,
            deterministic_attempts,
            ..RetryPolicy::default()
        };
        let o = outcome(kind, payload);
        let key = format!("cell-{key_salt}");
        let class = classify(&o);
        let cap = p.attempt_cap(class);
        for attempts_made in 1..=cap + 2 {
            match p.decide(&key, &o, attempts_made) {
                Decision::Retry(delay) => {
                    prop_assert!(attempts_made < cap, "retried at or past the cap ({o})");
                    prop_assert_eq!(delay, p.backoff(&key, attempts_made));
                }
                Decision::GiveUp(got) => {
                    prop_assert!(attempts_made >= cap, "gave up under the cap ({o})");
                    prop_assert_eq!(got, class);
                }
            }
        }
    }
}

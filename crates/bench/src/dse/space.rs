//! Design-space declarations: which configurations and workloads a
//! DSE sweep explores.
//!
//! A space is a list of [`DseConfig`]s (each a full [`SimConfig`]
//! with a display label) crossed with a list of workload specs. Spaces
//! come from three places: the built-in spaces below (the smoke space
//! for CI, the pinned space the correctness test sweeps exhaustively,
//! and the ~290-config cache-geometry space behind the committed
//! baseline numbers), or a small JSON file (`experiments --dse-space
//! <file>`) declaring axes that are crossed into ACIC configurations:
//!
//! ```json
//! {
//!   "name": "geometry",
//!   "apps": ["sibench", "x264", "gcc"],
//!   "orgs": ["lru", "srrip", "acic"],
//!   "sets": [16, 32, 64],
//!   "ways": [4, 8],
//!   "cshr_entries": [64, 256],
//!   "history_bits": [2, 4],
//!   "filter_entries": [16],
//!   "hrt_entries": [1024]
//! }
//! ```
//!
//! `lru`/`srrip` are single fixed configurations (LRU doubles as the
//! protected baseline — it is never pruned, so every sweep retains
//! the reference that MPKI reductions are reported against); `acic`
//! expands to the cross product of the axes. Omitted axes default to
//! the paper's Table I values. Axis values are validated against the
//! same constraints `AcicConfig::validate` enforces, so a bad space
//! file fails at parse time with a message instead of panicking a
//! worker thread mid-sweep.

use crate::json::Json;
use acic_cache::CacheGeometry;
use acic_core::AcicConfig;
use acic_sim::{IcacheOrg, SimConfig};
use acic_workloads::{AppProfile, WorkloadSpec};

/// One point of the design space: a labelled simulator configuration.
#[derive(Clone, Debug)]
pub struct DseConfig {
    /// Display label (stable across runs; used in reports and
    /// provenance).
    pub label: String,
    /// The full simulator configuration (schedule is overwritten per
    /// rung by the scheduler).
    pub cfg: SimConfig,
    /// Protected configs are never pruned — the baseline every
    /// objective is reported against must survive to the last rung.
    pub protected: bool,
}

/// A declared design space: configurations × workload specs.
#[derive(Clone, Debug)]
pub struct DseSpace {
    /// Space name (report provenance).
    pub name: String,
    /// Workload specs every configuration is evaluated on.
    pub specs: Vec<WorkloadSpec>,
    /// The configurations to explore.
    pub configs: Vec<DseConfig>,
}

impl DseSpace {
    /// Total cell count (configs × specs) at one rung.
    pub fn cells(&self) -> usize {
        self.configs.len() * self.specs.len()
    }

    /// Indices of protected configurations.
    pub fn protected(&self) -> Vec<bool> {
        self.configs.iter().map(|c| c.protected).collect()
    }
}

/// Builds a validated ACIC configuration from axis values, defaulting
/// every unlisted knob to Table I.
///
/// # Errors
///
/// Returns a message naming the offending axis value instead of
/// panicking (space files are user input).
pub fn acic_point(
    sets: usize,
    ways: usize,
    cshr_entries: usize,
    history_bits: u32,
    filter_entries: usize,
    hrt_entries: usize,
) -> Result<AcicConfig, String> {
    if !sets.is_power_of_two() {
        return Err(format!("sets must be a power of two, got {sets}"));
    }
    if ways == 0 {
        return Err("ways must be positive".into());
    }
    if !(1..=16).contains(&history_bits) {
        return Err(format!(
            "history_bits must be in 1..=16, got {history_bits}"
        ));
    }
    if !hrt_entries.is_power_of_two() {
        return Err(format!(
            "hrt_entries must be a power of two, got {hrt_entries}"
        ));
    }
    let base = AcicConfig::default();
    if cshr_entries == 0 || !cshr_entries.is_multiple_of(base.cshr_sets) {
        return Err(format!(
            "cshr_entries must divide into {} sets, got {cshr_entries}",
            base.cshr_sets
        ));
    }
    let cfg = AcicConfig {
        icache: CacheGeometry::from_sets_ways(sets, ways),
        filter_entries,
        hrt_entries,
        history_bits,
        cshr_entries,
        ..base
    };
    cfg.validate();
    Ok(cfg)
}

fn acic_label(cfg: &AcicConfig) -> String {
    format!(
        "acic-s{}w{}-c{}-h{}-f{}-t{}",
        cfg.icache.sets(),
        cfg.icache.ways(),
        cfg.cshr_entries,
        cfg.history_bits,
        cfg.filter_entries,
        cfg.hrt_entries
    )
}

fn org_config(base: &SimConfig, org: IcacheOrg) -> SimConfig {
    base.with_org(org)
}

/// The axes an `acic` org expands over (cross product).
#[derive(Clone, Debug)]
pub struct AcicAxes {
    /// i-cache set counts.
    pub sets: Vec<usize>,
    /// i-cache associativities.
    pub ways: Vec<usize>,
    /// CSHR entry counts.
    pub cshr_entries: Vec<usize>,
    /// History register widths.
    pub history_bits: Vec<u32>,
    /// i-Filter sizes.
    pub filter_entries: Vec<usize>,
    /// HRT sizes.
    pub hrt_entries: Vec<usize>,
}

impl Default for AcicAxes {
    fn default() -> Self {
        let d = AcicConfig::default();
        AcicAxes {
            sets: vec![d.icache.sets()],
            ways: vec![d.icache.ways()],
            cshr_entries: vec![d.cshr_entries],
            history_bits: vec![d.history_bits],
            filter_entries: vec![d.filter_entries],
            hrt_entries: vec![d.hrt_entries],
        }
    }
}

impl AcicAxes {
    /// Expands the cross product into labelled configurations.
    ///
    /// # Errors
    ///
    /// Returns the first axis-validation failure.
    pub fn expand(&self, base: &SimConfig) -> Result<Vec<DseConfig>, String> {
        let mut out = Vec::new();
        for &sets in &self.sets {
            for &ways in &self.ways {
                for &cshr in &self.cshr_entries {
                    for &hist in &self.history_bits {
                        for &filt in &self.filter_entries {
                            for &hrt in &self.hrt_entries {
                                let acic = acic_point(sets, ways, cshr, hist, filt, hrt)?;
                                out.push(DseConfig {
                                    label: acic_label(&acic),
                                    cfg: org_config(base, IcacheOrg::Acic(acic)),
                                    protected: false,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Resolves an application name to its profile, tolerating `_` for
/// `-` (space files are hand-written).
pub fn app_by_name(name: &str) -> Result<AppProfile, String> {
    AppProfile::by_name(name)
        .or_else(|| AppProfile::by_name(&name.replace('_', "-")))
        .ok_or_else(|| format!("unknown application '{name}'"))
}

fn usize_axis(doc: &Json, key: &str, default: Vec<usize>) -> Result<Vec<usize>, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.num()
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .map(|n| n as usize)
                    .ok_or_else(|| format!("axis '{key}' holds a non-integer"))
            })
            .collect(),
        Some(_) => Err(format!("axis '{key}' must be an array of integers")),
    }
}

/// Parses a space file (see the module docs for the format).
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn parse_space(text: &str) -> Result<DseSpace, String> {
    let doc = Json::parse(text)?;
    let name = doc
        .get("name")
        .and_then(Json::str_val)
        .unwrap_or("unnamed")
        .to_string();
    let apps = match doc.get("apps") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.str_val()
                    .ok_or_else(|| "apps must be strings".to_string())
                    .and_then(app_by_name)
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("space file needs an 'apps' array".into()),
    };
    if apps.is_empty() {
        return Err("space file lists no apps".into());
    }
    let orgs: Vec<String> = match doc.get("orgs") {
        None => vec!["lru".into(), "acic".into()],
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.str_val()
                    .map(str::to_string)
                    .ok_or_else(|| "orgs must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("'orgs' must be an array of strings".into()),
    };
    let defaults = AcicAxes::default();
    let axes = AcicAxes {
        sets: usize_axis(&doc, "sets", defaults.sets)?,
        ways: usize_axis(&doc, "ways", defaults.ways)?,
        cshr_entries: usize_axis(&doc, "cshr_entries", defaults.cshr_entries)?,
        history_bits: usize_axis(&doc, "history_bits", vec![4])?
            .into_iter()
            .map(|b| b as u32)
            .collect(),
        filter_entries: usize_axis(&doc, "filter_entries", defaults.filter_entries)?,
        hrt_entries: usize_axis(&doc, "hrt_entries", defaults.hrt_entries)?,
    };
    let base = SimConfig::default();
    let mut configs = Vec::new();
    for org in &orgs {
        match org.as_str() {
            "lru" => configs.push(DseConfig {
                label: "lru".into(),
                cfg: org_config(&base, IcacheOrg::Lru),
                protected: true,
            }),
            "srrip" => configs.push(DseConfig {
                label: "srrip".into(),
                cfg: org_config(&base, IcacheOrg::Srrip),
                protected: false,
            }),
            "acic" => configs.extend(axes.expand(&base)?),
            other => return Err(format!("unknown org '{other}' (use lru, srrip, acic)")),
        }
    }
    if configs.is_empty() {
        return Err("space expands to zero configurations".into());
    }
    Ok(DseSpace {
        name,
        specs: WorkloadSpec::singles(&apps),
        configs,
    })
}

/// The CI smoke space: one app, four configurations — small enough
/// for `--dse-smoke` to finish in seconds, rich enough to exercise
/// protection, pruning, and the ladder.
pub fn smoke_space() -> DseSpace {
    let base = SimConfig::default();
    let acic = acic_point(64, 8, 256, 4, 16, 1024).expect("valid point");
    let tiny = acic_point(16, 4, 64, 2, 8, 512).expect("valid point");
    DseSpace {
        name: "smoke".into(),
        specs: WorkloadSpec::singles(&[AppProfile::sibench()]),
        configs: vec![
            DseConfig {
                label: "lru".into(),
                cfg: base.clone(),
                protected: true,
            },
            DseConfig {
                label: "srrip".into(),
                cfg: org_config(&base, IcacheOrg::Srrip),
                protected: false,
            },
            DseConfig {
                label: acic_label(&acic),
                cfg: org_config(&base, IcacheOrg::Acic(acic)),
                protected: false,
            },
            DseConfig {
                label: acic_label(&tiny),
                cfg: org_config(&base, IcacheOrg::Acic(tiny)),
                protected: false,
            },
        ],
    }
}

/// The pinned space `tests/dse.rs` sweeps exhaustively at full
/// detail: six configurations spanning LRU, SRRIP, and four ACIC
/// points (the paper's geometry, a capacity-starved one, and two
/// predictor ablations) over two applications — 12 cells, small
/// enough to brute-force, diverse enough that the true Pareto
/// frontier is non-trivial.
pub fn pinned_space() -> DseSpace {
    let base = SimConfig::default();
    let mut configs = vec![
        DseConfig {
            label: "lru".into(),
            cfg: base.clone(),
            protected: true,
        },
        DseConfig {
            label: "srrip".into(),
            cfg: org_config(&base, IcacheOrg::Srrip),
            protected: false,
        },
    ];
    for (sets, ways, cshr, hist, filt, hrt) in [
        (64, 8, 256, 4, 16, 1024), // Table I geometry
        (16, 4, 64, 2, 8, 512),    // capacity-starved
        (64, 8, 256, 2, 16, 1024), // short histories
        (64, 8, 64, 4, 16, 512),   // small CSHR + HRT
    ] {
        let acic = acic_point(sets, ways, cshr, hist, filt, hrt).expect("valid point");
        configs.push(DseConfig {
            label: acic_label(&acic),
            cfg: org_config(&base, IcacheOrg::Acic(acic)),
            protected: false,
        });
    }
    DseSpace {
        name: "pinned".into(),
        specs: WorkloadSpec::singles(&[AppProfile::sibench(), AppProfile::x264()]),
        configs,
    }
}

/// The cache-geometry sweep behind the committed baseline numbers:
/// LRU + SRRIP + a 288-point ACIC cross product over three
/// applications — 870 cells per rung, the "~1000-cell grid" of the
/// scenario this PR exists to make affordable.
///
/// The workloads are three large-footprint datacenter applications
/// (the paper's target domain), *not* the SPEC subset: a geometry
/// sweep is only prunable on workloads the swept geometries actually
/// move. A tight-loop app like x264 reports the same IPC/MPKI for
/// every configuration, and one indistinguishable coordinate is
/// enough to block strict interval dominance for the whole space —
/// an early version of this space included x264 and pruned nothing.
pub fn geometry_space() -> DseSpace {
    let base = SimConfig::default();
    // Weight the cross product toward the *geometry* axes (sets ×
    // ways span 1KiB..192KiB) and keep the predictor axes narrow:
    // predictor-knob variants at the same geometry behave nearly
    // identically, forming tie cliques that nothing can prune, while
    // capacity differences separate quickly under paired differencing.
    let axes = AcicAxes {
        sets: vec![8, 16, 32, 64, 128, 256],
        ways: vec![2, 4, 8, 12],
        cshr_entries: vec![64, 256],
        history_bits: vec![2, 4, 8],
        filter_entries: vec![16],
        hrt_entries: vec![512, 1024],
    };
    let mut configs = vec![
        DseConfig {
            label: "lru".into(),
            cfg: base.clone(),
            protected: true,
        },
        DseConfig {
            label: "srrip".into(),
            cfg: org_config(&base, IcacheOrg::Srrip),
            protected: false,
        },
    ];
    configs.extend(axes.expand(&base).expect("static axes are valid"));
    DseSpace {
        name: "geometry".into(),
        specs: WorkloadSpec::singles(&[
            AppProfile::web_search(),
            AppProfile::tpc_c(),
            AppProfile::media_streaming(),
        ]),
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_spaces_have_documented_shapes() {
        let smoke = smoke_space();
        assert_eq!(smoke.cells(), 4);
        assert!(smoke.configs[0].protected, "lru is the protected baseline");

        let pinned = pinned_space();
        assert_eq!(pinned.configs.len(), 6);
        assert_eq!(pinned.cells(), 12);

        let geometry = geometry_space();
        // 6 sets × 4 ways × 2 cshr × 3 history × 1 filter × 2 hrt.
        assert_eq!(geometry.configs.len(), 2 + 6 * 4 * 2 * 3 * 2);
        assert_eq!(geometry.cells(), 290 * 3);
        // Labels are unique — they key report provenance.
        for space in [&smoke, &pinned, &geometry] {
            let mut labels: Vec<&str> = space.configs.iter().map(|c| c.label.as_str()).collect();
            let before = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), before, "{} labels unique", space.name);
        }
    }

    #[test]
    fn space_files_parse_and_cross_axes() {
        let space = parse_space(
            r#"{
  "name": "mini",
  "apps": ["sibench", "x264"],
  "orgs": ["lru", "srrip", "acic"],
  "sets": [16, 64],
  "ways": [4],
  "history_bits": [2, 4]
}"#,
        )
        .expect("parses");
        assert_eq!(space.name, "mini");
        assert_eq!(space.specs.len(), 2);
        // lru + srrip + 2 sets × 1 way × 2 history = 6 configs.
        assert_eq!(space.configs.len(), 6);
        assert!(space.configs[0].protected);
        assert!(space
            .configs
            .iter()
            .any(|c| c.label == "acic-s64w4-c256-h2-f16-t1024"));
    }

    #[test]
    fn bad_space_files_fail_with_messages() {
        assert!(parse_space("{}").unwrap_err().contains("apps"));
        assert!(parse_space(r#"{"apps": ["nosuch"]}"#)
            .unwrap_err()
            .contains("unknown application"));
        assert!(parse_space(r#"{"apps": ["sibench"], "orgs": ["opt"]}"#)
            .unwrap_err()
            .contains("unknown org"));
        assert!(parse_space(r#"{"apps": ["sibench"], "sets": [15]}"#)
            .unwrap_err()
            .contains("power of two"));
        assert!(
            parse_space(r#"{"apps": ["sibench"], "cshr_entries": [60]}"#)
                .unwrap_err()
                .contains("divide")
        );
    }

    #[test]
    fn app_names_tolerate_underscores() {
        assert_eq!(app_by_name("tpc_c").unwrap().name, "tpc-c");
        assert_eq!(
            app_by_name("media_streaming").unwrap().name,
            "media-streaming"
        );
        assert!(app_by_name("sibench").is_ok());
        assert!(app_by_name("missing").is_err());
    }
}

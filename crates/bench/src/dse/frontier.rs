//! Dominance pruning: the statistical test that lets the DSE
//! scheduler retire configurations mid-sweep.
//!
//! Every configuration is summarized as a vector of **maximize**
//! objectives, one pair per workload spec: IPC as-is, and MPKI
//! negated (fewer misses is better). Configuration `a` *dominates*
//! `b` when the data suffices to rank `a` strictly above `b` on
//! **every** coordinate, at 95% confidence per coordinate. Under CI
//! correctness this is the conservative direction: an undecidable
//! coordinate never prunes, so a config is only retired when the data
//! already suffices to rank it, and the surviving set is a superset
//! of the true Pareto frontier (pinned by `tests/dse.rs`).
//!
//! Per coordinate the test is **paired** whenever the two reports
//! carry aligned per-window samples ([`SimReport::window_ipc`]):
//! every configuration at a rung runs the *same* schedule over the
//! *same* frozen trace, so window `w` of `a` and window `w` of `b`
//! saw the same instructions — common random numbers. The CI on the
//! mean per-window *difference* cancels the workload-phase variance
//! that dominates each config's own interval (the warm-up trend moves
//! every config's windows together), which is routinely an order of
//! magnitude tighter than comparing the two pooled intervals: coarse
//! rungs that could separate nothing unpaired prune most of a
//! geometry sweep paired. With a shared window count `n` the paired
//! relation is transitive (`mean` adds and the sample standard
//! deviation is subadditive across sums, so lower bounds add), which
//! keeps [`prune_round`] order-independent.
//!
//! When pairing is unavailable (exact `Full` reports have no windows;
//! dead windows can desynchronize counts) the coordinate falls back
//! to the unpaired interval test: `a`'s lower bound must strictly
//! exceed `b`'s upper bound. For degenerate (exact) intervals that
//! collapses to strict pointwise dominance — the same predicate the
//! exhaustive reference ranks by.

use acic_sim::report::mean_ci95;
use acic_sim::SimReport;

/// A closed objective interval `(lo, hi)`, to be maximized.
pub type Interval = (f64, f64);

/// The objective coordinates of one configuration over a spec list:
/// for each spec, its IPC interval followed by its **negated** MPKI
/// interval, so every coordinate is maximize-is-better. Reports must
/// be in the same spec order for every configuration.
pub fn objective_coords(reports: &[SimReport]) -> Vec<Interval> {
    let mut coords = Vec::with_capacity(reports.len() * 2);
    for r in reports {
        coords.push(r.ipc_interval());
        let (lo, hi) = r.mpki_interval();
        coords.push((-hi, -lo));
    }
    coords
}

/// Whether `a` strictly interval-dominates `b`: on **every**
/// coordinate, `a`'s lower bound exceeds `b`'s upper bound. Empty
/// coordinate vectors dominate nothing. Unbounded coordinates
/// (`hi = +inf`, the no-variance-estimate case) make `b` unprunable
/// on that axis, which is exactly the conservative behavior the
/// ladder needs. NaN coordinates (which the report accessors never
/// produce) compare false and therefore never prune.
pub fn dominates(a: &[Interval], b: &[Interval]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective spaces must match");
    !a.is_empty() && a.iter().zip(b).all(|(x, y)| x.0 > y.1)
}

/// Lower bound of the 95% CI on the mean paired difference `a - b`,
/// or `None` when the samples cannot be paired: length mismatch (a
/// dead window excluded on one side only), or fewer than two pairs
/// (no variance estimate — `mean_ci95`'s zero half-width would read
/// as certainty).
fn paired_lo(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let d: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let (mean, hw) = mean_ci95(&d);
    Some(mean - hw)
}

/// Whether report `ra` beats report `rb` on one coordinate at 95%
/// confidence, extracting the per-window sample vector and the
/// fallback pooled interval with `samples`/`interval`. `minimize`
/// orients the metric (MPKI: fewer is better). The paired difference
/// is always taken winner-positive, so the decision is `lo > 0` in
/// both orientations.
fn coord_beats(
    ra: &SimReport,
    rb: &SimReport,
    samples: impl Fn(&SimReport) -> &[f64],
    interval: impl Fn(&SimReport) -> Interval,
    minimize: bool,
) -> bool {
    let paired = if minimize {
        paired_lo(samples(rb), samples(ra))
    } else {
        paired_lo(samples(ra), samples(rb))
    };
    if let Some(lo) = paired {
        return lo > 0.0;
    }
    let (alo, ahi) = interval(ra);
    let (blo, bhi) = interval(rb);
    if minimize {
        ahi < blo
    } else {
        alo > bhi
    }
}

/// Whether configuration `a`'s reports dominate configuration `b`'s:
/// strictly better on every (spec × objective) coordinate at 95%
/// confidence — paired per-window differences where available,
/// unpaired interval separation otherwise (see the module docs).
/// Reports must be in the same spec order. Empty report lists
/// dominate nothing.
pub fn report_dominates(a: &[SimReport], b: &[SimReport]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective spaces must match");
    !a.is_empty()
        && a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            coord_beats(ra, rb, |r| &r.window_ipc, SimReport::ipc_interval, false)
                && coord_beats(ra, rb, |r| &r.window_mpki, SimReport::mpki_interval, true)
        })
}

/// One round of Pareto pruning over the `alive` subset.
///
/// For every alive, unprotected config `b`, if some config `a` that
/// was alive *at the start of the round* dominates it
/// ([`report_dominates`]), `b` is retired; returns
/// `pruned_by[i] = Some(dominator index)` for each config retired
/// this round. Every candidate is judged against the start-of-round
/// pool using start-of-round reports only, so the outcome is
/// independent of iteration order. A `b` retired by a dominator that
/// is itself retired this round is still a sound prune: the
/// dominance test already certifies (at its confidence level) that
/// `b` is strictly worse than *some* configuration, hence off the
/// true frontier — the dominator's own survival is irrelevant.
pub fn prune_round(
    reports: &[Option<Vec<SimReport>>],
    alive: &mut [bool],
    protected: &[bool],
) -> Vec<Option<usize>> {
    let pool: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
    let mut pruned_by = vec![None; alive.len()];
    for &b in &pool {
        if protected[b] {
            continue;
        }
        let Some(rb) = reports[b].as_ref() else {
            continue;
        };
        for &a in &pool {
            if a == b {
                continue;
            }
            if let Some(ra) = reports[a].as_ref() {
                if report_dominates(ra, rb) {
                    alive[b] = false;
                    pruned_by[b] = Some(a);
                    break;
                }
            }
        }
    }
    pruned_by
}

/// Whether every coordinate's confidence half-width has fallen under
/// `precision` (relative to the coordinate's midpoint magnitude,
/// floored at `eps` so a near-zero objective still settles on an
/// absolute scale). An unbounded coordinate never settles; a
/// degenerate (exact) interval always does.
pub fn settled(coords: &[Interval], precision: f64, eps: f64) -> bool {
    coords.iter().all(|&(lo, hi)| {
        if !hi.is_finite() || !lo.is_finite() {
            return false;
        }
        let half = (hi - lo) / 2.0;
        let mid = (hi + lo) / 2.0;
        half <= precision * mid.abs().max(eps)
    })
}

/// The true Pareto frontier over exact points (the exhaustive
/// reference): `frontier[i]` is false iff some other point weakly
/// dominates `points[i]` — at least as good on every coordinate and
/// strictly better on at least one. All coordinates maximize.
pub fn pareto_frontier(points: &[Vec<f64>]) -> Vec<bool> {
    let weakly_dominates = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).all(|(x, y)| x >= y) && a.iter().zip(b).any(|(x, y)| x > y)
    };
    (0..points.len())
        .map(|b| {
            !points
                .iter()
                .enumerate()
                .any(|(a, pa)| a != b && weakly_dominates(pa, &points[b]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_sim::report::SampledStats;

    /// A sampled report carrying per-window samples; pooled stats are
    /// derived from the same vectors, exactly as the engine does.
    fn wrep(ipc_windows: &[f64], mpki_windows: &[f64]) -> SimReport {
        let (ipc_mean, ipc_ci95) = mean_ci95(ipc_windows);
        let (mpki_mean, mpki_ci95) = mean_ci95(mpki_windows);
        SimReport {
            sampled: Some(SampledStats {
                windows: ipc_windows.len() as u64,
                ipc_mean,
                ipc_ci95,
                mpki_mean,
                mpki_ci95,
                ..SampledStats::default()
            }),
            window_ipc: ipc_windows.to_vec(),
            window_mpki: mpki_windows.to_vec(),
            ..SimReport::default()
        }
    }

    /// A sampled report with given pooled intervals but *no* window
    /// samples, forcing the unpaired fallback path.
    fn irep(ipc: Interval, mpki: Interval) -> SimReport {
        SimReport {
            sampled: Some(SampledStats {
                windows: 2,
                ipc_mean: (ipc.0 + ipc.1) / 2.0,
                ipc_ci95: (ipc.1 - ipc.0) / 2.0,
                mpki_mean: (mpki.0 + mpki.1) / 2.0,
                mpki_ci95: (mpki.1 - mpki.0) / 2.0,
                ..SampledStats::default()
            }),
            ..SimReport::default()
        }
    }

    #[test]
    fn strict_interval_dominance() {
        // Disjoint intervals on both coordinates: dominate.
        assert!(dominates(
            &[(2.0, 2.5), (1.0, 1.2)],
            &[(1.0, 1.9), (0.1, 0.9)]
        ));
        // Overlap on one coordinate: no prune.
        assert!(!dominates(
            &[(2.0, 2.5), (1.0, 1.2)],
            &[(1.0, 2.1), (0.1, 0.9)]
        ));
        // Equal bounds are not strict.
        assert!(!dominates(&[(2.0, 2.5)], &[(1.5, 2.0)]));
        // Unbounded candidate can never be dominated.
        assert!(!dominates(&[(2.0, 2.5)], &[(0.0, f64::INFINITY)]));
        // Empty spaces dominate nothing.
        assert!(!dominates(&[], &[]));
    }

    #[test]
    fn paired_differencing_beats_pooled_intervals() {
        // A warm-up trend moves every config's windows together: the
        // pooled intervals of `a` and `b` overlap hopelessly, but the
        // per-window differences are a constant +0.1 IPC / -0.05 MPKI,
        // so the paired test separates them with certainty.
        let base = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a_ipc: Vec<f64> = base.iter().map(|v| v + 0.1).collect();
        let b_mpki = [8.0, 6.0, 4.0, 3.0, 2.0];
        let a_mpki: Vec<f64> = b_mpki.iter().map(|v| v - 0.05).collect();
        let a = vec![wrep(&a_ipc, &a_mpki)];
        let b = vec![wrep(&base, &b_mpki)];
        let (ca, cb) = (objective_coords(&a), objective_coords(&b));
        assert!(
            !dominates(&ca, &cb),
            "pooled intervals overlap: {ca:?} vs {cb:?}"
        );
        assert!(report_dominates(&a, &b), "paired differences separate");
        assert!(!report_dominates(&b, &a));
    }

    #[test]
    fn paired_ties_and_mixed_signs_never_prune() {
        // Identical windows: difference is exactly zero, not > 0.
        let same = vec![wrep(&[1.0, 2.0, 3.0], &[5.0, 4.0, 3.0])];
        assert!(!report_dominates(&same, &same.clone()));
        // Better on IPC, worse on MPKI: no all-coordinate winner.
        let a = vec![wrep(&[1.1, 2.1, 3.1], &[5.1, 4.1, 3.1])];
        assert!(!report_dominates(&a, &same) && !report_dominates(&same, &a));
        // Noisy differences whose CI straddles zero: no prune either
        // way even though the means differ.
        let x = vec![wrep(&[1.0, 2.0, 3.0, 4.0], &[4.0; 4])];
        let y = vec![wrep(&[1.5, 1.8, 3.4, 3.5], &[5.0; 4])];
        assert!(!report_dominates(&y, &x));
    }

    #[test]
    fn unpairable_windows_fall_back_to_intervals() {
        // A dead window on one side desynchronizes the counts; the
        // coordinate must fall back to pooled-interval separation.
        let a = SimReport {
            window_mpki: vec![1.0, 1.1],
            ..wrep(&[3.0, 3.05, 2.95], &[1.0, 1.1, 0.9])
        };
        let b = wrep(&[2.0, 2.05], &[5.0, 5.2]);
        assert!(
            report_dominates(std::slice::from_ref(&a), std::slice::from_ref(&b)),
            "disjoint pooled intervals still dominate unpaired"
        );
        // Shrink the gap so the pooled intervals overlap: with
        // pairing unavailable the coordinate becomes undecidable.
        let close = wrep(&[2.9, 2.0], &[5.0, 5.2]);
        assert!(!report_dominates(&[a], &[close]));
    }

    #[test]
    fn exact_reports_rank_by_strict_pointwise_dominance() {
        // Full-fidelity reports have degenerate intervals and no
        // windows: dominance collapses to the exhaustive reference
        // predicate. (cycles, instructions, misses) => exact report.
        let exact = |cycles: u64, misses: u64| SimReport {
            measured_cycles: cycles,
            measured_instructions: 2000,
            l1i: acic_cache::CacheStats {
                demand_accesses: misses,
                demand_misses: misses,
                ..Default::default()
            },
            ..SimReport::default()
        };
        let good = vec![exact(900, 5)];
        let bad = vec![exact(1000, 10)];
        assert!(report_dominates(&good, &bad));
        assert!(!report_dominates(&bad, &good));
        // Ties on any coordinate block a prune.
        let tie = vec![exact(900, 10)];
        assert!(!report_dominates(&tie, &bad) && !report_dominates(&bad, &tie));
    }

    #[test]
    fn prune_round_is_order_independent_and_respects_protection() {
        // c0 dominates c1 dominates c2; c2 protected, c3 unknown.
        let reports = vec![
            Some(vec![irep((3.0, 3.1), (1.0, 1.1))]),
            Some(vec![irep((2.0, 2.1), (2.0, 2.1))]),
            Some(vec![irep((1.0, 1.1), (3.0, 3.1))]),
            None,
        ];
        let mut alive = vec![true; 4];
        let protected = vec![false, false, true, false];
        let pruned_by = prune_round(&reports, &mut alive, &protected);
        assert_eq!(alive, vec![true, false, true, true]);
        assert_eq!(pruned_by[1], Some(0));
        assert_eq!(pruned_by[2], None, "protected survives domination");
        assert_eq!(pruned_by[3], None, "unmeasured config is left alone");
    }

    #[test]
    fn transitive_chain_prunes_in_one_round() {
        // Start-of-round pool judging: c1 is pruned by c0 while c0
        // itself stays; c2 is dominated by both. One round retires
        // both tails regardless of iteration order.
        let reports = vec![
            Some(vec![irep((3.0, 3.1), (1.0, 1.1))]),
            Some(vec![irep((2.0, 2.1), (2.0, 2.1))]),
            Some(vec![irep((1.0, 1.1), (3.0, 3.1))]),
        ];
        let mut alive = vec![true; 3];
        let pruned = prune_round(&reports, &mut alive, &[false; 3]);
        assert_eq!(alive, vec![true, false, false]);
        assert!(pruned[1].is_some() && pruned[2].is_some());
    }

    #[test]
    fn incomparable_points_all_survive() {
        // Classic Pareto trade-off: better IPC vs better MPKI.
        let reports = vec![
            Some(vec![irep((3.0, 3.1), (2.0, 2.1))]),
            Some(vec![irep((2.0, 2.1), (1.0, 1.1))]),
        ];
        let mut alive = vec![true; 2];
        prune_round(&reports, &mut alive, &[false; 2]);
        assert_eq!(alive, vec![true, true]);
    }

    #[test]
    fn settling_thresholds() {
        // 2% target: half-width 0.02 on a mid of 2.0 is 1% — settled.
        assert!(settled(&[(1.98, 2.02)], 0.02, 1e-9));
        // Half-width 0.1 on 2.0 is 5% — not settled.
        assert!(!settled(&[(1.9, 2.1)], 0.02, 1e-9));
        // Degenerate (exact) intervals always settle.
        assert!(settled(&[(2.0, 2.0), (-0.0, 0.0)], 0.0, 1e-9));
        // Unbounded never settles.
        assert!(!settled(&[(0.0, f64::INFINITY)], 0.5, 1e-9));
        // Near-zero midpoints settle on the absolute floor.
        assert!(settled(&[(-1e-12, 1e-12)], 0.02, 1e-9));
    }

    #[test]
    fn pareto_frontier_weak_dominance() {
        let points = vec![
            vec![3.0, 1.0], // frontier (best x)
            vec![1.0, 3.0], // frontier (best y)
            vec![2.0, 2.0], // frontier (incomparable with both)
            vec![1.0, 1.0], // dominated by everything
            vec![3.0, 1.0], // duplicate of 0: ties survive (weak needs one strict win)
        ];
        assert_eq!(
            pareto_frontier(&points),
            vec![true, true, true, false, true]
        );
    }
}

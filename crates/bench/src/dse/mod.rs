//! Adaptive design-space exploration: CI-pruned, multi-fidelity
//! sweeps (DESIGN.md §10).
//!
//! An exhaustive full-detail sweep of a cache-geometry design space
//! pays the full per-cell budget for every configuration — including
//! the overwhelming majority that any coarse look would already rule
//! out. This module spends fidelity where it matters instead:
//!
//! 1. **Declare** a space ([`space`]): configurations × workload
//!    specs, built in (smoke / pinned / geometry) or parsed from a
//!    small JSON axes file.
//! 2. **Climb** a fidelity ladder ([`ladder`]): every rung simulates
//!    a *prefix* of the one frozen full-budget trace per spec under a
//!    coarse sampled schedule, so early rungs cost milliseconds per
//!    cell and no rung ever regenerates a workload.
//! 3. **Prune** between rungs ([`frontier`]): a configuration whose
//!    95% confidence interval is strictly dominated by a rival's on
//!    every (spec × objective) coordinate is retired — overlap never
//!    prunes, so survivors are a superset of the true Pareto frontier.
//! 4. **Refine** survivors ([`scheduler`]): settled configurations
//!    (every CI half-width under the precision target) skip
//!    intermediate rungs; the final rung re-simulates every survivor
//!    at full budget and figure-grade fidelity, and every finished
//!    cell is journaled (`acic-results/v2`, rung-keyed) so a killed
//!    sweep resumes with zero recomputed finished cells.
//!
//! Surfaced as `experiments --dse` (space file via `--dse-space`,
//! JSON-lines provenance report via `--dse-report`, CI round trip via
//! `--dse-smoke`); the committed `BENCH_baseline.json` `dse` section
//! records the geometry-space wall time against the 20-cell
//! exhaustive sampled grid.

pub mod frontier;
pub mod ladder;
pub mod scheduler;
pub mod space;

pub use frontier::{
    dominates, objective_coords, pareto_frontier, prune_round, report_dominates, Interval,
};
pub use ladder::{coarse_schedule, Ladder, Rung, MIN_RUNG_BUDGET};
pub use scheduler::{midpoints, run_dse, ConfigOutcome, DseOptions, DseRun, RungStats};
pub use space::{geometry_space, parse_space, pinned_space, smoke_space, DseConfig, DseSpace};

use crate::result_store::ResultStore;
use acic_sim::SampleSchedule;
use std::sync::Arc;

/// The CI round trip behind `experiments --dse-smoke`: sweeps the
/// tiny built-in space over a two-rung ladder against a fresh store,
/// tears the journal mid-file, and resumes. The resumed sweep must
/// recompute only the torn cells, reproduce the reference frontier
/// bit for bit, and a third run must replay everything without
/// simulating a single cell.
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn dse_smoke() -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!("acic-dse-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = smoke_space();
    let mut opts = DseOptions {
        ladder: Ladder::new(120_000, 2, SampleSchedule::Full),
        store: None,
        cell_timeout: None,
        ..DseOptions::default()
    };
    let reference = run_dse(&space, &opts)?;

    opts.store = Some(Arc::new(
        ResultStore::open(&dir).map_err(|e| e.to_string())?,
    ));
    let first = run_dse(&space, &opts)?;
    if first.replayed != 0 || first.computed == 0 {
        return Err(format!(
            "fresh store: expected 0 replayed / all computed, got {} / {}",
            first.replayed, first.computed
        ));
    }

    // Tear the journal at 60% — mid-line, after several entries. A
    // kill while journaling would at worst lose whole tail lines;
    // this is strictly harsher.
    let journal = opts
        .store
        .as_ref()
        .expect("store attached")
        .journal_path()
        .to_path_buf();
    let bytes = std::fs::read(&journal).map_err(|e| e.to_string())?;
    std::fs::write(&journal, &bytes[..bytes.len() * 3 / 5]).map_err(|e| e.to_string())?;

    opts.store = Some(Arc::new(
        ResultStore::open(&dir).map_err(|e| e.to_string())?,
    ));
    let resumed = run_dse(&space, &opts)?;
    if resumed.computed == 0 || resumed.computed == first.computed {
        return Err(format!(
            "torn journal: expected a partial recompute, got {} of {}",
            resumed.computed, first.computed
        ));
    }
    if format!("{:?}", resumed.outcomes) != format!("{:?}", reference.outcomes) {
        return Err("resumed sweep diverged from the uninterrupted reference".into());
    }

    opts.store = Some(Arc::new(
        ResultStore::open(&dir).map_err(|e| e.to_string())?,
    ));
    let third = run_dse(&space, &opts)?;
    if third.computed != 0 || third.replayed != first.computed {
        return Err(format!(
            "healed store: expected {} replayed / 0 computed, got {} / {}",
            first.computed, third.replayed, third.computed
        ));
    }
    if format!("{:?}", third.outcomes) != format!("{:?}", reference.outcomes) {
        return Err("replayed sweep diverged from the uninterrupted reference".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "dse-smoke: {} cells over {} rungs; torn journal kept {} cells, resume recomputed {}, \
         final replay reproduced the frontier bit for bit\n",
        first.computed,
        reference.rungs.len(),
        first.computed - resumed.computed,
        resumed.computed
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn dse_smoke_round_trips() {
        let summary = super::dse_smoke().expect("smoke passes");
        assert!(summary.contains("dse-smoke:"));
    }
}

//! The DSE scheduler: climbs the fidelity ladder, prunes dominated
//! configurations between rungs, and journals every cell for resume.
//!
//! Per rung, the scheduler simulates each still-interesting
//! configuration over every spec's *frozen* full-budget trace through
//! an [`acic_trace::Truncated`] prefix view (one freeze per spec for
//! the whole sweep, shared across rungs and threads), pools the
//! per-spec confidence intervals into objective coordinates, and runs
//! one interval-dominance prune round ([`super::frontier`]). Pruned
//! configurations never climb further; configurations whose
//! coordinates have *settled* (every CI half-width under the target
//! precision) skip the remaining **intermediate** rungs. The final
//! rung always re-simulates every survivor: reported results are
//! full-fidelity by construction, which is what lets `tests/dse.rs`
//! pin the surviving frontier's ranking against an exhaustive
//! full-detail reference.
//!
//! Every finished cell is journaled under its
//! [`crate::result_store::dse_cell_key`] as soon as it completes, so
//! a killed sweep resumes with zero recomputed finished cells; the
//! prune/settle decisions are pure functions of the reports, so a
//! resumed sweep reproduces the identical frontier.

use super::frontier::{objective_coords, pareto_frontier, settled, Interval};
use super::ladder::Ladder;
use super::space::DseSpace;
use crate::result_store::{dse_cell_key, ResultStore};
use crate::runner::{
    bench_threads, cell_timeout, injected_cell_failure, run_cells, try_freeze_specs, CellError,
};
use acic_sim::{SampleSchedule, SimReport, Simulator};
use acic_trace::{PackedTrace, Truncated};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for one DSE sweep.
#[derive(Clone)]
pub struct DseOptions {
    /// The fidelity ladder (its last rung fixes the full per-cell
    /// budget).
    pub ladder: Ladder,
    /// Relative CI half-width under which a configuration counts as
    /// settled (skips intermediate rungs).
    pub precision: f64,
    /// Absolute floor for the settling test's midpoint scale.
    pub eps: f64,
    /// Journal finished cells here and replay them on resume.
    pub store: Option<Arc<ResultStore>>,
    /// Soft per-cell watchdog (defaults to `ACIC_CELL_TIMEOUT_SECS`).
    pub cell_timeout: Option<Duration>,
    /// Worker threads (defaults to `ACIC_BENCH_THREADS`).
    pub threads: usize,
    /// Process supervisor: when set, every to-be-computed rung cell
    /// runs in its own `--run-cell` child process (hard timeouts,
    /// retry with backoff, crash reports). Defaults to the
    /// `--supervise` global ([`crate::supervise::active`]).
    pub supervise: Option<Arc<crate::supervise::SuperviseCtx>>,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            ladder: Ladder::new(
                crate::runner::instruction_budget(),
                3,
                SampleSchedule::default_sampled(),
            ),
            precision: 0.02,
            eps: 1e-3,
            store: crate::result_store::active(),
            cell_timeout: cell_timeout(),
            threads: bench_threads(),
            supervise: crate::supervise::active(),
        }
    }
}

/// What one rung of the sweep did.
#[derive(Clone, Debug)]
pub struct RungStats {
    /// Rung index.
    pub rung: usize,
    /// Prefix budget simulated.
    pub budget: u64,
    /// Configurations simulated (alive, and either unsettled or at
    /// the final rung).
    pub active: usize,
    /// Cells served from the result store.
    pub replayed: u64,
    /// Cells simulated this run.
    pub computed: u64,
    /// Configurations newly pruned after this rung.
    pub pruned: usize,
    /// Configurations newly settled after this rung.
    pub settled: usize,
    /// Configurations still alive after this rung's prune round.
    pub alive_after: usize,
}

/// Full provenance for one configuration across the sweep.
#[derive(Clone, Debug)]
pub struct ConfigOutcome {
    /// The configuration's display label.
    pub label: String,
    /// Whether it was protected from pruning.
    pub protected: bool,
    /// Whether it survived to the end.
    pub alive: bool,
    /// Rung after which it was pruned.
    pub pruned_at: Option<usize>,
    /// Label of the configuration that dominated it.
    pub pruned_by: Option<String>,
    /// Rung after which its CIs settled.
    pub settled_at: Option<usize>,
    /// Highest rung it actually simulated (None if it never ran —
    /// only possible when the sweep failed).
    pub refined_to: Option<usize>,
    /// Per-spec reports from its highest rung (spec order of the
    /// space).
    pub reports: Vec<SimReport>,
}

/// The result of a completed sweep.
#[derive(Clone, Debug)]
pub struct DseRun {
    /// Space name (provenance).
    pub space: String,
    /// Per-rung accounting.
    pub rungs: Vec<RungStats>,
    /// Per-configuration provenance, space order.
    pub outcomes: Vec<ConfigOutcome>,
    /// Total cells replayed from the store.
    pub replayed: u64,
    /// Total cells simulated.
    pub computed: u64,
}

impl DseRun {
    /// Indices of surviving configurations.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.outcomes.len())
            .filter(|&i| self.outcomes[i].alive)
            .collect()
    }

    /// Survivor indices on the *strict* Pareto frontier of the final
    /// full-fidelity midpoints (the frontier the exhaustive reference
    /// is compared against). Protected configurations are kept even
    /// when dominated — they are the reporting baseline.
    pub fn final_frontier(&self) -> Vec<usize> {
        let survivors = self.survivors();
        let points: Vec<Vec<f64>> = survivors
            .iter()
            .map(|&i| midpoints(&self.outcomes[i].reports))
            .collect();
        let on = pareto_frontier(&points);
        survivors
            .into_iter()
            .zip(on)
            .filter(|&(i, keep)| keep || self.outcomes[i].protected)
            .map(|(i, _)| i)
            .collect()
    }

    /// The JSON-lines report: a header line with the sweep's shape,
    /// then one line per configuration with its full provenance
    /// (pruned-at, refined-to, final intervals).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        let budgets: Vec<String> = self.rungs.iter().map(|r| r.budget.to_string()).collect();
        out.push_str(&format!(
            "{{\"schema\":\"acic-dse/v1\",\"space\":\"{}\",\"rung_budgets\":[{}],\"replayed\":{},\"computed\":{}}}\n",
            self.space,
            budgets.join(","),
            self.replayed,
            self.computed
        ));
        let baseline = self
            .outcomes
            .iter()
            .find(|o| o.protected && !o.reports.is_empty());
        for o in &self.outcomes {
            let objectives: Vec<String> = o
                .reports
                .iter()
                .enumerate()
                .map(|(j, r)| {
                    let reduction = baseline
                        .and_then(|b| b.reports.get(j))
                        .map(|b| mid(b.mpki_interval()))
                        .filter(|&bm| bm > 0.0)
                        .map(|bm| (bm - mid(r.mpki_interval())) / bm);
                    format!(
                        "{{\"app\":\"{}\",\"ipc\":{},\"mpki\":{},\"mpki_reduction_vs_baseline\":{}}}",
                        r.app,
                        interval_json(r.ipc_interval()),
                        interval_json(r.mpki_interval()),
                        reduction.map_or("null".into(), fmt_num)
                    )
                })
                .collect();
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"protected\":{},\"alive\":{},\"pruned_at\":{},\"pruned_by\":{},\"settled_at\":{},\"refined_to\":{},\"objectives\":[{}]}}\n",
                o.label,
                o.protected,
                o.alive,
                opt_num(o.pruned_at),
                o.pruned_by
                    .as_ref()
                    .map_or("null".to_string(), |l| format!("\"{l}\"")),
                opt_num(o.settled_at),
                opt_num(o.refined_to),
                objectives.join(",")
            ));
        }
        out
    }
}

fn mid((lo, hi): Interval) -> f64 {
    (lo + hi) / 2.0
}

/// The final-rung maximize-objective midpoints of one configuration
/// (IPC and negated MPKI per spec) — the exact points the exhaustive
/// reference ranks on.
pub fn midpoints(reports: &[SimReport]) -> Vec<f64> {
    let mut out = Vec::with_capacity(reports.len() * 2);
    for r in reports {
        out.push(mid(r.ipc_interval()));
        out.push(-mid(r.mpki_interval()));
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn opt_num(v: Option<usize>) -> String {
    v.map_or("null".into(), |n| n.to_string())
}

fn interval_json((lo, hi): Interval) -> String {
    format!("[{},{}]", fmt_num(lo), fmt_num(hi))
}

/// Runs the sweep.
///
/// # Errors
///
/// Returns a message listing every failed cell (freeze failures,
/// panics, watchdog timeouts). Cells that completed before the
/// failure are already journaled, so a rerun resumes rather than
/// restarts.
pub fn run_dse(space: &DseSpace, opts: &DseOptions) -> Result<DseRun, String> {
    opts.ladder.validate();
    let n_cfg = space.configs.len();
    let n_spec = space.specs.len();
    if n_cfg == 0 || n_spec == 0 {
        return Err("empty design space".into());
    }
    let full_budget = opts.ladder.full_budget();
    let frozen = try_freeze_specs(&space.specs, full_budget);
    let freeze_failures: Vec<String> = space
        .specs
        .iter()
        .zip(&frozen)
        .filter_map(|(s, r)| {
            r.as_ref()
                .err()
                .map(|e| format!("spec '{}': freeze failed: {e}", s.label()))
        })
        .collect();
    if !freeze_failures.is_empty() {
        return Err(freeze_failures.join("\n"));
    }
    let traces: Arc<Vec<Arc<PackedTrace>>> = Arc::new(
        frozen
            .into_iter()
            .map(|r| r.expect("freeze failures handled above"))
            .collect(),
    );

    let protected = space.protected();
    let mut alive = vec![true; n_cfg];
    let mut pruned_at: Vec<Option<usize>> = vec![None; n_cfg];
    let mut pruned_by: Vec<Option<String>> = vec![None; n_cfg];
    let mut settled_at: Vec<Option<usize>> = vec![None; n_cfg];
    let mut refined_to: Vec<Option<usize>> = vec![None; n_cfg];
    let mut reports: Vec<Option<Vec<SimReport>>> = vec![None; n_cfg];
    let mut rung_stats: Vec<RungStats> = Vec::with_capacity(opts.ladder.rungs.len());
    let last_rung = opts.ladder.rungs.len() - 1;

    for (r, rung) in opts.ladder.rungs.iter().enumerate() {
        let active: Vec<usize> = (0..n_cfg)
            .filter(|&i| alive[i] && (r == last_rung || settled_at[i].is_none()))
            .collect();
        // (config, spec, journal key) for every cell of this rung.
        let rung_cfgs: Arc<Vec<acic_sim::SimConfig>> = Arc::new(
            space
                .configs
                .iter()
                .map(|c| c.cfg.with_schedule(rung.schedule))
                .collect(),
        );
        let mut cells: Vec<(usize, usize, String)> = Vec::with_capacity(active.len() * n_spec);
        for &c in &active {
            for a in 0..n_spec {
                let key = dse_cell_key(&space.specs[a], full_budget, &rung_cfgs[c], r as u32);
                cells.push((c, a, key));
            }
        }

        // Supervised child mode: when this process is a `--run-cell`
        // child and its one target cell belongs to this rung, run it,
        // journal it into the private attempt store, and exit.
        // Earlier rungs replay from the shared `--results` store (the
        // supervised parent journals each rung before climbing) or
        // recompute in-process with journal writes and scripted
        // faults suppressed.
        let child = crate::supervise::child_target();
        if let Some(target) = child {
            if let Some((c, a)) = cells
                .iter()
                .find(|(_, _, k)| k == &target.key)
                .map(|(c, a, _)| (*c, *a))
            {
                let prefix_budget = rung.budget;
                let cfg = rung_cfgs[c].clone();
                let trace = Arc::clone(&traces[a]);
                crate::supervise::run_child_cell(target, Some(r as u32), move || {
                    injected_cell_failure(c, a);
                    let prefix = Truncated::new(trace.as_ref(), prefix_budget);
                    Simulator::run(&cfg, &prefix)
                });
            }
        }
        let supervisor = if child.is_some() {
            None
        } else {
            opts.supervise.clone()
        };

        let mut slots: Vec<Option<Result<SimReport, CellError>>> = vec![None; cells.len()];
        let mut replayed = 0u64;
        if let Some(store) = &opts.store {
            for (slot, (_, _, key)) in slots.iter_mut().zip(&cells) {
                if let Some(report) = store.get(key) {
                    *slot = Some(Ok(report));
                    replayed += 1;
                }
            }
        }
        let todo: Vec<usize> = (0..cells.len()).filter(|&i| slots[i].is_none()).collect();
        let computed = todo.len() as u64;
        if !todo.is_empty() {
            let todo_arc = Arc::new(todo.clone());
            let cells_arc = Arc::new(cells.clone());
            let store = opts.store.clone();
            let rung_idx = r as u32;
            if let Some(ctx) = supervisor.clone() {
                // Supervised: one child process per rung cell; the
                // parent journals what the child reported under the
                // same rung-qualified key.
                let labels: Arc<Vec<String>> = Arc::new(
                    cells
                        .iter()
                        .map(|(c, a, _)| {
                            format!(
                                "rung {r}: config '{}' x spec '{}'",
                                space.configs[*c].label,
                                space.specs[*a].label()
                            )
                        })
                        .collect(),
                );
                let timeout = opts.cell_timeout;
                let results = run_cells(
                    todo.len(),
                    opts.threads.clamp(1, todo.len()),
                    None, // the hard per-child deadline replaces the soft watchdog
                    move |t| {
                        let i = todo_arc[t];
                        let (_, _, key) = &cells_arc[i];
                        let report = crate::supervise::run_one(&ctx, key, &labels[i], timeout)?;
                        if let Some(store) = &store {
                            if let Err(e) = store.put_rung(key, rung_idx, &report) {
                                eprintln!(
                                    "[dse: failed to journal cell {key} ({e}); kept in memory]"
                                );
                            }
                        }
                        Ok(report)
                    },
                );
                for (t, res) in results.into_iter().enumerate() {
                    slots[todo[t]] = Some(match res {
                        Ok(inner) => inner,
                        Err(e) => Err(e),
                    });
                }
            } else {
                let traces = Arc::clone(&traces);
                let cfgs = Arc::clone(&rung_cfgs);
                // A `--run-cell` child replaying earlier rungs must
                // neither re-journal cells nor trip scripted faults
                // aimed at its target.
                let store = if child.is_some() { None } else { store };
                let inject = child.is_none();
                let budget = rung.budget;
                let results = run_cells(
                    todo.len(),
                    opts.threads.clamp(1, todo.len()),
                    opts.cell_timeout,
                    move |t| {
                        let (c, a, key) = &cells_arc[todo_arc[t]];
                        if inject {
                            injected_cell_failure(*c, *a);
                        }
                        let prefix = Truncated::new(traces[*a].as_ref(), budget);
                        let report = Simulator::run(&cfgs[*c], &prefix);
                        if let Some(store) = &store {
                            if let Err(e) = store.put_rung(key, rung_idx, &report) {
                                eprintln!(
                                    "[dse: failed to journal cell {key} ({e}); kept in memory]"
                                );
                            }
                        }
                        report
                    },
                );
                for (t, res) in results.into_iter().enumerate() {
                    slots[todo[t]] = Some(res);
                }
            }
        }

        let mut failures: Vec<String> = Vec::new();
        let mut rung_reports: Vec<Vec<SimReport>> = vec![Vec::new(); n_cfg];
        for (slot, (c, a, _)) in slots.into_iter().zip(&cells) {
            match slot.expect("every cell resolved") {
                Ok(rep) => rung_reports[*c].push(rep),
                Err(e) => failures.push(format!(
                    "rung {r}: config '{}' x spec '{}': {e}",
                    space.configs[*c].label,
                    space.specs[*a].label()
                )),
            }
        }
        if !failures.is_empty() {
            if let Some(ctx) = &supervisor {
                failures.push(format!("crash reports: {}", ctx.crash_dir.display()));
            }
            return Err(failures.join("\n"));
        }
        for &c in &active {
            debug_assert_eq!(rung_reports[c].len(), n_spec, "cells arrive in spec order");
            refined_to[c] = Some(r);
            reports[c] = Some(std::mem::take(&mut rung_reports[c]));
        }

        // Prune against everything alive, including settled configs:
        // their (tight) estimates still retire weaker rivals.
        let round = super::frontier::prune_round(&reports, &mut alive, &protected);
        // Interval coordinates are what the settle test inspects.
        let coords: Vec<Option<Vec<Interval>>> = reports
            .iter()
            .map(|o| o.as_ref().map(|reps| objective_coords(reps)))
            .collect();
        let mut pruned = 0usize;
        for (i, by) in round.into_iter().enumerate() {
            if let Some(a) = by {
                pruned_at[i] = Some(r);
                pruned_by[i] = Some(space.configs[a].label.clone());
                pruned += 1;
            }
        }
        let mut newly_settled = 0usize;
        for i in 0..n_cfg {
            if alive[i] && settled_at[i].is_none() {
                if let Some(cs) = coords[i].as_ref() {
                    if settled(cs, opts.precision, opts.eps) {
                        settled_at[i] = Some(r);
                        newly_settled += 1;
                    }
                }
            }
        }
        rung_stats.push(RungStats {
            rung: r,
            budget: rung.budget,
            active: active.len(),
            replayed,
            computed,
            pruned,
            settled: newly_settled,
            alive_after: alive.iter().filter(|&&a| a).count(),
        });
    }

    let outcomes = (0..n_cfg)
        .map(|i| ConfigOutcome {
            label: space.configs[i].label.clone(),
            protected: protected[i],
            alive: alive[i],
            pruned_at: pruned_at[i],
            pruned_by: pruned_by[i].clone(),
            settled_at: settled_at[i],
            refined_to: refined_to[i],
            reports: reports[i].clone().unwrap_or_default(),
        })
        .collect();
    Ok(DseRun {
        space: space.name.clone(),
        rungs: rung_stats.clone(),
        outcomes,
        replayed: rung_stats.iter().map(|s| s.replayed).sum(),
        computed: rung_stats.iter().map(|s| s.computed).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::super::space::smoke_space;
    use super::*;
    use crate::result_store::ResultStore;

    fn opts(ladder: Ladder) -> DseOptions {
        DseOptions {
            ladder,
            precision: 0.02,
            eps: 1e-3,
            store: None,
            cell_timeout: None,
            threads: 2,
            supervise: None,
        }
    }

    #[test]
    fn smoke_sweep_completes_with_full_provenance() {
        let space = smoke_space();
        let run = run_dse(&space, &opts(Ladder::new(120_000, 2, SampleSchedule::Full)))
            .expect("sweep completes");
        assert_eq!(run.outcomes.len(), 4);
        assert_eq!(run.rungs.len(), 2);
        assert!(run.outcomes[0].alive, "protected baseline survives");
        for o in &run.outcomes {
            if o.alive {
                assert_eq!(o.reports.len(), space.specs.len());
                assert!(o.pruned_at.is_none() && o.pruned_by.is_none());
            } else {
                assert!(o.pruned_at.is_some() && o.pruned_by.is_some());
                assert!(o.refined_to.is_some(), "pruned configs ran before dying");
            }
        }
        // Survivors carry final-rung (full budget) results.
        for &i in &run.survivors() {
            assert_eq!(run.outcomes[i].refined_to, Some(1));
        }
        assert!(!run.final_frontier().is_empty());
        let report = run.jsonl();
        assert!(report.starts_with("{\"schema\":\"acic-dse/v1\""));
        assert_eq!(report.lines().count(), 1 + run.outcomes.len());
        assert!(
            !report.contains("inf") && !report.contains("NaN"),
            "strict JSON"
        );
    }

    #[test]
    fn store_backed_sweep_replays_instead_of_recomputing() {
        let dir = std::env::temp_dir().join(format!("acic-dse-sched-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let space = smoke_space();
        let ladder = Ladder::new(120_000, 2, SampleSchedule::Full);
        let mut o = opts(ladder.clone());
        let reference = run_dse(&space, &o).expect("reference");

        o.store = Some(Arc::new(ResultStore::open(&dir).unwrap()));
        let first = run_dse(&space, &o).expect("first store run");
        assert_eq!(first.replayed, 0);
        assert!(first.computed > 0);

        o.store = Some(Arc::new(ResultStore::open(&dir).unwrap()));
        let second = run_dse(&space, &o).expect("resumed run");
        assert_eq!(second.computed, 0, "everything replays");
        assert_eq!(second.replayed, first.computed);
        for (a, b) in reference.outcomes.iter().zip(&second.outcomes) {
            assert_eq!(a.alive, b.alive);
            assert_eq!(a.pruned_at, b.pruned_at);
            assert_eq!(
                format!("{:?}", a.reports),
                format!("{:?}", b.reports),
                "replayed reports bit-identical"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The fidelity ladder: which budget prefix and sampling schedule
//! each DSE rung simulates.
//!
//! A rung is `(budget, schedule)`. The budget is a **prefix length**
//! of the one frozen full-budget trace — rungs never regenerate a
//! workload at a smaller budget (multi-tenant interleaving depends on
//! the total, so a regeneration would be a different trace; see
//! `acic_workloads::ladder_budgets`). The schedule is the sampled
//! fidelity the prefix runs under: coarse rungs use a sparse
//! SMARTS-style schedule tuned for a handful of windows (enough for a
//! variance estimate, cheap enough to afford over every cell), the
//! final rung uses figure-grade sampling — or `Full` detail when the
//! ladder backs an exactness test.

use acic_sim::SampleSchedule;
use acic_workloads::ladder_budgets;

/// Minimum rung budget worth sampling; below this the ladder uses the
/// whole prefix at full detail (a budget this small is cheaper to
/// simulate exactly than to sample meaningfully).
pub const MIN_RUNG_BUDGET: u64 = 30_000;

/// One step of the fidelity ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rung {
    /// Prefix of the full per-cell budget simulated at this rung.
    pub budget: u64,
    /// Sampling schedule the prefix runs under.
    pub schedule: SampleSchedule,
}

/// An ascending sequence of rungs ending at the full budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ladder {
    /// Rungs in ascending budget order; the last covers the full
    /// budget.
    pub rungs: Vec<Rung>,
}

/// A coarse systematic schedule for a small prefix: up to 32 windows
/// per rung (floored at a 4k-instruction period — any finer and the
/// windows are all warmup), detailed windows sized so the rung stays
/// milliseconds per cell. The window count is what gives coarse rungs
/// their pruning power: the CI half-width shrinks as `t(n-1)/√n`, and
/// 8-window rungs proved too noisy to separate even 4× MPKI gaps, so
/// every prune waited for the expensive final rung. Prefixes too
/// small for two windows run `Full` instead — at that size exact
/// simulation is cheaper than sampling overhead and its degenerate
/// intervals are harmless to the pruner.
pub fn coarse_schedule(budget: u64) -> SampleSchedule {
    let period = (budget / 32).max(4_000);
    if budget < 2 * period {
        return SampleSchedule::Full;
    }
    let detailed = (period / 12).max(1_000);
    let warmup = (period / 4).min(period - detailed);
    SampleSchedule::Periodic {
        period,
        warmup_len: warmup,
        detailed_len: detailed,
    }
}

impl Ladder {
    /// A ladder of `rungs` steps over `full_budget`, coarse sampled
    /// schedules on every rung except the last, which runs
    /// `final_schedule` (figure-grade sampling for sweeps, `Full`
    /// for exactness tests) over the whole budget.
    pub fn new(full_budget: u64, rungs: usize, final_schedule: SampleSchedule) -> Ladder {
        let budgets = ladder_budgets(full_budget, rungs.max(1), MIN_RUNG_BUDGET);
        let last = budgets.len() - 1;
        let rungs = budgets
            .iter()
            .enumerate()
            .map(|(i, &budget)| Rung {
                budget,
                schedule: if i == last {
                    final_schedule
                } else {
                    coarse_schedule(budget)
                },
            })
            .collect();
        let ladder = Ladder { rungs };
        ladder.validate();
        ladder
    }

    /// The full per-cell budget (the last rung's).
    pub fn full_budget(&self) -> u64 {
        self.rungs
            .last()
            .expect("ladder has at least one rung")
            .budget
    }

    /// Checks the ladder's arithmetic: non-empty, ascending budgets,
    /// every schedule internally valid.
    ///
    /// # Panics
    ///
    /// Panics on an empty ladder, descending budgets, or an invalid
    /// schedule.
    pub fn validate(&self) {
        assert!(!self.rungs.is_empty(), "ladder must have at least one rung");
        for w in self.rungs.windows(2) {
            assert!(
                w[0].budget <= w[1].budget,
                "ladder budgets must ascend ({} then {})",
                w[0].budget,
                w[1].budget
            );
        }
        for r in &self.rungs {
            r.schedule.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_schedules_are_valid_and_scale_with_budget() {
        for budget in [30_000u64, 78_125, 312_500, 1_250_000, 20_000_000] {
            let s = coarse_schedule(budget);
            s.validate();
            if let SampleSchedule::Periodic { period, .. } = s {
                assert_eq!(period, (budget / 32).max(4_000));
                let windows = budget / period;
                assert!((2..=32).contains(&windows), "{windows} windows at {budget}");
            }
        }
        // Large rungs cap at 32 windows.
        if let SampleSchedule::Periodic { period, .. } = coarse_schedule(20_000_000) {
            assert_eq!(period, 625_000);
        } else {
            panic!("a 20M-instruction rung must sample");
        }
        // A prefix too small to sample runs exact.
        assert_eq!(coarse_schedule(7_000), SampleSchedule::Full);
    }

    #[test]
    fn ladder_ascends_to_the_full_budget() {
        let ladder = Ladder::new(20_000_000, 3, SampleSchedule::default_sampled());
        assert_eq!(ladder.rungs.len(), 3);
        assert_eq!(ladder.full_budget(), 20_000_000);
        assert_eq!(ladder.rungs[0].budget, 78_125);
        assert_eq!(ladder.rungs[1].budget, 1_250_000);
        assert!(ladder.rungs[0].schedule.is_sampled());
        assert_eq!(
            ladder.rungs[2].schedule,
            SampleSchedule::default_sampled(),
            "final rung runs the requested figure-grade schedule"
        );
    }

    #[test]
    fn exactness_ladder_ends_in_full_detail() {
        let ladder = Ladder::new(60_000, 2, SampleSchedule::Full);
        assert_eq!(ladder.rungs.last().unwrap().schedule, SampleSchedule::Full);
        assert_eq!(ladder.full_budget(), 60_000);
    }
}

//! Perf-regression harness: re-measures the committed throughput
//! baseline's cells and reports percentage deltas.
//!
//! `experiments --bench-delta` re-runs the org rows (naive / batched /
//! timing for LRU, SRRIP, ACIC), the multi-tenant functional rows,
//! the trace-layer cells (generator vs packed-replay throughput,
//! spec-deduplicated grid wall ratio), the window-parallel
//! `vs_serial` wall ratio, the adaptive-DSE `effective_speedup`, and
//! the process-supervision `vs_in_process` wall ratio of
//! `BENCH_baseline.json`, then emits a JSON report with one
//! `delta_pct` per cell — positive means the working tree is faster
//! than the committed baseline. A cell measured here but absent from
//! the committed baseline (a section newer than the document, e.g. a
//! pre-v7 baseline with no `dse` section) is reported with
//! `"status": "new"` instead of failing the run, so adding a section
//! never bricks the regression harness mid-PR. `--smoke` shrinks the
//! instruction budget so CI can exercise the whole path in seconds
//! (the deltas it prints are then noise; the run only checks for
//! panics and NaNs).
//!
//! The committed baseline is read with [`Json`], the crate's
//! dependency-free recursive-descent parser (`json.rs`).

use crate::baseline::{
    measure_calibration, measure_dse, measure_multi_tenant, measure_org_rows, measure_trace,
};

pub use crate::json::Json;

/// One re-measured baseline cell. `baseline` is `None` when the
/// committed document predates the cell's section — the cell is then
/// reported as `new` rather than failing the run.
struct DeltaCell {
    /// Dotted path inside the baseline document.
    path: String,
    baseline: Option<f64>,
    measured: f64,
}

impl DeltaCell {
    fn delta_pct(&self) -> Option<f64> {
        self.baseline.map(|b| (self.measured - b) / b * 100.0)
    }

    /// Delta with the machine-speed ratio divided out: the measured
    /// value is rescaled by `baseline_spin / current_spin` before
    /// comparing, so only code-level speedups remain. `None` when the
    /// committed baseline predates the calibration cell.
    fn normalized_delta_pct(&self, scale: Option<f64>) -> Option<f64> {
        match (self.baseline, scale) {
            (Some(b), Some(s)) => Some((self.measured * s - b) / b * 100.0),
            _ => None,
        }
    }
}

/// Machine-speed scale between the committed baseline's host and this
/// one, from the spin-calibration cells.
struct CalScale {
    baseline_spin: Option<f64>,
    current_spin: f64,
}

impl CalScale {
    /// `baseline_spin / current_spin`: multiply this run's throughput
    /// by it to express the cell in baseline-host seconds.
    fn scale(&self) -> Option<f64> {
        self.baseline_spin.map(|b| b / self.current_spin.max(1e-12))
    }
}

/// Instruction budget for `--bench-delta --smoke` (honoring a smaller
/// explicit `ACIC_BASELINE_INSTRUCTIONS`).
const SMOKE_INSTRUCTIONS: u64 = 100_000;

/// Re-measures the committed baseline's throughput cells and renders
/// the delta report. `smoke` shrinks the budget for CI.
///
/// # Errors
///
/// Returns an error when the baseline file is missing or malformed,
/// or any computed delta is NaN — `experiments --bench-delta` exits
/// non-zero on these, which is what makes the CI job a regression
/// tripwire. A baseline *cell* missing from an older committed
/// document is not an error: it becomes a `"status": "new"` row.
pub fn bench_delta(smoke: bool) -> Result<String, String> {
    let path = std::env::var("ACIC_BASELINE_PATH").unwrap_or_else(|_| "BENCH_baseline.json".into());
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::str_val)
        .unwrap_or("unknown")
        .to_string();

    let instructions = if smoke {
        crate::baseline::baseline_instructions().min(SMOKE_INSTRUCTIONS)
    } else {
        crate::baseline::baseline_instructions()
    };

    let mut cells: Vec<DeltaCell> = Vec::new();
    let mut cell = |path: Vec<&str>, measured: f64| {
        cells.push(DeltaCell {
            path: path.join("."),
            baseline: doc.path(&path).and_then(Json::num),
            measured,
        });
    };

    let rows = measure_org_rows(instructions);
    for r in &rows {
        cell(vec!["orgs", r.label, "naive_ips"], r.naive_ips);
        cell(vec!["orgs", r.label, "devirt_batched_ips"], r.batched_ips);
        cell(vec!["orgs", r.label, "timing_sim_ips"], r.timing_ips);
    }
    let (_, mt_rows) = measure_multi_tenant(instructions);
    for r in &mt_rows {
        cell(
            vec!["multi_tenant", "orgs", r.label, "functional_ips"],
            r.functional_ips,
        );
    }
    let grid_instructions = if smoke {
        instructions
    } else {
        crate::baseline::trace_grid_instructions()
    };
    let tr = measure_trace(instructions, grid_instructions);
    cell(vec!["trace", "generator_ips"], tr.generator_ips);
    cell(vec!["trace", "packed_replay_ips"], tr.packed_replay_ips);
    // A ratio, not an IPS — still a higher-is-better throughput cell,
    // so the same delta convention (positive = improvement) applies.
    cell(vec!["trace", "grid", "wall_ratio"], tr.grid_wall_ratio);
    // Window-parallel fan-out speedup: same ratio convention. Smoke
    // budgets degenerate the plan to a full run (ratio ~1; noise),
    // which still exercises the whole path.
    let wp = crate::window_smoke::measure_window_parallel(if smoke {
        instructions
    } else {
        crate::baseline::sampled_instructions()
    });
    cell(vec!["window_parallel", "vs_serial"], wp.vs_serial());
    // Adaptive-DSE wall-time win: exhaustive-grid-equivalents of
    // design space per exhaustive-grid wall second. Higher is better,
    // same delta convention.
    let dse = measure_dse(grid_instructions, smoke)?;
    cell(vec!["dse", "effective_speedup"], dse.effective_speedup);
    // Process-supervision overhead: in-process over supervised wall
    // clock on a small healthy grid. Same ratio convention (1.0 =
    // free supervision; per-cell spawn cost pulls it below 1, and a
    // regression in the supervisor shows up as a falling ratio).
    let sup = crate::supervise::measure_supervise_overhead(if smoke {
        instructions.min(20_000)
    } else {
        instructions
    })?;
    cell(vec!["supervise", "vs_in_process"], sup.vs_in_process());

    // Spin-calibration: divide machine speed out of the IPS cells so
    // cross-host comparisons measure the code, not the host. Ratio
    // cells (wall_ratio, vs_serial, ...) are host-invariant already;
    // their normalized delta is still emitted for uniformity.
    let cal = CalScale {
        baseline_spin: doc
            .path(&["calibration", "spin_ops_per_sec"])
            .and_then(Json::num)
            .filter(|&s| s > 0.0),
        current_spin: measure_calibration().spin_ops_per_sec,
    };

    render_delta(&schema, instructions, smoke, &cal, &cells)
}

/// Renders the delta report (split from the measurement so the
/// new-cell tolerance is unit-testable without re-measuring).
///
/// # Errors
///
/// Returns an error when a cell that *does* have a committed baseline
/// produced a non-finite delta.
fn render_delta(
    schema: &str,
    instructions: u64,
    smoke: bool,
    cal: &CalScale,
    cells: &[DeltaCell],
) -> Result<String, String> {
    for c in cells {
        if c.delta_pct().is_some_and(|d| !d.is_finite()) {
            return Err(format!("cell {} produced a non-finite delta", c.path));
        }
    }
    let scale = cal.scale();
    let new_cells = cells.iter().filter(|c| c.baseline.is_none()).count();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"acic-bench-delta/v1\",\n");
    out.push_str(&format!("  \"baseline_schema\": \"{schema}\",\n"));
    out.push_str(&format!("  \"instructions\": {instructions},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"calibration\": {\n");
    out.push_str(&format!(
        "    \"current_spin_ops_per_sec\": {:.0},\n",
        cal.current_spin
    ));
    match (cal.baseline_spin, scale) {
        (Some(b), Some(s)) => {
            out.push_str(&format!("    \"baseline_spin_ops_per_sec\": {b:.0},\n"));
            out.push_str(&format!("    \"machine_scale\": {s:.3}\n"));
        }
        _ => out.push_str("    \"baseline_spin_ops_per_sec\": null\n"),
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"new_cells\": {new_cells},\n"));
    out.push_str("  \"cells\": {\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        match (c.baseline, c.delta_pct()) {
            // Plain `{:.1}` — a `+` sign prefix would be invalid
            // strict JSON (negative deltas carry their `-` naturally).
            (Some(b), Some(d)) => {
                let norm = c
                    .normalized_delta_pct(scale)
                    .map(|n| format!(", \"normalized_delta_pct\": {n:.1}"))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "    \"{}\": {{ \"baseline_ips\": {:.0}, \"measured_ips\": {:.0}, \"delta_pct\": {:.1}{} }}{}\n",
                    c.path, b, c.measured, d, norm, sep
                ));
            }
            _ => out.push_str(&format!(
                "    \"{}\": {{ \"status\": \"new\", \"measured_ips\": {:.0} }}{}\n",
                c.path, c.measured, sep
            )),
        }
    }
    out.push_str("  }\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_cell_math() {
        let c = DeltaCell {
            path: "x".into(),
            baseline: Some(100.0),
            measured: 140.0,
        };
        assert!((c.delta_pct().unwrap() - 40.0).abs() < 1e-9);
        let new = DeltaCell {
            path: "y".into(),
            baseline: None,
            measured: 140.0,
        };
        assert!(new.delta_pct().is_none());
    }

    #[test]
    fn missing_baseline_cell_renders_as_new_instead_of_failing() {
        let cells = vec![
            DeltaCell {
                path: "orgs.lru.naive_ips".into(),
                baseline: Some(100.0),
                measured: 120.0,
            },
            DeltaCell {
                path: "dse.effective_speedup".into(),
                baseline: None,
                measured: 30.0,
            },
        ];
        // Pre-v9 baseline: no spin cell, so no normalized deltas.
        let cal = CalScale {
            baseline_spin: None,
            current_spin: 5e8,
        };
        let j = render_delta("acic-throughput-baseline/v6", 1_000, false, &cal, &cells)
            .expect("new cells are tolerated");
        assert!(j.contains("\"new_cells\": 1"));
        assert!(j.contains("\"delta_pct\": 20.0"));
        assert!(j.contains("\"baseline_spin_ops_per_sec\": null"));
        assert!(!j.contains("normalized_delta_pct"));
        assert!(
            j.contains("\"dse.effective_speedup\": { \"status\": \"new\", \"measured_ips\": 30 }")
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        Json::parse(&j).expect("delta report stays valid JSON");
    }

    #[test]
    fn calibrated_baseline_adds_normalized_deltas() {
        let cells = vec![DeltaCell {
            path: "orgs.lru.timing_sim_ips".into(),
            baseline: Some(100.0),
            measured: 300.0,
        }];
        // This host spins 2x the baseline host: the raw 3x speedup
        // normalizes to 1.5x (+50%).
        let cal = CalScale {
            baseline_spin: Some(2.5e8),
            current_spin: 5e8,
        };
        let j = render_delta("acic-throughput-baseline/v9", 1_000, false, &cal, &cells)
            .expect("calibrated render succeeds");
        assert!(j.contains("\"machine_scale\": 0.500"));
        assert!(j.contains("\"delta_pct\": 200.0"));
        assert!(j.contains("\"normalized_delta_pct\": 50.0"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        Json::parse(&j).expect("calibrated delta report stays valid JSON");
    }

    #[test]
    fn non_finite_delta_on_a_known_cell_still_fails() {
        let cells = vec![DeltaCell {
            path: "orgs.lru.naive_ips".into(),
            baseline: Some(0.0),
            measured: 120.0,
        }];
        let cal = CalScale {
            baseline_spin: None,
            current_spin: 5e8,
        };
        let err = render_delta("s", 1_000, false, &cal, &cells).unwrap_err();
        assert!(err.contains("non-finite delta"), "{err}");
    }
}

//! Perf-regression harness: re-measures the committed throughput
//! baseline's cells and reports percentage deltas.
//!
//! `experiments --bench-delta` re-runs the org rows (naive / batched /
//! timing for LRU, SRRIP, ACIC), the multi-tenant functional rows,
//! the trace-layer cells (generator vs packed-replay throughput,
//! spec-deduplicated grid wall ratio), and the window-parallel
//! `vs_serial` wall ratio of `BENCH_baseline.json`, then
//! emits a JSON report with one
//! `delta_pct` per cell — positive means the working tree is faster
//! than the committed baseline. `--smoke` shrinks the instruction
//! budget so CI can exercise the whole path in seconds (the deltas it
//! prints are then noise; the run only checks for panics and NaNs).
//!
//! The committed baseline is read with [`Json`], the crate's
//! dependency-free recursive-descent parser (`json.rs`).

use crate::baseline::{measure_multi_tenant, measure_org_rows, measure_trace};

pub use crate::json::Json;

/// One re-measured baseline cell.
struct DeltaCell {
    /// Dotted path inside the baseline document.
    path: String,
    baseline: f64,
    measured: f64,
}

impl DeltaCell {
    fn delta_pct(&self) -> f64 {
        (self.measured - self.baseline) / self.baseline * 100.0
    }
}

/// Instruction budget for `--bench-delta --smoke` (honoring a smaller
/// explicit `ACIC_BASELINE_INSTRUCTIONS`).
const SMOKE_INSTRUCTIONS: u64 = 100_000;

/// Re-measures the committed baseline's throughput cells and renders
/// the delta report. `smoke` shrinks the budget for CI.
///
/// # Errors
///
/// Returns an error when the baseline file is missing or malformed, a
/// baseline cell re-measured here is absent from it, or any computed
/// delta is NaN — `experiments --bench-delta` exits non-zero on all
/// of these, which is what makes the CI job a regression tripwire.
pub fn bench_delta(smoke: bool) -> Result<String, String> {
    let path = std::env::var("ACIC_BASELINE_PATH").unwrap_or_else(|_| "BENCH_baseline.json".into());
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::str_val)
        .unwrap_or("unknown");

    let instructions = if smoke {
        crate::baseline::baseline_instructions().min(SMOKE_INSTRUCTIONS)
    } else {
        crate::baseline::baseline_instructions()
    };

    let mut cells: Vec<DeltaCell> = Vec::new();
    let mut cell = |path: Vec<&str>, measured: f64| -> Result<(), String> {
        let dotted = path.join(".");
        let baseline = doc
            .path(&path)
            .and_then(Json::num)
            .ok_or_else(|| format!("baseline cell {dotted} missing from {schema}"))?;
        cells.push(DeltaCell {
            path: dotted,
            baseline,
            measured,
        });
        Ok(())
    };

    let rows = measure_org_rows(instructions);
    for r in &rows {
        cell(vec!["orgs", r.label, "naive_ips"], r.naive_ips)?;
        cell(vec!["orgs", r.label, "devirt_batched_ips"], r.batched_ips)?;
        cell(vec!["orgs", r.label, "timing_sim_ips"], r.timing_ips)?;
    }
    let (_, mt_rows) = measure_multi_tenant(instructions);
    for r in &mt_rows {
        cell(
            vec!["multi_tenant", "orgs", r.label, "functional_ips"],
            r.functional_ips,
        )?;
    }
    let tr = measure_trace(
        instructions,
        if smoke {
            instructions
        } else {
            crate::baseline::trace_grid_instructions()
        },
    );
    cell(vec!["trace", "generator_ips"], tr.generator_ips)?;
    cell(vec!["trace", "packed_replay_ips"], tr.packed_replay_ips)?;
    // A ratio, not an IPS — still a higher-is-better throughput cell,
    // so the same delta convention (positive = improvement) applies.
    cell(vec!["trace", "grid", "wall_ratio"], tr.grid_wall_ratio)?;
    // Window-parallel fan-out speedup: same ratio convention. Smoke
    // budgets degenerate the plan to a full run (ratio ~1; noise),
    // which still exercises the whole path.
    let wp = crate::window_smoke::measure_window_parallel(if smoke {
        instructions
    } else {
        crate::baseline::sampled_instructions()
    });
    cell(vec!["window_parallel", "vs_serial"], wp.vs_serial())?;

    for c in &cells {
        if !c.delta_pct().is_finite() {
            return Err(format!("cell {} produced a non-finite delta", c.path));
        }
    }

    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"acic-bench-delta/v1\",\n");
    out.push_str(&format!("  \"baseline_schema\": \"{schema}\",\n"));
    out.push_str(&format!("  \"instructions\": {instructions},\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str("  \"cells\": {\n");
    for (i, c) in cells.iter().enumerate() {
        // Plain `{:.1}` — a `+` sign prefix would be invalid strict
        // JSON (negative deltas carry their `-` naturally).
        out.push_str(&format!(
            "    \"{}\": {{ \"baseline_ips\": {:.0}, \"measured_ips\": {:.0}, \"delta_pct\": {:.1} }}{}\n",
            c.path,
            c.baseline,
            c.measured,
            c.delta_pct(),
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_cell_math() {
        let c = DeltaCell {
            path: "x".into(),
            baseline: 100.0,
            measured: 140.0,
        };
        assert!((c.delta_pct() - 40.0).abs() < 1e-9);
    }
}

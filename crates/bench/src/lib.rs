//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (§II, §IV).
//!
//! Each `benches/figNN_*.rs` target (all `harness = false`) prints the
//! same rows/series the paper reports; `cargo bench --workspace` runs
//! them all. The instruction budget defaults to 1 M instructions per
//! application (the paper uses 500 M–1 B) and scales through the
//! `ACIC_EXP_INSTRUCTIONS` environment variable.
//!
//! # Examples
//!
//! ```no_run
//! // Regenerate Figure 10's speedup table at 4 M instructions/app:
//! // ACIC_EXP_INSTRUCTIONS=4000000 cargo bench -p acic-bench --bench fig10_speedup
//! println!("{}", acic_bench::figures::fig10_speedup());
//! ```

pub mod baseline;
pub mod delta;
pub mod dse;
pub mod fault;
pub mod figures;
pub mod json;
pub mod result_store;
pub mod runner;
pub mod supervise;
pub mod trace_store;
pub mod window_smoke;

pub use runner::{instruction_budget, run_config, run_pair, run_spec, Runner, WorkloadSpec};

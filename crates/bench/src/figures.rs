//! One function per paper figure/table; each returns the formatted
//! text its bench target prints.

use crate::runner::{
    instruction_budget, markdown_table, run_config, short_name, Runner, WorkloadSpec,
};
use crate::trace_store;
use acic_core::acic::{ACCURACY_BOUNDS, INSERT_DELTA_LABELS};
use acic_core::{AcicConfig, PredictorKind, UpdateMode};
use acic_energy::{storage_table_rows, EnergyModel};
use acic_sim::{IcacheOrg, PrefetcherKind, SimConfig, SimReport, Simulator};
use acic_trace::{BlockRuns, MarkovChain, ReuseBucket, StackDistanceAnalyzer, TraceSource};
use acic_types::stats::{gmean, mean};
use acic_workloads::AppProfile;

fn dc_apps() -> Vec<AppProfile> {
    AppProfile::datacenter_suite()
}

/// Freezes or dies: figure-level fault isolation (the keep-going loop
/// in `experiments`) catches the panic and fails just this figure.
fn must_freeze(spec: &WorkloadSpec, instructions: u64) -> std::sync::Arc<acic_trace::PackedTrace> {
    trace_store::freeze(spec, instructions).unwrap_or_else(|e| panic!("{e}"))
}

fn fmt_speedup_rows(
    orgs: &[IcacheOrg],
    baseline: &[SimReport],
    rows: &[Vec<SimReport>],
    value: impl Fn(&SimReport, &SimReport) -> f64,
    summary: impl Fn(&[f64]) -> f64,
    summary_label: &str,
) -> String {
    let mut header = vec!["config".to_string()];
    header.extend(baseline.iter().map(|r| short_name(&r.app)));
    header.push(summary_label.to_string());
    let mut out_rows = Vec::new();
    for (org, row) in orgs.iter().zip(rows) {
        let vals: Vec<f64> = row.iter().zip(baseline).map(|(r, b)| value(r, b)).collect();
        let mut cells = vec![org.label().to_string()];
        cells.extend(vals.iter().map(|v| format!("{v:.4}")));
        cells.push(format!("{:.4}", summary(&vals)));
        out_rows.push(cells);
    }
    markdown_table(&header, &out_rows)
}

/// Figure 1a: reuse-distance distribution per application.
pub fn fig01a_reuse_hist() -> String {
    let n = instruction_budget();
    let mut rows = Vec::new();
    for p in dc_apps() {
        let wl = must_freeze(&WorkloadSpec::Single(p), n);
        let blocks: Vec<_> = wl.iter().map(|i| i.pc().block()).collect();
        let h = StackDistanceAnalyzer::histogram(&blocks);
        let f = h.fractions();
        let mut cells = vec![wl.name().to_string()];
        cells.extend(
            ReuseBucket::ALL
                .iter()
                .map(|&b| format!("{:.3}%", f[b as usize] * 100.0)),
        );
        rows.push(cells);
    }
    let mut header = vec!["application".to_string()];
    header.extend(ReuseBucket::ALL.iter().map(|b| b.label().to_string()));
    format!(
        "Figure 1a — reuse-distance distribution ({} instructions/app)\n{}",
        instruction_budget(),
        markdown_table(&header, &rows)
    )
}

/// Figure 1b: Markov chain of reuse-distance buckets in media
/// streaming.
pub fn fig01b_markov() -> String {
    let wl = must_freeze(
        &WorkloadSpec::Single(AppProfile::media_streaming()),
        instruction_budget(),
    );
    let seq: Vec<_> = BlockRuns::new(wl.iter()).map(|r| r.block).collect();
    let chain = MarkovChain::from_sequence(&seq);
    let mut header = vec!["from \\ to".to_string()];
    header.extend(ReuseBucket::ALL.iter().map(|b| b.label().to_string()));
    let mut rows = Vec::new();
    for from in ReuseBucket::ALL {
        let mut cells = vec![from.label().to_string()];
        for to in ReuseBucket::ALL {
            cells.push(format!("{:.3}", chain.transition_probability(from, to)));
        }
        rows.push(cells);
    }
    format!(
        "Figure 1b — Markov chain of reuse-distance ranges, media streaming\n{}",
        markdown_table(&header, &rows)
    )
}

/// Figure 3a: always-insert i-Filter, access-count bypass and OPT
/// replacement speedups over the LRU+FDP baseline.
pub fn fig03a_ifilter_gap() -> String {
    let runner = Runner::new();
    let orgs = [
        IcacheOrg::IFilterAlways,
        IcacheOrg::AccessCount,
        IcacheOrg::Opt,
    ];
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&orgs, &apps);
    format!(
        "Figure 3a — speedup over LRU+FDP baseline\n{}",
        fmt_speedup_rows(
            &orgs,
            &baseline,
            &rows,
            |r, b| r.speedup_over(b),
            |v| gmean(v).unwrap_or(0.0),
            "gmean",
        )
    )
}

/// Figure 3b: (incoming - outgoing) forward reuse distance at
/// i-Filter-to-i-cache insertions, media streaming.
pub fn fig03b_insert_delta() -> String {
    let cfg = SimConfig {
        attach_oracle: true,
        icache_org: IcacheOrg::Acic(AcicConfig {
            predictor: PredictorKind::AlwaysAdmit,
            ..AcicConfig::default()
        }),
        ..SimConfig::default()
    };
    let report = run_config(&cfg, &AppProfile::media_streaming(), instruction_budget());
    let acic = report.acic.expect("ACIC stats");
    let total: u64 = acic.insert_delta.iter().sum();
    let mut rows = Vec::new();
    for (label, count) in INSERT_DELTA_LABELS.iter().zip(acic.insert_delta.iter()) {
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", *count as f64 / total.max(1) as f64 * 100.0),
        ]);
    }
    let wrong: u64 = acic.insert_delta[6..].iter().sum();
    format!(
        "Figure 3b — insertion reuse-distance delta, media streaming\n{}\nincoming block arrives later than outgoing in {:.2}% of insertions (paper: 38.38%)\n",
        markdown_table(&["delta bucket".into(), "fraction".into()], &rows),
        wrong as f64 / total.max(1) as f64 * 100.0
    )
}

/// Figure 6: CSHR comparison-lifetime distribution, data caching.
pub fn fig06_cshr_lifetime() -> String {
    let cfg = SimConfig {
        unbounded_cshr: true,
        icache_org: IcacheOrg::acic_default(),
        ..SimConfig::default()
    };
    let report = run_config(&cfg, &AppProfile::data_caching(), instruction_budget());
    let f = report.cshr_lifetimes.expect("unbounded CSHR enabled");
    let labels = ["0", "50", "100", "150", "200", "250", "300", "350", "InF"];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(f.iter())
        .map(|(l, v)| vec![l.to_string(), format!("{:.2}%", v * 100.0)])
        .collect();
    // Buckets are 50 entries wide; the first six cover < 300
    // concurrent entries — the closest bucket boundary to the paper's
    // 256-entry CSHR.
    let within_256: f64 = f[..6].iter().sum();
    format!(
        "Figure 6 — comparisons by concurrent CSHR entries needed, data caching\n{}\n~{:.0}% of comparisons resolve within ~256 entries (paper: ~70%)\n",
        markdown_table(&["entries needed".into(), "fraction".into()], &rows),
        within_256 * 100.0
    )
}

/// Figures 10: speedup of every compared scheme over LRU+FDP.
pub fn fig10_speedup() -> String {
    let runner = Runner::new();
    let orgs = IcacheOrg::figure10_set();
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&orgs, &apps);
    format!(
        "Figure 10 — speedup over LRU baseline with fetch-directed prefetching\n{}",
        fmt_speedup_rows(
            &orgs,
            &baseline,
            &rows,
            |r, b| r.speedup_over(b),
            |v| gmean(v).unwrap_or(0.0),
            "gmean",
        )
    )
}

/// Figure 11: L1i MPKI reduction of every compared scheme.
pub fn fig11_mpki() -> String {
    let runner = Runner::new();
    let orgs = IcacheOrg::figure10_set();
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&orgs, &apps);
    format!(
        "Figure 11 — L1i MPKI reduction over LRU baseline with FDP\n{}",
        fmt_speedup_rows(
            &orgs,
            &baseline,
            &rows,
            |r, b| r.mpki_reduction_over(b),
            |v| mean(v).unwrap_or(0.0),
            "avg",
        )
    )
}

/// Figure 12a: ACIC bypass accuracy by reuse-distance range.
pub fn fig12a_accuracy() -> String {
    let runner = Runner {
        baseline: SimConfig {
            attach_oracle: true,
            ..SimConfig::default()
        },
        ..Runner::new()
    };
    let apps = dc_apps();
    let grid = runner.run_grid(
        &[runner.baseline.with_org(IcacheOrg::acic_default())],
        &WorkloadSpec::singles(&apps),
    );
    let mut sums = vec![(0.0, 0u64); ACCURACY_BOUNDS.len()];
    for r in &grid[0] {
        let acic = r.acic.expect("ACIC stats");
        for (i, ratio) in acic.accuracy.iter().enumerate() {
            if ratio.denominator() > 0 {
                sums[i].0 += ratio.fraction();
                sums[i].1 += 1;
            }
        }
    }
    let rows: Vec<Vec<String>> = ACCURACY_BOUNDS
        .iter()
        .zip(sums.iter())
        .map(|(b, (acc, n))| {
            let label = if *b == u64::MAX {
                "[0,InF)".to_string()
            } else {
                format!("[0,{b})")
            };
            vec![
                label,
                format!("{:.2}%", if *n > 0 { acc / *n as f64 * 100.0 } else { 0.0 }),
            ]
        })
        .collect();
    format!(
        "Figure 12a — average ACIC bypass accuracy by reuse-distance range\n{}",
        markdown_table(&["range".into(), "accuracy".into()], &rows)
    )
}

/// Figure 12b: MPKI reduction of random-60% bypass vs ACIC.
pub fn fig12b_random() -> String {
    let runner = Runner::new();
    let random = IcacheOrg::Acic(AcicConfig {
        predictor: PredictorKind::Random {
            seed: 0xf12b,
            num: 3,
            denom: 5,
        },
        ..AcicConfig::default()
    });
    let orgs = [random, IcacheOrg::acic_default()];
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&orgs, &apps);
    let labels = ["Random bypass (60%)", "ACIC"];
    let mut header = vec!["config".to_string()];
    header.extend(baseline.iter().map(|r| short_name(&r.app)));
    header.push("avg".into());
    let mut out_rows = Vec::new();
    for (label, row) in labels.iter().zip(&rows) {
        let vals: Vec<f64> = row
            .iter()
            .zip(&baseline)
            .map(|(r, b)| r.mpki_reduction_over(b))
            .collect();
        let mut cells = vec![label.to_string()];
        cells.extend(vals.iter().map(|v| format!("{:.2}%", v * 100.0)));
        cells.push(format!("{:.2}%", mean(&vals).unwrap_or(0.0) * 100.0));
        out_rows.push(cells);
    }
    format!(
        "Figure 12b — MPKI reduction: random bypass vs ACIC over FDP baseline\n{}",
        markdown_table(&header, &out_rows)
    )
}

/// Figure 13: percentage of i-Filter victims admitted per app.
pub fn fig13_admit_rate() -> String {
    let runner = Runner::new();
    let grid = runner.run_grid(
        &[runner.baseline.with_org(IcacheOrg::acic_default())],
        &WorkloadSpec::singles(&dc_apps()),
    );
    let rows: Vec<Vec<String>> = grid[0]
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                format!(
                    "{:.1}%",
                    r.acic.expect("ACIC stats").admit_fraction() * 100.0
                ),
            ]
        })
        .collect();
    format!(
        "Figure 13 — i-Filter victims inserted into the i-cache\n{}",
        markdown_table(&["application".into(), "admitted".into()], &rows)
    )
}

/// Figure 14: parallel (2-cycle) vs instant predictor updates.
pub fn fig14_update_latency() -> String {
    let runner = Runner::new();
    let parallel = IcacheOrg::Acic(AcicConfig::default());
    let instant = IcacheOrg::Acic(AcicConfig {
        update_mode: UpdateMode::Instant,
        ..AcicConfig::default()
    });
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&[parallel, instant], &apps);
    let labels = ["parallel update", "instant update"];
    let mut out_rows = Vec::new();
    for (label, row) in labels.iter().zip(&rows) {
        let vals: Vec<f64> = row
            .iter()
            .zip(&baseline)
            .map(|(r, b)| r.mpki_reduction_over(b))
            .collect();
        let mut cells = vec![label.to_string()];
        cells.extend(vals.iter().map(|v| format!("{:.2}%", v * 100.0)));
        cells.push(format!("{:.2}%", mean(&vals).unwrap_or(0.0) * 100.0));
        out_rows.push(cells);
    }
    let mut header = vec!["scheme".to_string()];
    header.extend(baseline.iter().map(|r| short_name(&r.app)));
    header.push("avg".into());
    format!(
        "Figure 14 — MPKI reduction: 2-cycle (parallel) vs instant predictor update\n{}",
        markdown_table(&header, &out_rows)
    )
}

/// Figure 15: sensitivity of ACIC's gmean speedup to its parameters.
pub fn fig15_sensitivity() -> String {
    let d = AcicConfig::default();
    let variants: Vec<(&str, AcicConfig)> = vec![
        ("default", d),
        (
            "2k HRT entries",
            AcicConfig {
                hrt_entries: 2048,
                ..d
            },
        ),
        (
            "512 HRT entries",
            AcicConfig {
                hrt_entries: 512,
                ..d
            },
        ),
        (
            "8-bit history",
            AcicConfig {
                history_bits: 8,
                ..d
            },
        ),
        (
            "10-bit history",
            AcicConfig {
                history_bits: 10,
                ..d
            },
        ),
        (
            "2-bit counter",
            AcicConfig {
                pt_counter_bits: 2,
                ..d
            },
        ),
        (
            "8-bit counter",
            AcicConfig {
                pt_counter_bits: 8,
                ..d
            },
        ),
        (
            "8-slot i-Filter",
            AcicConfig {
                filter_entries: 8,
                ..d
            },
        ),
        (
            "32-slot i-Filter",
            AcicConfig {
                filter_entries: 32,
                ..d
            },
        ),
        (
            "7-bit CSHR tag",
            AcicConfig {
                cshr_tag_bits: 7,
                ..d
            },
        ),
        (
            "15-bit CSHR tag",
            AcicConfig {
                cshr_tag_bits: 15,
                ..d
            },
        ),
    ];
    let runner = Runner::new();
    let orgs: Vec<IcacheOrg> = variants.iter().map(|(_, c)| IcacheOrg::Acic(*c)).collect();
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&orgs, &apps);
    let out_rows: Vec<Vec<String>> = variants
        .iter()
        .zip(&rows)
        .map(|((label, _), row)| {
            let sp: Vec<f64> = row
                .iter()
                .zip(&baseline)
                .map(|(r, b)| r.speedup_over(b))
                .collect();
            vec![
                label.to_string(),
                format!("{:.4}", gmean(&sp).unwrap_or(0.0)),
            ]
        })
        .collect();
    format!(
        "Figure 15 — ACIC sensitivity (gmean speedup over LRU+FDP). Note: the paper's\n27-bit CSHR tag point is capped at 15 bits here (tags are folded hashes).\n{}",
        markdown_table(&["configuration".into(), "gmean speedup".into()], &out_rows)
    )
}

/// Figure 16: ACIC speedup over the FDP baseline *with* an i-Filter.
pub fn fig16_over_ifilter() -> String {
    let runner = Runner::new();
    let apps = dc_apps();
    let configs = vec![
        runner.baseline.with_org(IcacheOrg::IFilterAlways),
        runner.baseline.with_org(IcacheOrg::acic_default()),
    ];
    let grid = runner.run_grid(&configs, &WorkloadSpec::singles(&apps));
    let rows: Vec<Vec<String>> = grid[1]
        .iter()
        .zip(&grid[0])
        .map(|(acic, filt)| vec![acic.app.clone(), format!("{:.4}", acic.speedup_over(filt))])
        .collect();
    let sp: Vec<f64> = grid[1]
        .iter()
        .zip(&grid[0])
        .map(|(a, f)| a.speedup_over(f))
        .collect();
    format!(
        "Figure 16 — ACIC speedup over FDP baseline equipped with i-Filter (gmean {:.4})\n{}",
        gmean(&sp).unwrap_or(0.0),
        markdown_table(&["application".into(), "speedup".into()], &rows)
    )
}

/// Figure 17: ACIC ablations (no filter / filter only / global
/// history / bimodal).
pub fn fig17_ablation() -> String {
    let d = AcicConfig::default();
    let variants: Vec<(&str, AcicConfig)> = vec![
        ("default", d),
        (
            "no i-Filter",
            AcicConfig {
                filter_entries: 0,
                ..d
            },
        ),
        (
            "i-Filter only",
            AcicConfig {
                predictor: PredictorKind::AlwaysAdmit,
                ..d
            },
        ),
        (
            "global-history predictor",
            AcicConfig {
                predictor: PredictorKind::GlobalHistory,
                ..d
            },
        ),
        (
            "bimodal predictor",
            AcicConfig {
                predictor: PredictorKind::Bimodal,
                ..d
            },
        ),
    ];
    let runner = Runner::new();
    let orgs: Vec<IcacheOrg> = variants.iter().map(|(_, c)| IcacheOrg::Acic(*c)).collect();
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&orgs, &apps);
    let out_rows: Vec<Vec<String>> = variants
        .iter()
        .zip(&rows)
        .map(|((label, _), row)| {
            let sp: Vec<f64> = row
                .iter()
                .zip(&baseline)
                .map(|(r, b)| r.speedup_over(b))
                .collect();
            vec![
                label.to_string(),
                format!("{:.4}", gmean(&sp).unwrap_or(0.0)),
            ]
        })
        .collect();
    format!(
        "Figure 17 — gmean speedup of ACIC with simpler designs over FDP baseline\n{}",
        markdown_table(&["design".into(), "gmean speedup".into()], &out_rows)
    )
}

fn spec_comparison(prefetcher: PrefetcherKind, apps: &[AppProfile], title: &str) -> String {
    let runner = Runner::with_prefetcher(prefetcher);
    let orgs = [
        IcacheOrg::Ghrp,
        IcacheOrg::Larger36k,
        IcacheOrg::acic_default(),
        IcacheOrg::Opt,
    ];
    let (baseline, rows) = runner.run_orgs(&orgs, apps);
    let speedups = fmt_speedup_rows(
        &orgs,
        &baseline,
        &rows,
        |r, b| r.speedup_over(b),
        |v| gmean(v).unwrap_or(0.0),
        "gmean",
    );
    let mpki = fmt_speedup_rows(
        &orgs,
        &baseline,
        &rows,
        |r, b| r.mpki_reduction_over(b),
        |v| mean(v).unwrap_or(0.0),
        "avg",
    );
    format!("{title}\nSpeedup:\n{speedups}\nMPKI reduction (fractions):\n{mpki}")
}

/// Figures 18 & 19: the SPEC2017 study.
pub fn fig18_19_spec() -> String {
    spec_comparison(
        PrefetcherKind::Fdp,
        &AppProfile::spec_suite(),
        "Figures 18/19 — SPEC2017 subset over FDP baseline (GHRP, 36KB L1i, ACIC, OPT)",
    )
}

/// Figures 20 & 21: the entangling-prefetcher study.
pub fn fig20_21_entangling() -> String {
    spec_comparison(
        PrefetcherKind::Entangling,
        &dc_apps(),
        "Figures 20/21 — datacenter suite over entangling-prefetcher baseline",
    )
}

/// Table I: ACIC storage breakdown.
pub fn table1_storage() -> String {
    let cfg = AcicConfig::default();
    let rows = vec![
        vec![
            "i-Filter".to_string(),
            format!(
                "{} bits ({:.3} KB)",
                cfg.filter_bits(),
                cfg.filter_bits() as f64 / 8192.0
            ),
        ],
        vec![
            "HRT".to_string(),
            format!(
                "{} bits ({:.3} KB)",
                cfg.hrt_bits(),
                cfg.hrt_bits() as f64 / 8192.0
            ),
        ],
        vec![
            "PT".to_string(),
            format!("{} bits ({} B)", cfg.pt_bits(), cfg.pt_bits() / 8),
        ],
        vec![
            "PT entry update queue".to_string(),
            format!(
                "{} bits ({} B)",
                cfg.pt_queue_bits(),
                cfg.pt_queue_bits() / 8
            ),
        ],
        vec![
            "CSHR".to_string(),
            format!(
                "{} bits ({:.4} KB)",
                cfg.cshr_bits(),
                cfg.cshr_bits() as f64 / 8192.0
            ),
        ],
        vec!["Total".to_string(), format!("{:.2} KB", cfg.storage_kib())],
    ];
    format!(
        "Table I — storage overhead of ACIC for a 32KB, 8-way i-cache\n{}",
        markdown_table(&["component".into(), "size".into()], &rows)
    )
}

/// Table II: simulated core parameters.
pub fn table2_config() -> String {
    let c = SimConfig::default();
    let rows = vec![
        vec![
            "Fetch width".into(),
            format!("{}-wide, {}-entry FTQ", c.fetch_width, c.ftq_entries),
        ],
        vec![
            "Decode".into(),
            format!(
                "{}-wide, {}-entry queue",
                c.decode_width, c.decode_queue_entries
            ),
        ],
        vec![
            "ROB".into(),
            format!("{} entries, retire {}/cycle", c.rob_entries, c.retire_width),
        ],
        vec!["BTB".into(), "8192-entry, 4-way".into()],
        vec![
            "Branch predictor".into(),
            "TAGE (4 tagged tables) + ITTAGE-lite indirect".into(),
        ],
        vec![
            "L1 I-cache".into(),
            format!(
                "32KB, 8-way, {} MSHRs, {}-cycle",
                c.l1i_mshrs, c.l1i_hit_latency
            ),
        ],
        vec![
            "L1 D-cache".into(),
            format!("48KB, {} MSHRs, {}-cycle", c.l1d_mshrs, c.l1d_hit_latency),
        ],
        vec!["L2".into(), format!("512KB, 8-way, {}-cycle", c.l2_latency)],
        vec!["L3".into(), format!("2MB, 16-way, {}-cycle", c.l3_latency)],
        vec![
            "DRAM".into(),
            format!("{}-cycle, {}-cycle channel gap", c.dram_latency, c.dram_gap),
        ],
    ];
    format!(
        "Table II — simulated system parameters\n{}",
        markdown_table(&["parameter".into(), "value".into()], &rows)
    )
}

/// Table III: baseline (LRU + FDP) L1i MPKI per application.
pub fn table3_mpki() -> String {
    let runner = Runner::new();
    let grid = runner.run_grid(
        std::slice::from_ref(&runner.baseline),
        &WorkloadSpec::singles(&dc_apps()),
    );
    let rows: Vec<Vec<String>> = grid[0]
        .iter()
        .map(|r| vec![r.app.clone(), format!("{:.2}", r.l1i_mpki())])
        .collect();
    format!(
        "Table III — baseline L1i MPKI (LRU + FDP, {} instructions/app)\n{}",
        runner.instructions,
        markdown_table(&["application".into(), "MPKI".into()], &rows)
    )
}

/// Table IV: storage overhead of every compared scheme.
pub fn table4_schemes() -> String {
    let rows: Vec<Vec<String>> = storage_table_rows()
        .into_iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.strategy.to_string(),
                format!("{:.2} KB", s.kib),
            ]
        })
        .collect();
    format!(
        "Table IV — storage overhead of the compared schemes\n{}",
        markdown_table(
            &["scheme".into(), "strategy".into(), "storage".into()],
            &rows
        )
    )
}

/// §III-D: chip-energy delta of ACIC vs the baseline.
pub fn energy_summary() -> String {
    let runner = Runner::new();
    let apps = dc_apps();
    let (baseline, rows) = runner.run_orgs(&[IcacheOrg::acic_default()], &apps);
    let model = EnergyModel::default();
    let mut out_rows = Vec::new();
    let mut deltas = Vec::new();
    for (acic, base) in rows[0].iter().zip(&baseline) {
        let d = model.relative_delta(acic, base);
        deltas.push(d);
        out_rows.push(vec![acic.app.clone(), format!("{:+.3}%", d * 100.0)]);
    }
    out_rows.push(vec![
        "average".into(),
        format!("{:+.3}%", mean(&deltas).unwrap_or(0.0) * 100.0),
    ]);
    format!(
        "§III-D — chip energy delta of ACIC vs LRU+FDP (negative = savings; paper: -0.63%)\n{}",
        markdown_table(&["application".into(), "energy delta".into()], &out_rows)
    )
}

/// Multi-tenant context-switch scenario: organizations x tenant
/// counts x switch quanta.
///
/// Three organizations frame the value of address-space identity:
/// `LRU flush` (no ASID bits — a switch guts the cache), `LRU`
/// (ASID-tagged tags, contents survive switches), and `ACIC`
/// (ASID-tagged i-Filter + admission predictor). Each scenario cell
/// interleaves heterogeneous datacenter profiles at the same virtual
/// addresses, so only the ASID keeps tenants apart.
pub fn multi_tenant() -> String {
    let runner = Runner::new();
    let orgs = [
        IcacheOrg::LruFlush,
        IcacheOrg::Lru,
        IcacheOrg::acic_default(),
    ];
    let configs: Vec<SimConfig> = orgs
        .iter()
        .map(|o| runner.baseline.with_org(o.clone()))
        .collect();
    let mut specs = Vec::new();
    for &tenants in &[2usize, 4] {
        for &quantum in &[10_000u64, 50_000] {
            specs.push(WorkloadSpec::MultiTenant {
                profiles: dc_apps().into_iter().take(tenants).collect(),
                quantum,
            });
        }
    }
    let grid = runner.run_grid(&configs, &specs);
    let mut header = vec!["config".to_string()];
    header.extend(specs.iter().map(|s| s.label()));
    let mut rows = Vec::new();
    for (org, row) in orgs.iter().zip(&grid) {
        let mut cells = vec![org.label().to_string()];
        cells.extend(
            row.iter()
                .map(|r| format!("{:.3} mpki / {:.3} ipc", r.l1i_mpki(), r.ipc())),
        );
        rows.push(cells);
    }
    // Context-switch counts are a property of the scenario, not the
    // organization; report them from the first config's row.
    let mut switch_cells = vec!["switches".to_string()];
    switch_cells.extend(grid[0].iter().map(|r| r.context_switches.to_string()));
    rows.push(switch_cells);
    format!(
        "Multi-tenant scenario — L1i MPKI / IPC by organization, tenant count and switch quantum\n\
         (LRU flush = no-ASID baseline; LRU and ACIC are ASID-tagged)\n{}",
        markdown_table(&header, &rows)
    )
}

/// Sampling-error sweep: MPKI/IPC error and wall-clock speedup of the
/// sampled engine versus full detail, over period × detailed-window
/// size, for LRU and ACIC on single- and multi-tenant workloads.
///
/// Periods scale with the instruction budget (`total/8`, `total/4`)
/// so the sweep stays meaningful at any `ACIC_EXP_INSTRUCTIONS`;
/// warmup is a quarter period (the rest of the gap is
/// convergence-gated fast-forward). The documented default schedule's
/// full-scale numbers live in `BENCH_baseline.json`'s `sampled`
/// section.
pub fn sampling_error() -> String {
    use std::time::Instant;
    let n = instruction_budget();
    let orgs = [IcacheOrg::Lru, IcacheOrg::acic_default()];
    let specs = [
        WorkloadSpec::Single(AppProfile::web_search()),
        WorkloadSpec::MultiTenant {
            profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
            quantum: 20_000,
        },
    ];
    // Clamp so tiny budgets still produce a valid schedule: the
    // detailed window never exceeds half the period, warmup fills at
    // most the remainder.
    let periods = [(n / 8).max(4), (n / 4).max(4)];
    let detail_divs = [20u64, 10];

    let header: Vec<String> = [
        "config", "workload", "period", "detailed", "windows", "ipc err", "mpki err", "speedup",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for spec in &specs {
        // One freeze per spec; every (org, schedule) cell replays it.
        let trace = must_freeze(spec, n);
        for org in &orgs {
            let cfg = SimConfig::default().with_org(org.clone());
            let t0 = Instant::now();
            let full = Simulator::run(&cfg, trace.as_ref());
            let full_secs = t0.elapsed().as_secs_f64();
            for &period in &periods {
                for &div in &detail_divs {
                    let detailed_len = (period / div).max(1_000).min(period / 2);
                    let warmup_len = (period / 4).min(period - detailed_len);
                    let sched = acic_sim::SampleSchedule::Periodic {
                        period,
                        warmup_len,
                        detailed_len,
                    };
                    let t1 = Instant::now();
                    let sampled = Simulator::run(&cfg.with_schedule(sched), trace.as_ref());
                    let secs = t1.elapsed().as_secs_f64();
                    let ipc_err = if full.ipc() > 0.0 {
                        (sampled.ipc() - full.ipc()).abs() / full.ipc() * 100.0
                    } else {
                        0.0
                    };
                    let mpki_err = if full.l1i_mpki() > 0.0 {
                        (sampled.l1i_mpki() - full.l1i_mpki()).abs() / full.l1i_mpki() * 100.0
                    } else {
                        0.0
                    };
                    rows.push(vec![
                        org.label().to_string(),
                        spec.label(),
                        format!("{}k", period / 1000),
                        format!("{}k", detailed_len / 1000),
                        sampled.sampled.map_or(0, |s| s.windows).to_string(),
                        format!("{ipc_err:.2}%"),
                        format!("{mpki_err:.2}%"),
                        format!("{:.1}x", full_secs / secs.max(1e-9)),
                    ]);
                }
            }
        }
    }
    format!(
        "Sampling error — sampled engine vs full detail ({} instructions/cell)\n\
         (periods scale with the budget; warmup = period/4, remainder adaptive fast-forward)\n{}",
        n,
        markdown_table(&header, &rows)
    )
}

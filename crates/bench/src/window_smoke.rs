//! Window-parallel smoke check and throughput measurement.
//!
//! Two entry points. [`window_smoke`] is the CI tripwire
//! (`experiments --window-smoke`): it runs one small sampled cell
//! through `Engine::run_windowed` at one worker and at two, and fails
//! loudly unless the reports are bit-identical — the determinism
//! contract `tests/window_parallel.rs` pins at full width, exercised
//! here in seconds on every push. [`measure_window_parallel`] is the
//! `BENCH_baseline.json` cell (`window_parallel` section, schema v6):
//! wall clock for the same windowed cell at one worker vs a worker
//! fan-out, reported as the `vs_serial` speedup the ISSUE-6
//! acceptance gate reads (target ≥ 3× at 4 workers on the
//! 20 M-instruction sampled ACIC cell).

use acic_sim::{Engine, IcacheOrg, SampleSchedule, SimConfig, SimReport};
use acic_trace::VecTrace;
use acic_workloads::{AppProfile, SyntheticWorkload};
use std::time::Instant;

/// Workers the baseline's parallel leg fans each cell across.
pub const BASELINE_WORKERS: usize = 4;

/// Bit-identity over the whole report: `SimReport` carries `f64`s, so
/// equality of the shortest-round-trip `Debug` rendering *is*
/// bit-level equality of every counter and estimator.
fn identical(a: &SimReport, b: &SimReport) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

/// One windowed-throughput measurement (shared by the baseline
/// renderer and the `--bench-delta` regression harness).
pub struct WindowParallelRow {
    /// Baseline-document key (`window_parallel.cell`).
    pub label: &'static str,
    /// Instructions in the measured cell.
    pub instructions: u64,
    /// Workers in the parallel leg.
    pub workers: usize,
    /// Wall seconds for the windowed schedule on one worker.
    pub serial_secs: f64,
    /// Wall seconds for the same plan fanned across [`Self::workers`].
    pub parallel_secs: f64,
    /// Detailed windows in the plan (0 when the budget degenerated to
    /// a full-detail run — smoke-sized budgets can't hold the
    /// documented schedule).
    pub windows: u64,
    /// Pooled IPC of the windowed run.
    pub ipc: f64,
    /// Whether the one-worker and fanned-out reports were
    /// bit-identical (they must be; recorded so the committed
    /// baseline asserts it in writing).
    pub bit_identical: bool,
}

impl WindowParallelRow {
    /// Wall-clock speedup of the fan-out over the one-worker run —
    /// the ISSUE-6 acceptance cell.
    pub fn vs_serial(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-12)
    }
}

fn best_of_2(f: impl Fn() -> SimReport) -> (f64, SimReport) {
    // The simulated results are deterministic; only the clock is
    // noisy, and the minimum is the least noisy estimate of true
    // cost.
    let t0 = Instant::now();
    let r = f();
    let mut secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _ = f();
    secs = secs.min(t1.elapsed().as_secs_f64());
    (secs, r)
}

/// Measures the windowed ACIC cell (web-search, documented default
/// schedule) at one worker and at [`BASELINE_WORKERS`].
pub fn measure_window_parallel(instructions: u64) -> WindowParallelRow {
    let trace = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        instructions,
    ));
    let cfg = SimConfig::default()
        .with_org(IcacheOrg::acic_default())
        .with_schedule(SampleSchedule::default_sampled());
    let (serial_secs, serial) = best_of_2(|| Engine::run_windowed(&cfg, &trace, 1));
    let (parallel_secs, parallel) =
        best_of_2(|| Engine::run_windowed(&cfg, &trace, BASELINE_WORKERS));
    WindowParallelRow {
        label: "acic_web_search_windowed_default_schedule",
        instructions,
        workers: BASELINE_WORKERS,
        serial_secs,
        parallel_secs,
        windows: serial.sampled.map_or(0, |s| s.windows),
        ipc: serial.ipc(),
        bit_identical: identical(&serial, &parallel),
    }
}

/// The CI smoke check behind `experiments --window-smoke`: one small
/// sampled cell, `--window-threads 2` equality vs the one-worker run.
///
/// # Errors
///
/// Returns a description of the first divergence when the two-worker
/// report is not bit-identical to the one-worker report (the
/// determinism contract), or when the cell unexpectedly failed to
/// sample.
pub fn window_smoke() -> Result<String, String> {
    let trace = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        400_000,
    ));
    let cfg = SimConfig::default()
        .with_org(IcacheOrg::acic_default())
        .with_schedule(SampleSchedule::Periodic {
            period: 100_000,
            warmup_len: 30_000,
            detailed_len: 10_000,
        });
    let one = Engine::run_windowed(&cfg, &trace, 1);
    let s = one
        .sampled
        .ok_or("window smoke cell degenerated to a full run; it must sample")?;
    let two = Engine::run_windowed(&cfg, &trace, 2);
    if !identical(&one, &two) {
        return Err(format!(
            "window-parallel divergence: 2 workers disagree with 1 \
             (ipc {} vs {}, cycles {} vs {})",
            two.ipc(),
            one.ipc(),
            two.total_cycles,
            one.total_cycles
        ));
    }
    Ok(format!(
        "window smoke: 2-worker run bit-identical to 1-worker over {} windows \
         ({} instructions, ipc {:.4})",
        s.windows,
        one.total_instructions,
        one.ipc()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_serial_is_the_wall_ratio() {
        let row = WindowParallelRow {
            label: "x",
            instructions: 1,
            workers: 4,
            serial_secs: 3.0,
            parallel_secs: 1.0,
            windows: 26,
            ipc: 3.3,
            bit_identical: true,
        };
        assert!((row.vs_serial() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoke_passes_on_a_real_cell() {
        let report = window_smoke().expect("bit-identical");
        assert!(report.contains("bit-identical"), "{report}");
    }
}

//! Machine-readable simulator-throughput baseline.
//!
//! Measures instructions-per-second for the three execution paths —
//! the naive boxed-policy, one-probe-per-instruction loop; the
//! devirtualized run-batched functional loop; and the full timing
//! simulator — across representative L1i organizations, and renders
//! the result as JSON. The committed `BENCH_baseline.json` gives every
//! future performance PR a trajectory to compare against:
//!
//! ```text
//! cargo run --release -p acic-bench --bin throughput_baseline
//! ```
//!
//! Scale with `ACIC_BASELINE_INSTRUCTIONS` (default 1 M).

use crate::runner::{Runner, WorkloadSpec};
use acic_cache::policy::PolicyKind;
use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
use acic_sim::{functional, IcacheOrg, SampleSchedule, SimConfig, Simulator};
use acic_trace::{BlockRuns, TraceSource, VecTrace};
use acic_workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};
use std::time::Instant;

/// Context-switch quantum used by the multi-tenant baseline leg.
const MT_QUANTUM: u64 = 20_000;

/// Instruction budget for baseline measurement:
/// `ACIC_BASELINE_INSTRUCTIONS` or 1 M.
pub fn baseline_instructions() -> u64 {
    std::env::var("ACIC_BASELINE_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Instruction budget for the sampled-engine leg (the ISSUE-3
/// acceptance cell): `ACIC_SAMPLED_INSTRUCTIONS` or 20 M.
pub fn sampled_instructions() -> u64 {
    std::env::var("ACIC_SAMPLED_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000_000)
}

/// Naive reference loop: boxed-policy tag store probed once per
/// instruction. This is the pre-optimization hot path kept alive so
/// speedups are measured, not asserted.
pub fn run_naive_boxed<W: TraceSource>(kind: PolicyKind, workload: &W) -> u64 {
    let geom = CacheGeometry::l1i_32k();
    let mut cache = SetAssocCache::new(geom, kind.build_boxed(geom));
    let mut i = 0u64;
    for instr in workload.iter() {
        i += 1;
        let ctx = AccessCtx::demand(instr.pc().block(), i);
        if !cache.access(&ctx) {
            cache.fill(&ctx);
        }
    }
    cache.stats().demand_misses
}

/// Optimized counterpart of [`run_naive_boxed`]: enum-dispatched
/// policy, one probe per block run. Same tag store, same workload —
/// the measured delta is exactly the devirtualize+batch tentpole.
pub fn run_batched_devirt<W: TraceSource>(kind: PolicyKind, workload: &W) -> u64 {
    let geom = CacheGeometry::l1i_32k();
    let mut cache = SetAssocCache::new(geom, kind.build(geom));
    let mut i = 0u64;
    for run in BlockRuns::new(workload.iter()) {
        i += 1;
        let ctx = AccessCtx::demand(run.block, i);
        if !cache.access(&ctx) {
            cache.fill(&ctx);
        }
    }
    cache.stats().demand_misses
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Wall-clock repetitions per throughput leg. The simulated results
/// are deterministic — only the clock is noisy — so every leg takes
/// the best of [`TIMING_REPS`] runs (the same argument the sampled
/// leg has always used). Shared-host dips otherwise masquerade as
/// regressions in `--bench-delta`.
const TIMING_REPS: usize = 3;

fn best_of<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let (mut best, mut out) = time(&mut f);
    for _ in 1..TIMING_REPS {
        let (secs, r) = time(&mut f);
        if secs < best {
            best = secs;
            out = r;
        }
    }
    (best, out)
}

/// Iterations of the spin-calibration kernel. Sized to run in tens of
/// milliseconds — long enough to ride out scheduler noise with
/// best-of-[`TIMING_REPS`], short enough to be free next to the
/// throughput legs.
const SPIN_OPS: u64 = 50_000_000;

/// Machine-speed calibration recorded alongside the throughput cells.
pub struct Calibration {
    /// Iterations the spin kernel ran.
    pub spin_ops: u64,
    /// Kernel iterations per second (best of [`TIMING_REPS`]).
    pub spin_ops_per_sec: f64,
}

/// Runs the fixed-work calibration kernel: a serial xorshift64 chain
/// the optimizer cannot vectorize, elide, or reorder (every iteration
/// depends on the last, and the result is `black_box`ed). Its ops/sec
/// is a pure single-core machine-speed number, so `--bench-delta` can
/// divide it out and compare throughput cells across hosts — a faster
/// machine otherwise masquerades as a speedup.
pub fn measure_calibration() -> Calibration {
    let (secs, _) = best_of(|| {
        let mut x = std::hint::black_box(0x9e37_79b9_7f4a_7c15_u64);
        for _ in 0..SPIN_OPS {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x)
    });
    Calibration {
        spin_ops: SPIN_OPS,
        spin_ops_per_sec: SPIN_OPS as f64 / secs.max(1e-12),
    }
}

/// One organization's measured throughput legs (shared with the
/// `--bench-delta` regression harness).
pub struct OrgRow {
    /// Baseline-document key (`orgs.<label>`).
    pub label: &'static str,
    /// Which loop the naive leg ran — plain-policy rows use boxed
    /// dispatch + per-instruction probes; composite rows (ACIC) use
    /// the enum-dispatched unbatched functional loop, so their ratio
    /// isolates batching alone.
    pub naive_path: &'static str,
    /// Naive-loop instructions per second.
    pub naive_ips: f64,
    /// Run-batched (optimized) instructions per second.
    pub batched_ips: f64,
    /// Full timing-simulator instructions per second.
    pub timing_ips: f64,
    /// Speedup of the batched leg over the naive leg.
    pub batched_over_naive: f64,
}

fn measure_org(
    label: &'static str,
    kind: Option<PolicyKind>,
    org: IcacheOrg,
    workload: &VecTrace,
    instructions: u64,
) -> OrgRow {
    let n = instructions as f64;
    // Naive: boxed policy, unbatched. Plain-policy orgs use the raw
    // tag store; composite orgs (ACIC) run the unbatched functional
    // loop over the full organization.
    let (naive_secs, _) = match kind {
        Some(k) => best_of(|| {
            run_naive_boxed(k, workload);
        }),
        None => best_of(|| {
            functional::run_unbatched(&org, workload);
        }),
    };
    // Optimized path. Plain-policy orgs measure the raw tag store
    // (mirroring the naive loop); composite orgs measure the
    // functional organization loop.
    let (batched_secs, _) = match kind {
        Some(k) => best_of(|| {
            run_batched_devirt(k, workload);
        }),
        None => best_of(|| {
            functional::run_functional(&org, workload);
        }),
    };
    let (timing_secs, _) =
        best_of(|| Simulator::run(&SimConfig::default().with_org(org.clone()), workload));
    OrgRow {
        label,
        naive_path: if kind.is_some() {
            "boxed_unbatched"
        } else {
            "devirt_unbatched"
        },
        naive_ips: n / naive_secs,
        batched_ips: n / batched_secs,
        timing_ips: n / timing_secs,
        batched_over_naive: naive_secs / batched_secs,
    }
}

/// One multi-tenant functional-throughput row (shared with the
/// `--bench-delta` regression harness).
pub struct MtRow {
    /// Baseline-document key (`multi_tenant.orgs.<label>`).
    pub label: &'static str,
    /// Run-batched functional instructions per second.
    pub functional_ips: f64,
    /// L1i demand misses per kilo-instruction.
    pub mpki: f64,
    /// Context switches crossed.
    pub context_switches: u64,
}

/// Multi-tenant functional-loop throughput: a 2-tenant interleave
/// driven through the run-batched loop for the three scenario
/// organizations. Extends the perf trajectory to the context-switch
/// path (flush cost, tagged tag-match cost).
pub fn measure_multi_tenant(instructions: u64) -> (VecTrace, Vec<MtRow>) {
    let mt = MultiTenantWorkload::new(MT_QUANTUM)
        .tenant(AppProfile::web_search(), instructions / 2)
        .tenant(AppProfile::tpc_c(), instructions / 2)
        .build();
    // Materialize so the rows measure simulation, not generation.
    let trace = VecTrace::from_source(&mt);
    let n = trace.len() as f64;
    let rows = [
        ("lru_flush", IcacheOrg::LruFlush),
        ("lru_asid", IcacheOrg::Lru),
        ("acic_asid", IcacheOrg::acic_default()),
    ]
    .into_iter()
    .map(|(label, org)| {
        let (secs, report) = best_of(|| functional::run_functional(&org, &trace));
        MtRow {
            label,
            functional_ips: n / secs,
            mpki: report.l1i_mpki(),
            context_switches: report.context_switches,
        }
    })
    .collect();
    (trace, rows)
}

/// The `trace` section: packed-replay vs generator-decode throughput
/// and the spec-deduplicated grid's wall-clock win (shared with the
/// `--bench-delta` regression harness).
pub struct TraceSection {
    /// Workload the throughput legs freeze/replay.
    pub workload: &'static str,
    /// Instructions per throughput leg and per grid cell.
    pub instructions: u64,
    /// Encoded size of the frozen trace (bytes per instruction; the
    /// `Instr` record is 24).
    pub packed_bytes_per_instr: f64,
    /// Instructions per second producing the stream from the Markov
    /// walker (what every grid cell used to pay).
    pub generator_ips: f64,
    /// Instructions per second replaying the frozen arena.
    pub packed_replay_ips: f64,
    /// `packed_replay_ips / generator_ips`.
    pub replay_over_generate: f64,
    /// Instructions per grid cell in the wall-clock comparison.
    pub grid_instructions: u64,
    /// Configurations in the measured figure grid.
    pub grid_configs: usize,
    /// Workload specs in the measured figure grid.
    pub grid_specs: usize,
    /// Wall seconds for the grid with per-cell regeneration (the
    /// pre-freeze scheduler).
    pub grid_regen_secs: f64,
    /// Wall seconds for the same grid with spec-deduplicated frozen
    /// traces.
    pub grid_frozen_secs: f64,
    /// `grid_regen_secs / grid_frozen_secs` — the ISSUE-5 acceptance
    /// cell (target ≥ 2).
    pub grid_wall_ratio: f64,
}

/// Instruction budget per grid cell for the trace section's
/// wall-clock comparison: `ACIC_TRACE_GRID_INSTRUCTIONS` or 20 M
/// (matching the sampled leg's scale — the regime full-scale figure
/// grids run in, where fast-forward dominates each cell).
pub fn trace_grid_instructions() -> u64 {
    std::env::var("ACIC_TRACE_GRID_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000_000)
}

/// Orgs of the measured figure grid: a Figure-15-style sensitivity
/// column (baseline schemes plus ACIC parameter variants — the shape
/// where one frozen spec is replayed by the most configuration rows).
fn trace_grid_orgs() -> Vec<IcacheOrg> {
    use acic_core::AcicConfig;
    vec![
        IcacheOrg::Lru,
        IcacheOrg::Srrip,
        IcacheOrg::Larger36k,
        IcacheOrg::IFilterAlways,
        IcacheOrg::Ghrp,
        IcacheOrg::acic_default(),
        IcacheOrg::Acic(AcicConfig {
            hrt_entries: 2048,
            ..AcicConfig::default()
        }),
        IcacheOrg::Acic(AcicConfig {
            filter_entries: 32,
            ..AcicConfig::default()
        }),
        IcacheOrg::Acic(AcicConfig {
            history_bits: 8,
            ..AcicConfig::default()
        }),
        IcacheOrg::Acic(AcicConfig {
            pt_counter_bits: 2,
            ..AcicConfig::default()
        }),
    ]
}

/// Measures the trace-layer cells: packed-replay vs generator-decode
/// throughput at `instructions`, and the same (10 orgs × 2 SPEC apps)
/// sampled figure grid run twice at `grid_instructions` — once
/// regenerating each cell's workload from its spec (the pre-freeze
/// scheduler, kept as [`Runner::run_grid_regenerating`]) and once
/// through the frozen spec-keyed scheduler. The grid legs run once
/// each (the simulated work is deterministic and the expected gap is
/// ~2×, far above wall noise); the per-instruction legs keep
/// best-of-3.
/// The sampled schedule figure grids run under: the documented
/// default when the budget can hold it, a proportionally scaled one
/// for smoke-sized budgets. Shared by the trace section's grid legs
/// and the DSE section's exhaustive reference so their wall clocks
/// compare like for like.
pub fn grid_schedule(grid_instructions: u64) -> SampleSchedule {
    if grid_instructions >= 2_800_000 {
        SampleSchedule::Periodic {
            period: 700_000,
            warmup_len: 90_000,
            detailed_len: 22_000,
        }
    } else {
        SampleSchedule::Periodic {
            period: (grid_instructions / 4).max(4),
            warmup_len: (grid_instructions / 16).max(1),
            detailed_len: (grid_instructions / 32).max(1),
        }
    }
}

pub fn measure_trace(instructions: u64, grid_instructions: u64) -> TraceSection {
    let spec = WorkloadSpec::Single(AppProfile::web_search());
    let n = instructions as f64;
    // Consume the streams into a fold the optimizer cannot drop.
    let (gen_secs, _) = best_of(|| {
        spec.generator(instructions)
            .iter()
            .fold(0u64, |a, i| a ^ i.pc().raw())
    });
    let packed = spec.materialize(instructions);
    let (replay_secs, _) = best_of(|| packed.iter().fold(0u64, |a, i| a ^ i.pc().raw()));

    let schedule = grid_schedule(grid_instructions);
    let runner = Runner {
        instructions: grid_instructions,
        baseline: SimConfig::default().with_schedule(schedule),
        // Perf timing: a result store would replay cells and falsify
        // the measurement; no watchdog for the same reason. Serial
        // cells — this section times the frozen-grid win, not
        // window parallelism (that has its own section).
        store: None,
        cell_timeout: None,
        window_threads: 0,
        supervise: None,
    };
    let configs: Vec<SimConfig> = trace_grid_orgs()
        .into_iter()
        .map(|o| runner.baseline.with_org(o))
        .collect();
    let specs = vec![
        WorkloadSpec::Single(AppProfile::sibench()),
        WorkloadSpec::Single(AppProfile::x264()),
    ];
    let (regen_secs, _) = time(|| runner.run_grid_regenerating(&configs, &specs));
    let (frozen_secs, _) = time(|| runner.run_grid(&configs, &specs));
    TraceSection {
        workload: "web-search",
        instructions,
        packed_bytes_per_instr: packed.bytes_per_instr(),
        generator_ips: n / gen_secs,
        packed_replay_ips: n / replay_secs,
        replay_over_generate: gen_secs / replay_secs,
        grid_instructions,
        grid_configs: configs.len(),
        grid_specs: specs.len(),
        grid_regen_secs: regen_secs,
        grid_frozen_secs: frozen_secs,
        grid_wall_ratio: regen_secs / frozen_secs,
    }
}

/// The `dse` section: the adaptive design-space-exploration tentpole's
/// headline wall-clock claim (shared with the `--bench-delta`
/// regression harness).
pub struct DseSection {
    /// Name of the swept design space.
    pub space: String,
    /// Configurations declared in the space.
    pub configs: usize,
    /// Workload specs in the space.
    pub specs: usize,
    /// `configs x specs` — what one exhaustive rung of the space
    /// costs in cells.
    pub cells: usize,
    /// Rungs on the fidelity ladder.
    pub rungs: usize,
    /// Full per-cell instruction budget (the final rung's).
    pub instructions: u64,
    /// Cells in the exhaustive reference grid (today's figure grid:
    /// 10 orgs x 2 SPEC apps).
    pub exhaustive_cells: usize,
    /// Wall seconds for the exhaustive reference grid.
    pub exhaustive_secs: f64,
    /// Wall seconds for the full adaptive sweep (freeze + every rung).
    pub dse_secs: f64,
    /// `dse_secs / exhaustive_secs` — the tentpole acceptance cell
    /// (target <= 1.5: the ~1000-cell space within 1.5x the 20-cell
    /// grid's wall time).
    pub wall_ratio_vs_exhaustive: f64,
    /// `(cells / exhaustive_cells) / wall_ratio_vs_exhaustive`: how
    /// many exhaustive-grid-equivalents of design space one wall
    /// second of sweeping buys (higher is better; the `--bench-delta`
    /// trajectory cell).
    pub effective_speedup: f64,
    /// Cells actually simulated across all rungs (pruning + settling
    /// is what keeps this far under `cells x rungs`).
    pub cells_computed: u64,
    /// Configurations never pruned.
    pub survivors: usize,
    /// Survivors on the final full-fidelity Pareto frontier.
    pub frontier: usize,
    /// Per-cell budget of the pinned-space agreement check.
    pub pinned_budget: u64,
    /// Whether the DSE frontier of the pinned space matched the
    /// exhaustive full-detail reference frontier exactly (the
    /// no-false-prunes acceptance cell; `tests/dse.rs` pins the same
    /// property).
    pub pinned_frontier_agrees: bool,
}

/// Exhaustive full-detail reference check on the pinned space: runs
/// the adaptive sweep (final rung = full detail) and an exhaustive
/// full-detail grid over the same space at `budget` instructions, and
/// compares Pareto frontiers. Because the final rung re-simulates
/// every survivor at full fidelity, the frontier sets must agree
/// exactly — any disagreement means a false prune.
fn pinned_agreement(budget: u64) -> Result<bool, String> {
    use crate::dse::{midpoints, pareto_frontier, pinned_space, run_dse, DseOptions, Ladder};
    let space = pinned_space();
    let opts = DseOptions {
        ladder: Ladder::new(budget, 2, SampleSchedule::Full),
        store: None,
        ..DseOptions::default()
    };
    let run = run_dse(&space, &opts)?;
    let dse_frontier: std::collections::BTreeSet<usize> = {
        let survivors = run.survivors();
        let points: Vec<Vec<f64>> = survivors
            .iter()
            .map(|&i| midpoints(&run.outcomes[i].reports))
            .collect();
        survivors
            .into_iter()
            .zip(pareto_frontier(&points))
            .filter(|&(_, keep)| keep)
            .map(|(i, _)| i)
            .collect()
    };
    let runner = Runner {
        instructions: budget,
        baseline: SimConfig::default(),
        store: None,
        cell_timeout: None,
        window_threads: 0,
        supervise: None,
    };
    let configs: Vec<SimConfig> = space.configs.iter().map(|c| c.cfg.clone()).collect();
    let grid = runner.run_grid(&configs, &space.specs);
    let points: Vec<Vec<f64>> = grid.iter().map(|reps| midpoints(reps)).collect();
    let exhaustive_frontier: std::collections::BTreeSet<usize> = pareto_frontier(&points)
        .into_iter()
        .enumerate()
        .filter(|&(_, keep)| keep)
        .map(|(i, _)| i)
        .collect();
    Ok(dse_frontier == exhaustive_frontier)
}

/// Measures the DSE section: times today's exhaustive 20-cell sampled
/// figure grid (same orgs, specs, and schedule as the trace section's
/// frozen leg), then the adaptive sweep of the full cache-geometry
/// space at the same per-cell budget and final-rung schedule, and
/// runs the pinned-space frontier-agreement check. `smoke` swaps in
/// the 4-config smoke space so CI exercises the path in seconds.
///
/// # Errors
///
/// Propagates sweep failures (freeze errors, panicking cells) — the
/// baseline must not be committed from a partially failed sweep.
pub fn measure_dse(grid_instructions: u64, smoke: bool) -> Result<DseSection, String> {
    use crate::dse::{geometry_space, run_dse, smoke_space, DseOptions, Ladder};
    let schedule = grid_schedule(grid_instructions);
    let runner = Runner {
        instructions: grid_instructions,
        baseline: SimConfig::default().with_schedule(schedule),
        // Timing legs: a store would replay cells and falsify the
        // wall clocks; no watchdog for the same reason.
        store: None,
        cell_timeout: None,
        window_threads: 0,
        supervise: None,
    };
    let ex_configs: Vec<SimConfig> = trace_grid_orgs()
        .into_iter()
        .map(|o| runner.baseline.with_org(o))
        .collect();
    let ex_specs = vec![
        WorkloadSpec::Single(AppProfile::sibench()),
        WorkloadSpec::Single(AppProfile::x264()),
    ];
    let (exhaustive_secs, _) = time(|| runner.run_grid(&ex_configs, &ex_specs));

    let space = if smoke {
        smoke_space()
    } else {
        geometry_space()
    };
    let opts = DseOptions {
        ladder: Ladder::new(grid_instructions, if smoke { 2 } else { 3 }, schedule),
        store: None,
        ..DseOptions::default()
    };
    let (dse_secs, run) = time(|| run_dse(&space, &opts));
    let run = run?;
    let wall_ratio = dse_secs / exhaustive_secs.max(1e-12);
    let cells = space.cells();
    let exhaustive_cells = ex_configs.len() * ex_specs.len();
    let pinned_budget = if smoke {
        60_000
    } else {
        (grid_instructions / 10).clamp(200_000, 2_000_000)
    };
    Ok(DseSection {
        space: space.name.clone(),
        configs: space.configs.len(),
        specs: space.specs.len(),
        cells,
        rungs: opts.ladder.rungs.len(),
        instructions: grid_instructions,
        exhaustive_cells,
        exhaustive_secs,
        dse_secs,
        wall_ratio_vs_exhaustive: wall_ratio,
        effective_speedup: (cells as f64 / exhaustive_cells as f64) / wall_ratio.max(1e-12),
        cells_computed: run.computed,
        survivors: run.survivors().len(),
        frontier: run.final_frontier().len(),
        pinned_budget,
        pinned_frontier_agrees: pinned_agreement(pinned_budget)?,
    })
}

/// One sampled-vs-full comparison cell for the `sampled` section.
struct SampledRow {
    label: &'static str,
    instructions: u64,
    full_secs: f64,
    sampled_secs: f64,
    windows: u64,
    full_ipc: f64,
    sampled_ipc: f64,
    full_mpki: f64,
    sampled_mpki: f64,
}

impl SampledRow {
    fn speedup(&self) -> f64 {
        self.full_secs / self.sampled_secs.max(1e-12)
    }

    fn ipc_err_pct(&self) -> f64 {
        (self.sampled_ipc - self.full_ipc).abs() / self.full_ipc.max(1e-12) * 100.0
    }

    fn mpki_err_pct(&self) -> f64 {
        (self.sampled_mpki - self.full_mpki).abs() / self.full_mpki.max(1e-12) * 100.0
    }
}

/// The ISSUE-3 acceptance cell: full-detail vs the documented default
/// sampled schedule on a 20 M-instruction ACIC cell (trace
/// materialized once, shared by both legs). Mirrors
/// `tests/sampled_sim.rs::default_sampled_schedule_hits_10x_within_2pct`.
fn measure_sampled() -> SampledRow {
    let n = sampled_instructions();
    let trace = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        n,
    ));
    let cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
    let (full_secs, full) = time(|| Simulator::run(&cfg, &trace));
    let sampled_cfg = cfg.with_schedule(SampleSchedule::default_sampled());
    // Best-of-2 on the short leg: the simulated results are
    // deterministic, only the wall clock is noisy.
    let (secs_a, sampled) = time(|| Simulator::run(&sampled_cfg, &trace));
    let (secs_b, _) = time(|| Simulator::run(&sampled_cfg, &trace));
    let sampled_secs = secs_a.min(secs_b);
    SampledRow {
        label: "acic_web_search_default_schedule",
        instructions: n,
        full_secs,
        sampled_secs,
        windows: sampled.sampled.map_or(0, |s| s.windows),
        full_ipc: full.ipc(),
        sampled_ipc: sampled.ipc(),
        full_mpki: full.l1i_mpki(),
        sampled_mpki: sampled.l1i_mpki(),
    }
}

/// Measures the three organizations' throughput legs over a freshly
/// materialized single-tenant trace (shared with the `--bench-delta`
/// regression harness).
pub fn measure_org_rows(instructions: u64) -> Vec<OrgRow> {
    // Materialize the trace once so every path measures simulation
    // cost, not workload-generator cost.
    let workload = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        instructions,
    ));
    vec![
        measure_org(
            "lru",
            Some(PolicyKind::Lru),
            IcacheOrg::Lru,
            &workload,
            instructions,
        ),
        measure_org(
            "srrip",
            Some(PolicyKind::Srrip),
            IcacheOrg::Srrip,
            &workload,
            instructions,
        ),
        measure_org(
            "acic",
            None,
            IcacheOrg::acic_default(),
            &workload,
            instructions,
        ),
    ]
}

/// Runs the baseline measurement and renders it as a JSON document.
/// `prior` is the previously committed baseline document, if any —
/// when it parses, the output's `vs_prior` section records the
/// headline throughput ratios against it (the ISSUE-4 acceptance
/// cells).
pub fn measure_baseline_with_prior(prior: Option<&str>) -> String {
    let instructions = baseline_instructions();
    let workload = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        instructions,
    ));
    let rows = measure_org_rows(instructions);
    let (mt_trace, mt_rows) = measure_multi_tenant(instructions);
    let trace = measure_trace(instructions, trace_grid_instructions());
    let sampled = measure_sampled();
    let window_parallel = crate::window_smoke::measure_window_parallel(sampled_instructions());
    let dse = measure_dse(trace_grid_instructions(), false)
        .expect("DSE sweep must complete for the baseline to be committed");
    let supervise = crate::supervise::measure_supervise_overhead(instructions)
        .expect("supervised overhead run must complete for the baseline to be committed");
    let calibration = measure_calibration();
    render_json(
        instructions,
        &workload,
        &rows,
        &mt_trace,
        &mt_rows,
        &trace,
        &sampled,
        &window_parallel,
        &dse,
        &supervise,
        &calibration,
        prior,
    )
}

/// Runs the baseline measurement without a prior document.
pub fn measure_baseline() -> String {
    measure_baseline_with_prior(None)
}

/// Headline ratios of this run's throughput over a prior baseline
/// document (the `--bench-delta` acceptance cells, inlined into the
/// committed file so the trajectory is self-describing).
fn render_vs_prior(out: &mut String, rows: &[OrgRow], mt_rows: &[MtRow], prior: &str) {
    let Ok(doc) = crate::json::Json::parse(prior) else {
        return;
    };
    let schema = doc
        .get("schema")
        .and_then(crate::json::Json::str_val)
        .unwrap_or("unknown");
    let mut ratios: Vec<(String, f64)> = Vec::new();
    for r in rows {
        for (cell, measured) in [
            ("devirt_batched_ips", r.batched_ips),
            ("timing_sim_ips", r.timing_ips),
        ] {
            if let Some(prev) = doc
                .path(&["orgs", r.label, cell])
                .and_then(crate::json::Json::num)
                .filter(|&p| p > 0.0)
            {
                ratios.push((format!("{}_{cell}", r.label), measured / prev));
            }
        }
    }
    for r in mt_rows {
        if let Some(prev) = doc
            .path(&["multi_tenant", "orgs", r.label, "functional_ips"])
            .and_then(crate::json::Json::num)
            .filter(|&p| p > 0.0)
        {
            ratios.push((
                format!("mt_{}_functional_ips", r.label),
                r.functional_ips / prev,
            ));
        }
    }
    if ratios.is_empty() {
        return;
    }
    out.push_str("  \"vs_prior\": {\n");
    out.push_str(&format!("    \"prior_schema\": \"{schema}\",\n"));
    for (i, (k, v)) in ratios.iter().enumerate() {
        out.push_str(&format!(
            "    \"{k}\": {v:.2}{}\n",
            if i + 1 == ratios.len() { "" } else { "," }
        ));
    }
    out.push_str("  },\n");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    instructions: u64,
    workload: &VecTrace,
    rows: &[OrgRow],
    mt_trace: &VecTrace,
    mt_rows: &[MtRow],
    trace: &TraceSection,
    sampled: &SampledRow,
    window_parallel: &crate::window_smoke::WindowParallelRow,
    dse: &DseSection,
    supervise: &crate::supervise::SuperviseRow,
    calibration: &Calibration,
    prior: Option<&str>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"acic-throughput-baseline/v9\",\n");
    out.push_str(&format!("  \"instructions\": {instructions},\n"));
    out.push_str(&format!("  \"workload\": \"{}\",\n", workload.name()));
    out.push_str("  \"trace_materialized\": true,\n");
    out.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"calibration\": {\n");
    out.push_str(&format!("    \"spin_ops\": {},\n", calibration.spin_ops));
    out.push_str(&format!(
        "    \"spin_ops_per_sec\": {:.0}\n",
        calibration.spin_ops_per_sec
    ));
    out.push_str("  },\n");
    out.push_str("  \"orgs\": {\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{\n", r.label));
        out.push_str(&format!("      \"naive_path\": \"{}\",\n", r.naive_path));
        out.push_str(&format!("      \"naive_ips\": {:.0},\n", r.naive_ips));
        out.push_str(&format!(
            "      \"devirt_batched_ips\": {:.0},\n",
            r.batched_ips
        ));
        out.push_str(&format!("      \"timing_sim_ips\": {:.0},\n", r.timing_ips));
        out.push_str(&format!(
            "      \"batched_over_naive\": {:.2}\n",
            r.batched_over_naive
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  },\n");
    out.push_str("  \"multi_tenant\": {\n");
    out.push_str(&format!("    \"workload\": \"{}\",\n", mt_trace.name()));
    out.push_str(&format!("    \"quantum\": {MT_QUANTUM},\n"));
    out.push_str("    \"path\": \"functional_batched\",\n");
    out.push_str("    \"orgs\": {\n");
    for (i, r) in mt_rows.iter().enumerate() {
        out.push_str(&format!("      \"{}\": {{\n", r.label));
        out.push_str(&format!(
            "        \"functional_ips\": {:.0},\n",
            r.functional_ips
        ));
        out.push_str(&format!("        \"mpki\": {:.3},\n", r.mpki));
        out.push_str(&format!(
            "        \"context_switches\": {}\n",
            r.context_switches
        ));
        out.push_str(if i + 1 == mt_rows.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    }\n  },\n");
    out.push_str("  \"trace\": {\n");
    out.push_str(&format!("    \"workload\": \"{}\",\n", trace.workload));
    out.push_str(&format!("    \"instructions\": {},\n", trace.instructions));
    out.push_str(&format!(
        "    \"packed_bytes_per_instr\": {:.2},\n",
        trace.packed_bytes_per_instr
    ));
    out.push_str(&format!(
        "    \"generator_ips\": {:.0},\n",
        trace.generator_ips
    ));
    out.push_str(&format!(
        "    \"packed_replay_ips\": {:.0},\n",
        trace.packed_replay_ips
    ));
    out.push_str(&format!(
        "    \"replay_over_generate\": {:.2},\n",
        trace.replay_over_generate
    ));
    out.push_str("    \"grid\": {\n");
    out.push_str(&format!(
        "      \"instructions\": {},\n",
        trace.grid_instructions
    ));
    out.push_str(&format!("      \"configs\": {},\n", trace.grid_configs));
    out.push_str(&format!("      \"specs\": {},\n", trace.grid_specs));
    out.push_str(
        "      \"schedule\": \"periodic (700k period, 90k warmup, 22k detailed; scaled below 2.8M)\",\n",
    );
    out.push_str(&format!(
        "      \"regen_secs\": {:.3},\n",
        trace.grid_regen_secs
    ));
    out.push_str(&format!(
        "      \"frozen_secs\": {:.3},\n",
        trace.grid_frozen_secs
    ));
    out.push_str(&format!(
        "      \"wall_ratio\": {:.2}\n",
        trace.grid_wall_ratio
    ));
    out.push_str("    }\n  },\n");
    if let Some(prior) = prior {
        render_vs_prior(&mut out, rows, mt_rows, prior);
    }
    out.push_str("  \"sampled\": {\n");
    out.push_str(&format!("    \"cell\": \"{}\",\n", sampled.label));
    out.push_str(&format!(
        "    \"instructions\": {},\n",
        sampled.instructions
    ));
    out.push_str("    \"schedule\": \"default_sampled (period 700k, warmup 185k, detailed 22k, adaptive ff)\",\n");
    out.push_str(&format!(
        "    \"full_detail_secs\": {:.3},\n",
        sampled.full_secs
    ));
    out.push_str(&format!(
        "    \"sampled_secs\": {:.3},\n",
        sampled.sampled_secs
    ));
    out.push_str(&format!("    \"speedup\": {:.2},\n", sampled.speedup()));
    out.push_str(&format!("    \"windows\": {},\n", sampled.windows));
    out.push_str(&format!("    \"full_ipc\": {:.4},\n", sampled.full_ipc));
    out.push_str(&format!(
        "    \"sampled_ipc\": {:.4},\n",
        sampled.sampled_ipc
    ));
    out.push_str(&format!(
        "    \"ipc_err_pct\": {:.2},\n",
        sampled.ipc_err_pct()
    ));
    out.push_str(&format!("    \"full_mpki\": {:.4},\n", sampled.full_mpki));
    out.push_str(&format!(
        "    \"sampled_mpki\": {:.4},\n",
        sampled.sampled_mpki
    ));
    out.push_str(&format!(
        "    \"mpki_err_pct\": {:.2}\n",
        sampled.mpki_err_pct()
    ));
    out.push_str("  },\n");
    let wp = window_parallel;
    out.push_str("  \"window_parallel\": {\n");
    out.push_str(&format!("    \"cell\": \"{}\",\n", wp.label));
    out.push_str(&format!("    \"instructions\": {},\n", wp.instructions));
    out.push_str(&format!("    \"workers\": {},\n", wp.workers));
    out.push_str(&format!("    \"serial_secs\": {:.3},\n", wp.serial_secs));
    out.push_str(&format!(
        "    \"parallel_secs\": {:.3},\n",
        wp.parallel_secs
    ));
    out.push_str(&format!("    \"vs_serial\": {:.2},\n", wp.vs_serial()));
    out.push_str(&format!("    \"windows\": {},\n", wp.windows));
    out.push_str(&format!("    \"ipc\": {:.4},\n", wp.ipc));
    out.push_str(&format!("    \"bit_identical\": {}\n", wp.bit_identical));
    out.push_str("  },\n");
    out.push_str("  \"dse\": {\n");
    out.push_str(&format!("    \"space\": \"{}\",\n", dse.space));
    out.push_str(&format!("    \"configs\": {},\n", dse.configs));
    out.push_str(&format!("    \"specs\": {},\n", dse.specs));
    out.push_str(&format!("    \"cells\": {},\n", dse.cells));
    out.push_str(&format!("    \"rungs\": {},\n", dse.rungs));
    out.push_str(&format!("    \"instructions\": {},\n", dse.instructions));
    out.push_str(&format!(
        "    \"exhaustive_cells\": {},\n",
        dse.exhaustive_cells
    ));
    out.push_str(&format!(
        "    \"exhaustive_secs\": {:.3},\n",
        dse.exhaustive_secs
    ));
    out.push_str(&format!("    \"dse_secs\": {:.3},\n", dse.dse_secs));
    out.push_str(&format!(
        "    \"wall_ratio_vs_exhaustive\": {:.2},\n",
        dse.wall_ratio_vs_exhaustive
    ));
    out.push_str(&format!(
        "    \"effective_speedup\": {:.2},\n",
        dse.effective_speedup
    ));
    out.push_str(&format!(
        "    \"cells_computed\": {},\n",
        dse.cells_computed
    ));
    out.push_str(&format!("    \"survivors\": {},\n", dse.survivors));
    out.push_str(&format!("    \"frontier\": {},\n", dse.frontier));
    out.push_str(&format!("    \"pinned_budget\": {},\n", dse.pinned_budget));
    out.push_str(&format!(
        "    \"pinned_frontier_agrees\": {}\n",
        dse.pinned_frontier_agrees
    ));
    out.push_str("  },\n");
    out.push_str("  \"supervise\": {\n");
    out.push_str(&format!("    \"figure\": \"{}\",\n", supervise.figure));
    out.push_str(&format!(
        "    \"instructions\": {},\n",
        supervise.instructions
    ));
    out.push_str(&format!("    \"cells\": {},\n", supervise.cells));
    out.push_str(&format!(
        "    \"in_process_secs\": {:.3},\n",
        supervise.in_process_secs
    ));
    out.push_str(&format!(
        "    \"supervised_secs\": {:.3},\n",
        supervise.supervised_secs
    ));
    out.push_str(&format!(
        "    \"vs_in_process\": {:.2}\n",
        supervise.vs_in_process()
    ));
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough() {
        let wl = VecTrace::from_source(&SyntheticWorkload::with_instructions(
            AppProfile::sibench(),
            1_000,
        ));
        let rows = vec![OrgRow {
            label: "lru",
            naive_path: "boxed_unbatched",
            naive_ips: 1e6,
            batched_ips: 2.5e6,
            timing_ips: 5e5,
            batched_over_naive: 2.5,
        }];
        let mt_rows = vec![MtRow {
            label: "lru_flush",
            functional_ips: 1e6,
            mpki: 12.0,
            context_switches: 9,
        }];
        let trace = TraceSection {
            workload: "web-search",
            instructions: 1_000,
            packed_bytes_per_instr: 2.5,
            generator_ips: 5e7,
            packed_replay_ips: 2.5e8,
            replay_over_generate: 5.0,
            grid_instructions: 20_000_000,
            grid_configs: 10,
            grid_specs: 2,
            grid_regen_secs: 10.0,
            grid_frozen_secs: 4.0,
            grid_wall_ratio: 2.5,
        };
        let sampled = SampledRow {
            label: "acic_web_search_default_schedule",
            instructions: 20_000_000,
            full_secs: 3.5,
            sampled_secs: 0.35,
            windows: 26,
            full_ipc: 3.32,
            sampled_ipc: 3.31,
            full_mpki: 2.20,
            sampled_mpki: 2.20,
        };
        let wp = crate::window_smoke::WindowParallelRow {
            label: "acic_web_search_windowed_default_schedule",
            instructions: 20_000_000,
            workers: 4,
            serial_secs: 1.2,
            parallel_secs: 0.3,
            windows: 26,
            ipc: 3.30,
            bit_identical: true,
        };
        let dse = DseSection {
            space: "geometry".into(),
            configs: 290,
            specs: 3,
            cells: 870,
            rungs: 3,
            instructions: 20_000_000,
            exhaustive_cells: 20,
            exhaustive_secs: 8.0,
            dse_secs: 10.0,
            wall_ratio_vs_exhaustive: 1.25,
            effective_speedup: 34.8,
            cells_computed: 1_000,
            survivors: 12,
            frontier: 4,
            pinned_budget: 2_000_000,
            pinned_frontier_agrees: true,
        };
        let sup = crate::supervise::SuperviseRow {
            figure: "table3_mpki".into(),
            instructions: 1_000_000,
            cells: 10,
            in_process_secs: 4.0,
            supervised_secs: 5.0,
        };
        let cal = Calibration {
            spin_ops: 50_000_000,
            spin_ops_per_sec: 5e8,
        };
        let j = render_json(
            1_000, &wl, &rows, &wl, &mt_rows, &trace, &sampled, &wp, &dse, &sup, &cal, None,
        );
        assert!(j.contains("\"schema\": \"acic-throughput-baseline/v9\""));
        assert!(j.contains("\"calibration\""));
        assert!(j.contains("\"spin_ops_per_sec\": 500000000"));
        assert!(j.contains("\"multi_tenant\""));
        assert!(j.contains("\"context_switches\": 9"));
        assert!(j.contains("\"naive_path\": \"boxed_unbatched\""));
        assert!(j.contains("\"devirt_batched_ips\": 2500000"));
        assert!(j.contains("\"trace\""));
        assert!(j.contains("\"packed_replay_ips\": 250000000"));
        assert!(j.contains("\"wall_ratio\": 2.50"));
        assert!(j.contains("\"sampled\""));
        assert!(j.contains("\"speedup\": 10.00"));
        assert!(j.contains("\"windows\": 26"));
        assert!(j.contains("\"window_parallel\""));
        assert!(j.contains("\"vs_serial\": 4.00"));
        assert!(j.contains("\"bit_identical\": true"));
        assert!(j.contains("\"dse\""));
        assert!(j.contains("\"cells\": 870"));
        assert!(j.contains("\"wall_ratio_vs_exhaustive\": 1.25"));
        assert!(j.contains("\"pinned_frontier_agrees\": true"));
        assert!(j.contains("\"supervise\""));
        assert!(j.contains("\"vs_in_process\": 0.80"));
        assert!(!j.contains("vs_prior"), "no prior, no section");
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
        crate::json::Json::parse(&j).expect("baseline emits valid JSON");

        // With a prior document the headline ratios are inlined.
        let prior = r#"{
  "schema": "acic-throughput-baseline/v3",
  "orgs": { "lru": { "devirt_batched_ips": 1250000, "timing_sim_ips": 250000 } },
  "multi_tenant": { "orgs": { "lru_flush": { "functional_ips": 500000 } } }
}"#;
        let j = render_json(
            1_000,
            &wl,
            &rows,
            &wl,
            &mt_rows,
            &trace,
            &sampled,
            &wp,
            &dse,
            &sup,
            &cal,
            Some(prior),
        );
        assert!(j.contains("\"vs_prior\""));
        assert!(j.contains("\"prior_schema\": \"acic-throughput-baseline/v3\""));
        assert!(j.contains("\"lru_devirt_batched_ips\": 2.00"));
        assert!(j.contains("\"lru_timing_sim_ips\": 2.00"));
        assert!(j.contains("\"mt_lru_flush_functional_ips\": 2.00"));
        crate::json::Json::parse(&j).expect("vs_prior section stays valid JSON");
    }

    #[test]
    fn sampled_row_math() {
        let r = SampledRow {
            label: "x",
            instructions: 1,
            full_secs: 2.0,
            sampled_secs: 0.2,
            windows: 1,
            full_ipc: 2.0,
            sampled_ipc: 2.1,
            full_mpki: 4.0,
            sampled_mpki: 3.9,
        };
        assert!((r.speedup() - 10.0).abs() < 1e-9);
        assert!((r.ipc_err_pct() - 5.0).abs() < 1e-9);
        assert!((r.mpki_err_pct() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn spin_calibration_is_positive_and_finite() {
        let c = measure_calibration();
        assert!(c.spin_ops_per_sec.is_finite());
        assert!(c.spin_ops_per_sec > 0.0);
        assert_eq!(c.spin_ops, SPIN_OPS);
    }

    #[test]
    fn naive_reference_still_runs() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 5_000);
        let misses = run_naive_boxed(PolicyKind::Lru, &wl);
        assert!(misses > 0);
    }
}

//! The pure, clock-injected retry policy of the process supervisor.
//!
//! Everything here is a function of its arguments — no sleeping, no
//! clock reads, no environment access — so the policy is fully
//! unit-testable (and property-tested in `tests/retry_policy.rs`)
//! without spawning a single child. The supervisor proper
//! ([`super::run_one`]) only *executes* the decisions made here.
//!
//! **Classification.** A dead child is classified by the evidence its
//! exit leaves behind ([`classify`]):
//!
//! * *Transient* — the failure is plausibly environmental and worth
//!   retrying up to a cap: the supervisor's own hard-timeout kill, an
//!   external signal death (the OOM killer sends SIGKILL), or a
//!   failed spawn (fork pressure).
//! * *Deterministic* — the program itself failed: a non-zero exit
//!   status (a Rust panic exits 101), a SIGABRT (`abort()` is
//!   program-initiated, not environmental), or a clean exit that never
//!   journaled its cell (a protocol violation). Deterministic
//!   failures are retried **once** to confirm — a panic that
//!   reproduces is real; one that doesn't was transient after all.
//!
//! **Backoff.** Delays grow as a capped exponential with
//! deterministic seeded jitter: attempt `n`'s delay is
//! `min(base · 2^(n-1) · (1 + j/1000), cap)` with `j ∈ [0, 250)`
//! derived from `(seed, cell key, n)` via SplitMix64. The jitter
//! fraction is strictly below 25% while the raw delay doubles, so the
//! sequence is monotone non-decreasing for every key and seed (the
//! property suite proves it over random inputs), and equal seeds
//! replay equal schedules — a failing supervision run reproduces
//! exactly.

use crate::fault::{fnv1a, splitmix64, FNV_OFFSET};
use std::time::Duration;

/// `SIGABRT` — the signal `abort()` raises; program-initiated, hence
/// classified deterministic unlike other signal deaths.
pub const SIGABRT: i32 = 6;

/// How a supervised child's attempt ended, as observed by the parent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChildOutcome {
    /// Exited with this status (`0` with a journaled report is
    /// success and never reaches the policy).
    Exited(i32),
    /// Killed by this signal (not by the supervisor).
    Signaled(i32),
    /// Exceeded the hard timeout; the supervisor SIGKILLed it.
    TimedOut(Duration),
    /// The child process could not be spawned.
    SpawnFailed(String),
    /// Exited `0` but its cell never appeared in the attempt journal —
    /// a protocol violation.
    NoReport,
}

impl std::fmt::Display for ChildOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChildOutcome::Exited(code) => write!(f, "exited with status {code}"),
            ChildOutcome::Signaled(sig) if *sig == SIGABRT => {
                write!(f, "killed by signal {sig} (SIGABRT)")
            }
            ChildOutcome::Signaled(sig) => write!(f, "killed by signal {sig}"),
            ChildOutcome::TimedOut(limit) => {
                write!(f, "hard timeout after {}s (SIGKILLed)", limit.as_secs())
            }
            ChildOutcome::SpawnFailed(e) => write!(f, "spawn failed: {e}"),
            ChildOutcome::NoReport => write!(f, "exited 0 without journaling its cell"),
        }
    }
}

/// Whether a failure is worth the full retry budget or only the
/// single confirmation retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// Plausibly environmental; retried up to
    /// [`RetryPolicy::transient_attempts`].
    Transient,
    /// The program itself failed; retried once to confirm
    /// ([`RetryPolicy::deterministic_attempts`]).
    Deterministic,
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureClass::Transient => write!(f, "transient"),
            FailureClass::Deterministic => write!(f, "deterministic"),
        }
    }
}

/// Classifies a failed attempt by its exit evidence (see the module
/// docs for the rationale per arm).
pub fn classify(outcome: &ChildOutcome) -> FailureClass {
    match outcome {
        ChildOutcome::TimedOut(_) | ChildOutcome::SpawnFailed(_) => FailureClass::Transient,
        ChildOutcome::Signaled(sig) if *sig == SIGABRT => FailureClass::Deterministic,
        ChildOutcome::Signaled(_) => FailureClass::Transient,
        ChildOutcome::Exited(_) | ChildOutcome::NoReport => FailureClass::Deterministic,
    }
}

/// What the supervisor should do after a failed attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Sleep this long, then run the next attempt.
    Retry(Duration),
    /// The attempt budget for this failure class is spent.
    GiveUp(FailureClass),
}

/// The supervisor's retry schedule — pure data, no clocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed for transient failures (≥ 1).
    pub transient_attempts: u32,
    /// Total attempts for deterministic failures: 2 = "retry once to
    /// confirm".
    pub deterministic_attempts: u32,
    /// First retry delay.
    pub base: Duration,
    /// Delay ceiling.
    pub cap: Duration,
    /// Jitter seed; equal seeds replay equal schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            transient_attempts: 3,
            deterministic_attempts: 2,
            base: Duration::from_millis(200),
            cap: Duration::from_secs(5),
            seed: 0xac1c_5003,
        }
    }
}

/// Resolves a policy from `ACIC_SUPERVISE_RETRIES` /
/// `ACIC_SUPERVISE_BACKOFF_MS`-style overrides (transient attempt
/// budget, base delay). Garbage and zero fall back to the defaults.
/// Pure for testability.
pub fn retry_policy_from(retries: Option<&str>, backoff_ms: Option<&str>) -> RetryPolicy {
    let mut p = RetryPolicy::default();
    if let Some(n) = retries
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n >= 1)
    {
        p.transient_attempts = n;
    }
    if let Some(ms) = backoff_ms.and_then(|v| v.parse::<u64>().ok()) {
        p.base = Duration::from_millis(ms);
    }
    p
}

impl RetryPolicy {
    /// The policy the process environment asks for.
    pub fn from_env() -> RetryPolicy {
        retry_policy_from(
            std::env::var("ACIC_SUPERVISE_RETRIES").ok().as_deref(),
            std::env::var("ACIC_SUPERVISE_BACKOFF_MS").ok().as_deref(),
        )
    }

    /// Total attempts permitted for a failure class.
    pub fn attempt_cap(&self, class: FailureClass) -> u32 {
        match class {
            FailureClass::Transient => self.transient_attempts.max(1),
            FailureClass::Deterministic => self.deterministic_attempts.max(1),
        }
    }

    /// The delay before attempt `attempts_made + 1` of `key`
    /// (`attempts_made ≥ 1`): capped exponential with deterministic
    /// seeded jitter, monotone non-decreasing in `attempts_made`.
    pub fn backoff(&self, key: &str, attempts_made: u32) -> Duration {
        let exp = attempts_made.saturating_sub(1).min(20);
        let raw = self.base.as_nanos() << exp;
        let h = splitmix64(
            self.seed
                ^ fnv1a(FNV_OFFSET, key.as_bytes())
                ^ u64::from(attempts_made).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        // Jitter in [0, 25%): strictly under the doubling step, which
        // is what makes the schedule monotone.
        let jitter_milli = u128::from(h % 250);
        let delayed = raw + raw * jitter_milli / 1000;
        Duration::from_nanos(delayed.min(self.cap.as_nanos()).min(u128::from(u64::MAX)) as u64)
    }

    /// The verdict after attempt `attempts_made` of `key` failed with
    /// `outcome`: retry (with the backoff delay) while the class's
    /// attempt budget lasts, give up after.
    pub fn decide(&self, key: &str, outcome: &ChildOutcome, attempts_made: u32) -> Decision {
        let class = classify(outcome);
        if attempts_made < self.attempt_cap(class) {
            Decision::Retry(self.backoff(key, attempts_made))
        } else {
            Decision::GiveUp(class)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        use ChildOutcome::*;
        use FailureClass::*;
        let cases: Vec<(ChildOutcome, FailureClass)> = vec![
            (Exited(101), Deterministic), // rust panic
            (Exited(1), Deterministic),
            (Signaled(SIGABRT), Deterministic), // abort()
            (Signaled(9), Transient),           // OOM killer
            (Signaled(15), Transient),
            (TimedOut(Duration::from_secs(2)), Transient),
            (SpawnFailed("fork: EAGAIN".into()), Transient),
            (NoReport, Deterministic),
        ];
        for (outcome, want) in cases {
            assert_eq!(classify(&outcome), want, "{outcome}");
        }
    }

    #[test]
    fn deterministic_failures_retry_once_to_confirm() {
        let p = RetryPolicy::default();
        let panic = ChildOutcome::Exited(101);
        assert!(matches!(p.decide("k", &panic, 1), Decision::Retry(_)));
        assert_eq!(
            p.decide("k", &panic, 2),
            Decision::GiveUp(FailureClass::Deterministic)
        );
    }

    #[test]
    fn transient_failures_use_the_full_budget() {
        let p = RetryPolicy::default();
        let killed = ChildOutcome::Signaled(9);
        assert!(matches!(p.decide("k", &killed, 1), Decision::Retry(_)));
        assert!(matches!(p.decide("k", &killed, 2), Decision::Retry(_)));
        assert_eq!(
            p.decide("k", &killed, 3),
            Decision::GiveUp(FailureClass::Transient)
        );
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff("cell", 1), p.backoff("cell", 1), "replayable");
        // Far attempts pin at the cap exactly.
        assert_eq!(p.backoff("cell", 30), p.cap);
        // The first delay is at least base and under base + 25%.
        let d = p.backoff("cell", 1);
        assert!(d >= p.base && d < p.base + p.base / 4 + Duration::from_nanos(1));
    }

    #[test]
    fn env_overrides_parse_with_fallbacks() {
        let p = retry_policy_from(Some("5"), Some("50"));
        assert_eq!(p.transient_attempts, 5);
        assert_eq!(p.base, Duration::from_millis(50));
        let d = retry_policy_from(Some("0"), Some("soon"));
        assert_eq!(d, RetryPolicy::default(), "zero and garbage rejected");
    }
}

//! Process-supervised cell execution: hard isolation, retry with
//! backoff, and crash forensics.
//!
//! The in-process grid runner (`runner.rs`) isolates cells with
//! `catch_unwind` and a *soft* watchdog: a wedged worker is written
//! off but leaks, and an `abort()` or OOM kill in any cell tears down
//! the whole campaign. Under `--supervise` the parent instead
//! self-execs **one child process per cell**: the child re-runs the
//! same binary with the hidden `--run-cell <journal-key>` /
//! `--run-cell-out <dir>` flags, locates its one cell by journal key,
//! simulates it, and reports the result through a private
//! `acic-results/v2` store that the parent re-reads after the child
//! exits. That buys:
//!
//! * **Hard timeouts** — a stalled child is SIGKILLed at the
//!   `ACIC_CELL_TIMEOUT_SECS` deadline; nothing leaks.
//! * **Blast-radius one** — `abort()`, OOM, or any signal death kills
//!   one attempt of one cell, never the campaign.
//! * **Retries with taxonomy** — the pure [`policy`] module classifies
//!   each dead child transient vs deterministic from its exit
//!   evidence and schedules capped exponential backoff with
//!   deterministic seeded jitter.
//! * **Forensics** — every retried or failed cell leaves a crash
//!   report (exit status / signal, captured stderr tail, full retry
//!   history) under `crash-reports/`, referenced from the `GridError`
//!   summary.
//!
//! The in-process path stays the default and the bit-identity
//! reference: a supervised run must produce byte-identical journals
//! and figure output (children journal through the same bit-exact
//! report round-trip, and the parent's whole-file `BTreeMap` rewrite
//! makes journal bytes independent of completion order). Where
//! spawning is unavailable the supervisor degrades to in-process
//! execution with a single warning.

pub mod policy;

use crate::result_store::ResultStore;
use crate::runner::CellError;
use acic_sim::SimReport;
use policy::{classify, ChildOutcome, Decision, RetryPolicy};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How much child stderr the supervisor retains per attempt for the
/// crash report.
const STDERR_TAIL_BYTES: usize = 8 * 1024;

/// How often the parent polls a running child between hard-deadline
/// checks.
const CHILD_POLL: Duration = Duration::from_millis(15);

/// The supervised parent's execution context: how to re-exec
/// ourselves for one cell and where crash artifacts go.
#[derive(Debug)]
pub struct SuperviseCtx {
    /// The `experiments` binary to self-exec.
    exe: PathBuf,
    /// Original argv (minus supervision flags) so the child replays
    /// the same figure/DSE selection and reaches the same cells.
    args: Vec<String>,
    /// Where crash reports for failed/retried cells are written.
    pub crash_dir: PathBuf,
    /// Scratch space for per-attempt child journals.
    work_dir: PathBuf,
    /// The retry/backoff schedule.
    pub policy: RetryPolicy,
}

/// The one cell a `--run-cell` child process is responsible for.
#[derive(Debug, Clone)]
pub struct ChildTarget {
    /// The journal key identifying the cell.
    pub key: String,
    /// The private store directory the child must report through.
    pub out_dir: PathBuf,
}

static SUPERVISOR: OnceLock<Arc<SuperviseCtx>> = OnceLock::new();
static CHILD: OnceLock<ChildTarget> = OnceLock::new();

/// Installs the process-wide supervisor used by default-constructed
/// runners, mirroring `result_store::configure`. Fails (so the caller
/// can warn once and fall back to in-process execution) when the
/// current executable cannot be resolved or the crash directory
/// cannot be created.
pub fn configure(crash_dir: &Path, argv: &[String]) -> Result<Arc<SuperviseCtx>, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot resolve the current executable for self-exec: {e}"))?;
    std::fs::create_dir_all(crash_dir).map_err(|e| {
        format!(
            "cannot create crash-report dir {}: {e}",
            crash_dir.display()
        )
    })?;
    let work_dir = crash_dir.join(".attempts");
    std::fs::create_dir_all(&work_dir).map_err(|e| {
        format!(
            "cannot create attempt scratch dir {}: {e}",
            work_dir.display()
        )
    })?;
    let ctx = Arc::new(SuperviseCtx {
        exe,
        args: child_args(argv),
        crash_dir: crash_dir.to_path_buf(),
        work_dir,
        policy: RetryPolicy::from_env(),
    });
    let _ = SUPERVISOR.set(Arc::clone(&ctx));
    Ok(ctx)
}

/// The process-wide supervisor, if one was configured. Always `None`
/// inside a `--run-cell` child: children never recurse into
/// supervision.
pub fn active() -> Option<Arc<SuperviseCtx>> {
    if CHILD.get().is_some() {
        return None;
    }
    SUPERVISOR.get().cloned()
}

/// Marks this process as a supervised child responsible for exactly
/// one cell.
pub fn set_child_target(key: String, out_dir: PathBuf) {
    let _ = CHILD.set(ChildTarget { key, out_dir });
}

/// The cell this child process must run, when in `--run-cell` mode.
pub fn child_target() -> Option<&'static ChildTarget> {
    CHILD.get()
}

/// Strips supervision flags from an argv so the child does not
/// recurse into spawning grandchildren. Pure for testability.
pub fn child_args(argv: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(argv.len());
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--supervise" | "--supervise-smoke" => {}
            "--crash-reports" | "--run-cell" | "--run-cell-out" => {
                let _ = it.next();
            }
            _ => out.push(a.clone()),
        }
    }
    out
}

/// Flattens a journal key into something safe for a file name.
fn sanitize_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// One attempt's worth of forensic evidence.
struct AttemptRecord {
    outcome: String,
    class: Option<String>,
    backoff: Option<Duration>,
    stderr_tail: String,
}

/// Runs one cell to completion under process supervision: spawn a
/// `--run-cell` child, enforce the hard timeout, classify any death,
/// and retry per the policy. Returns the child's journaled report on
/// success; writes a crash report and returns
/// [`CellError::ChildFailed`] when the attempt budget is spent.
pub fn run_one(
    ctx: &SuperviseCtx,
    key: &str,
    label: &str,
    timeout: Option<Duration>,
) -> Result<SimReport, CellError> {
    let mut history: Vec<AttemptRecord> = Vec::new();
    let mut attempt: u32 = 1;
    loop {
        let out_dir = ctx
            .work_dir
            .join(format!("{}-a{attempt}", sanitize_key(key)));
        let _ = std::fs::remove_dir_all(&out_dir);
        let (outcome, stderr_tail) = spawn_and_wait(ctx, key, &out_dir, attempt - 1, timeout);
        let report = if outcome == ChildOutcome::Exited(0) {
            ResultStore::open(&out_dir).ok().and_then(|s| s.get(key))
        } else {
            None
        };
        let _ = std::fs::remove_dir_all(&out_dir);
        if let Some(report) = report {
            if !history.is_empty() {
                history.push(AttemptRecord {
                    outcome: "succeeded".into(),
                    class: None,
                    backoff: None,
                    stderr_tail: String::new(),
                });
                write_crash_report(ctx, key, label, &history, "recovered");
            }
            return Ok(report);
        }
        // A clean exit that never journaled the cell is its own
        // (deterministic) failure mode.
        let outcome = if outcome == ChildOutcome::Exited(0) {
            ChildOutcome::NoReport
        } else {
            outcome
        };
        let decision = ctx.policy.decide(key, &outcome, attempt);
        let backoff = match &decision {
            Decision::Retry(d) => Some(*d),
            Decision::GiveUp(_) => None,
        };
        history.push(AttemptRecord {
            outcome: outcome.to_string(),
            class: Some(classify(&outcome).to_string()),
            backoff,
            stderr_tail,
        });
        match decision {
            Decision::Retry(delay) => {
                std::thread::sleep(delay);
                attempt += 1;
            }
            Decision::GiveUp(class) => {
                write_crash_report(ctx, key, label, &history, &format!("failed ({class})"));
                return Err(CellError::ChildFailed {
                    outcome: outcome.to_string(),
                    attempts: attempt,
                });
            }
        }
    }
}

/// Spawns one `--run-cell` child and waits for it, SIGKILLing at the
/// hard deadline. Returns the outcome plus the retained stderr tail.
fn spawn_and_wait(
    ctx: &SuperviseCtx,
    key: &str,
    out_dir: &Path,
    attempt_idx: u32,
    timeout: Option<Duration>,
) -> (ChildOutcome, String) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        return (ChildOutcome::SpawnFailed(e.to_string()), String::new());
    }
    let mut cmd = Command::new(&ctx.exe);
    cmd.args(&ctx.args)
        .arg("--run-cell")
        .arg(key)
        .arg("--run-cell-out")
        .arg(out_dir)
        .env("ACIC_SUPERVISE_ATTEMPT", attempt_idx.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => return (ChildOutcome::SpawnFailed(e.to_string()), String::new()),
    };
    let drain = child
        .stderr
        .take()
        .map(|s| std::thread::spawn(move || stderr_tail(s)));
    let deadline = timeout.map(|t| Instant::now() + t);
    let status = loop {
        match child.try_wait() {
            Ok(Some(st)) => break Some(st),
            Ok(None) => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    let _ = child.kill();
                    let _ = child.wait();
                    break None;
                }
                std::thread::sleep(CHILD_POLL);
            }
            Err(_) => {
                let _ = child.kill();
                break child.wait().ok();
            }
        }
    };
    let tail = drain.and_then(|t| t.join().ok()).unwrap_or_default();
    let outcome = match status {
        None => ChildOutcome::TimedOut(timeout.unwrap_or_default()),
        Some(st) => match st.code() {
            Some(code) => ChildOutcome::Exited(code),
            None => ChildOutcome::Signaled(death_signal(&st)),
        },
    };
    (outcome, tail)
}

#[cfg(unix)]
fn death_signal(st: &std::process::ExitStatus) -> i32 {
    use std::os::unix::process::ExitStatusExt;
    st.signal().unwrap_or(-1)
}

#[cfg(not(unix))]
fn death_signal(_st: &std::process::ExitStatus) -> i32 {
    -1
}

/// Reads a child's piped stderr to the end, retaining only the last
/// [`STDERR_TAIL_BYTES`] so a log-spewing child cannot balloon the
/// parent.
fn stderr_tail(mut pipe: impl std::io::Read) -> String {
    let mut tail: Vec<u8> = Vec::with_capacity(STDERR_TAIL_BYTES);
    let mut buf = [0u8; 4096];
    loop {
        match pipe.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                tail.extend_from_slice(&buf[..n]);
                if tail.len() > STDERR_TAIL_BYTES {
                    let cut = tail.len() - STDERR_TAIL_BYTES;
                    tail.drain(..cut);
                }
            }
        }
    }
    String::from_utf8_lossy(&tail).into_owned()
}

/// Writes the per-cell crash artifact: identity, full retry history
/// with per-attempt exit evidence and stderr tails, and the final
/// disposition.
fn write_crash_report(
    ctx: &SuperviseCtx,
    key: &str,
    label: &str,
    history: &[AttemptRecord],
    disposition: &str,
) {
    let mut out = String::new();
    out.push_str(&format!("cell: {label}\n"));
    out.push_str(&format!("key: {key}\n"));
    out.push_str(&format!("attempts: {}\n", history.len()));
    for (i, rec) in history.iter().enumerate() {
        match (&rec.class, rec.backoff) {
            (Some(class), Some(delay)) => out.push_str(&format!(
                "attempt {}: {} [{}]; retrying in {}ms\n",
                i + 1,
                rec.outcome,
                class,
                delay.as_millis()
            )),
            (Some(class), None) => {
                out.push_str(&format!("attempt {}: {} [{}]\n", i + 1, rec.outcome, class))
            }
            (None, _) => out.push_str(&format!("attempt {}: {}\n", i + 1, rec.outcome)),
        }
        if !rec.stderr_tail.is_empty() {
            out.push_str("  stderr tail:\n");
            for line in rec.stderr_tail.lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
    }
    out.push_str(&format!("disposition: {disposition}\n"));
    let path = ctx.crash_dir.join(format!("{}.txt", sanitize_key(key)));
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!(
            "[warning: could not write crash report {}: {e}]",
            path.display()
        );
    }
}

/// Runs the closure as this child process's one cell: journal the
/// report into the private per-attempt store and exit. Never returns.
/// Exit taxonomy (observed by the parent): 0 = journaled OK, 101 =
/// cell panicked, 4 = journal write failed; `abort()`/signals
/// propagate as signal deaths.
pub fn run_child_cell(target: &ChildTarget, rung: Option<u32>, f: impl FnOnce() -> SimReport) -> ! {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(report) => {
            let journaled = ResultStore::open(&target.out_dir)
                .map_err(|e| e.to_string())
                .and_then(|s| {
                    match rung {
                        Some(r) => s.put_rung(&target.key, r, &report),
                        None => s.put(&target.key, &report),
                    }
                    .map_err(|e| e.to_string())
                });
            match journaled {
                Ok(()) => std::process::exit(0),
                Err(e) => {
                    eprintln!(
                        "[supervise child: failed to journal cell {}: {e}]",
                        target.key
                    );
                    std::process::exit(4)
                }
            }
        }
        // The process panic hook already printed the panic message to
        // stderr; exit like an uncaught panic would so the parent
        // classifies it deterministic.
        Err(_) => std::process::exit(101),
    }
}

/// Kills the current process with SIGKILL (no unwinding, no exit
/// status) — the scripted `ACIC_KILL_CELL` fault, standing in for the
/// OOM killer. Falls back to `abort()` where no shell is available.
pub(crate) fn kill_self() -> ! {
    #[cfg(unix)]
    {
        let pid = std::process::id();
        let _ = Command::new("sh")
            .arg("-c")
            .arg(format!("kill -9 {pid}"))
            .status();
        // SIGKILL delivery is asynchronous; give it a moment before
        // falling back.
        std::thread::sleep(Duration::from_secs(5));
    }
    std::process::abort();
}

/// The `supervise` row of `BENCH_baseline.json`: supervised vs
/// in-process wall clock on a small healthy grid.
#[derive(Debug, Clone)]
pub struct SuperviseRow {
    pub figure: String,
    pub instructions: u64,
    pub cells: usize,
    pub in_process_secs: f64,
    pub supervised_secs: f64,
}

impl SuperviseRow {
    /// Wall-clock ratio, higher is better for the supervised path
    /// (1.0 = free supervision; expect < 1.0 from spawn overhead).
    pub fn vs_in_process(&self) -> f64 {
        self.in_process_secs / self.supervised_secs.max(1e-12)
    }
}

/// Locates the `experiments` binary: this executable when we *are*
/// it, else a sibling in the same target directory (the baseline
/// harness runs as `throughput_baseline`).
fn experiments_exe() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let is_experiments = exe
        .file_stem()
        .and_then(|s| s.to_str())
        .is_some_and(|s| s == "experiments");
    if is_experiments {
        return Ok(exe);
    }
    let sibling = exe
        .parent()
        .map(|d| d.join(format!("experiments{}", std::env::consts::EXE_SUFFIX)))
        .filter(|p| p.is_file());
    sibling.ok_or_else(|| {
        format!(
            "experiments binary not found next to {} (build it first)",
            exe.display()
        )
    })
}

/// A scratch directory namespaced by pid, removed by the caller.
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("acic-{tag}-{}", std::process::id()))
}

/// Spawns one `experiments` child for the overhead measurement /
/// smoke, with a hermetic fault environment, returning (exit code,
/// stdout, stderr, wall seconds).
fn run_experiments(
    exe: &Path,
    args: &[&str],
    envs: &[(&str, String)],
) -> Result<(i32, String, String, f64), String> {
    let mut cmd = Command::new(exe);
    cmd.args(args);
    for var in crate::fault::CELL_FAULT_VARS {
        cmd.env_remove(var);
    }
    for var in [
        "ACIC_CELL_TIMEOUT_SECS",
        "ACIC_SUPERVISE_RETRIES",
        "ACIC_SUPERVISE_BACKOFF_MS",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let start = Instant::now();
    let out = cmd
        .output()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))?;
    let wall = start.elapsed().as_secs_f64();
    let code = out.status.code().unwrap_or(-1);
    Ok((
        code,
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        wall,
    ))
}

/// Measures supervised vs in-process wall clock on the small healthy
/// `table3_mpki` grid (1 config x 10 specs), for the
/// `supervise.vs_in_process` baseline/delta cell.
pub fn measure_supervise_overhead(instructions: u64) -> Result<SuperviseRow, String> {
    let exe = experiments_exe()?;
    let scratch = scratch_dir("supervise-bench");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("scratch dir: {e}"))?;
    let budget = ("ACIC_EXP_INSTRUCTIONS", instructions.to_string());
    let figure = "table3_mpki";
    let run = |args: &[&str]| -> Result<f64, String> {
        let (code, _out, err, wall) = run_experiments(&exe, args, std::slice::from_ref(&budget))?;
        if code != 0 {
            return Err(format!(
                "experiments {args:?} exited {code}: {}",
                err.trim()
            ));
        }
        Ok(wall)
    };
    let in_process_secs = run(&["--only", figure])?;
    let crash = scratch.join("crash-reports");
    let supervised_secs = run(&[
        "--only",
        figure,
        "--supervise",
        "--crash-reports",
        crash.to_str().unwrap_or("crash-reports"),
    ])?;
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(SuperviseRow {
        figure: figure.to_string(),
        instructions,
        cells: 10,
        in_process_secs,
        supervised_secs,
    })
}

/// End-to-end smoke for `--supervise-smoke`: drives the supervisor
/// through the scripted hostile matrix (healthy, child-kill, stall,
/// deterministic panic) and checks bit-identity, retry journaling,
/// and hard-kill latency. Returns a human-readable summary or the
/// first failed check.
pub fn supervise_smoke() -> Result<String, String> {
    let exe = experiments_exe()?;
    let scratch = scratch_dir("supervise-smoke");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("scratch dir: {e}"))?;
    let budget = ("ACIC_EXP_INSTRUCTIONS", "2000".to_string());
    let figure = "table3_mpki";
    let journal = |dir: &Path| -> Result<Vec<u8>, String> {
        std::fs::read(dir.join("results.jsonl"))
            .map_err(|e| format!("journal {}: {e}", dir.display()))
    };
    let crash_report = |dir: &Path| -> Result<String, String> {
        let mut reports = Vec::new();
        for ent in
            std::fs::read_dir(dir).map_err(|e| format!("crash dir {}: {e}", dir.display()))?
        {
            let path = ent.map_err(|e| e.to_string())?.path();
            if path.extension().is_some_and(|x| x == "txt") {
                reports.push(std::fs::read_to_string(&path).map_err(|e| e.to_string())?);
            }
        }
        if reports.len() != 1 {
            return Err(format!(
                "expected exactly 1 crash report in {}, found {}",
                dir.display(),
                reports.len()
            ));
        }
        Ok(reports.pop().unwrap())
    };
    let mut lines = Vec::new();

    // 1. In-process reference run.
    let ref_rs = scratch.join("ref-results");
    let (code, ref_out, err, _) = run_experiments(
        &exe,
        &["--only", figure, "--results", ref_rs.to_str().unwrap()],
        std::slice::from_ref(&budget),
    )?;
    if code != 0 {
        return Err(format!("reference run exited {code}: {}", err.trim()));
    }
    let ref_journal = journal(&ref_rs)?;
    lines.push(format!(
        "reference: in-process run ok, journal {} bytes",
        ref_journal.len()
    ));

    // 2. Supervised healthy run: byte-identical output and journal,
    //    no crash reports.
    let sup_rs = scratch.join("sup-results");
    let sup_cr = scratch.join("sup-crash");
    let (code, sup_out, err, _) = run_experiments(
        &exe,
        &[
            "--only",
            figure,
            "--results",
            sup_rs.to_str().unwrap(),
            "--supervise",
            "--crash-reports",
            sup_cr.to_str().unwrap(),
        ],
        std::slice::from_ref(&budget),
    )?;
    if code != 0 {
        return Err(format!(
            "supervised healthy run exited {code}: {}",
            err.trim()
        ));
    }
    if sup_out != ref_out {
        return Err("supervised stdout differs from in-process reference".into());
    }
    if journal(&sup_rs)? != ref_journal {
        return Err("supervised journal differs from in-process reference".into());
    }
    let stray = std::fs::read_dir(&sup_cr)
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "txt"))
                .count()
        })
        .unwrap_or(0);
    if stray != 0 {
        return Err(format!("healthy supervised run left {stray} crash reports"));
    }
    lines.push(
        "supervised healthy: exit 0, stdout and journal byte-identical, no crash reports".into(),
    );

    // 3. Transient child kill on one cell's first attempt: campaign
    //    still completes bit-identically, retry is journaled.
    let kill_cr = scratch.join("kill-crash");
    let (code, kill_out, err, _) = run_experiments(
        &exe,
        &[
            "--only",
            figure,
            "--supervise",
            "--crash-reports",
            kill_cr.to_str().unwrap(),
        ],
        &[
            budget.clone(),
            ("ACIC_KILL_CELL", "0:1".into()),
            ("ACIC_FAULT_ATTEMPTS", "1".into()),
        ],
    )?;
    if code != 0 {
        return Err(format!("child-kill run exited {code}: {}", err.trim()));
    }
    if kill_out != ref_out {
        return Err("child-kill run stdout differs from reference".into());
    }
    let report = crash_report(&kill_cr)?;
    if !report.contains("transient") || !report.contains("recovered") {
        return Err(format!(
            "kill crash report lacks transient/recovered evidence:\n{report}"
        ));
    }
    lines.push("child-kill: SIGKILLed attempt retried transient, campaign bit-identical, crash report journaled".into());

    // 4. Stall past the hard timeout: SIGKILLed at the deadline, the
    //    retry (fault disarmed after attempt 0) completes the campaign
    //    far faster than the scripted 30s stall.
    let stall_cr = scratch.join("stall-crash");
    let stall_start = Instant::now();
    let (code, stall_out, err, _) = run_experiments(
        &exe,
        &[
            "--only",
            figure,
            "--supervise",
            "--crash-reports",
            stall_cr.to_str().unwrap(),
        ],
        &[
            budget.clone(),
            ("ACIC_STALL_CELL", "0:1:30000".into()),
            ("ACIC_FAULT_ATTEMPTS", "1".into()),
            ("ACIC_CELL_TIMEOUT_SECS", "2".into()),
        ],
    )?;
    let stall_wall = stall_start.elapsed();
    if code != 0 {
        return Err(format!("stall run exited {code}: {}", err.trim()));
    }
    if stall_out != ref_out {
        return Err("stall run stdout differs from reference".into());
    }
    if stall_wall > Duration::from_secs(25) {
        return Err(format!(
            "stall run took {stall_wall:?}; hard kill did not engage"
        ));
    }
    let report = crash_report(&stall_cr)?;
    if !report.contains("hard timeout") {
        return Err(format!(
            "stall crash report lacks hard-timeout evidence:\n{report}"
        ));
    }
    lines.push(format!(
        "stall: 30s wedge hard-killed at 2s deadline, campaign done in {:.1}s",
        stall_wall.as_secs_f64()
    ));

    // 5. Deterministic panic: retried once to confirm, then the cell
    //    fails loudly (exit 1) while the other nine complete.
    let panic_cr = scratch.join("panic-crash");
    let (code, _out, err, _) = run_experiments(
        &exe,
        &[
            "--only",
            figure,
            "--supervise",
            "--crash-reports",
            panic_cr.to_str().unwrap(),
        ],
        &[budget.clone(), ("ACIC_PANIC_CELL", "0:1".into())],
    )?;
    if code != 1 {
        return Err(format!(
            "deterministic-panic run exited {code}, want 1: {}",
            err.trim()
        ));
    }
    if !err.contains("9 of 10 cells completed") {
        return Err(format!(
            "panic run summary missing 9-of-10 evidence:\n{}",
            err.trim()
        ));
    }
    let report = crash_report(&panic_cr)?;
    if !report.contains("attempt 2") || !report.contains("deterministic") {
        return Err(format!(
            "panic crash report lacks retry-to-confirm evidence:\n{report}"
        ));
    }
    lines.push(
        "deterministic panic: retried once to confirm, failed loudly, 9 healthy cells completed"
            .into(),
    );

    let _ = std::fs::remove_dir_all(&scratch);
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn child_args_strips_supervision_flags() {
        let got = child_args(&argv(&[
            "--only",
            "fig7_ipc",
            "--supervise",
            "--crash-reports",
            "cr",
            "--results",
            "rs",
            "--run-cell",
            "k",
            "--run-cell-out",
            "d",
            "--supervise-smoke",
        ]));
        assert_eq!(got, argv(&["--only", "fig7_ipc", "--results", "rs"]));
    }

    #[test]
    fn sanitized_keys_are_filesystem_safe() {
        let s = sanitize_key("spec/a b:c-1.2*x");
        assert!(s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.' || c == '_'));
        assert_eq!(sanitize_key("abc-1.2"), "abc-1.2");
    }

    #[test]
    fn stderr_tail_keeps_only_the_last_bytes() {
        let big = "x".repeat(3 * STDERR_TAIL_BYTES);
        let tail = stderr_tail(big.as_bytes());
        assert_eq!(tail.len(), STDERR_TAIL_BYTES);
    }
}

//! On-disk record/replay store for frozen workload traces.
//!
//! `experiments --record-traces <dir>` freezes every workload spec the
//! selected figures touch and writes each one as a `.acictrace`
//! container named by [`WorkloadSpec::store_key`];
//! `experiments --traces <dir>` replays those containers instead of
//! re-running the Markov walker — which also makes *externally*
//! recorded traces a first-class scenario: any valid container dropped
//! into the directory under the right key is picked up verbatim.
//!
//! The store is process-global (configured once from the CLI before
//! any simulation starts) because freezing happens deep inside the
//! grid scheduler, several layers below anything that could thread a
//! handle through. [`freeze`] is the single entry point every
//! experiment path uses to turn a spec into a shared
//! [`Arc<PackedTrace>`]; [`freeze_with`] is the explicit-mode variant
//! tests and tools use to exercise record/replay without touching the
//! process-global singleton, and it additionally reports the
//! [`Provenance`] of each trace.
//!
//! **Failure model.** Replay never trusts a container it cannot fully
//! validate: a missing, corrupt (checksum/format), unreadable, or
//! wrong-budget file falls back to regeneration with a loud note on
//! stderr — safe because the generator is ground truth and packed
//! replay is bit-identical to it, so a fallback changes wall-clock
//! only, never results. Recording routes every container write
//! through [`crate::fault::write_atomic`] (sibling tmp + fsync +
//! rename), so a killed `--record-traces` run never leaves a torn
//! `.acictrace` at a final path.

use acic_trace::PackedTrace;
use acic_workloads::WorkloadSpec;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// How [`freeze`] interacts with the filesystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TraceStoreMode {
    /// Generate in memory only (the default).
    #[default]
    Off,
    /// Generate, then persist each frozen spec into the directory.
    Record(PathBuf),
    /// Replay containers from the directory; fall back to generation
    /// (with a note on stderr) for specs whose container is missing
    /// or unusable.
    Replay(PathBuf),
}

/// Why a [`freeze_with`] call failed. Only the *record* path can fail
/// — replay degrades to regeneration instead (see the module docs).
#[derive(Debug)]
pub enum TraceStoreError {
    /// Creating the record directory failed.
    CreateDir {
        /// Directory we tried to create.
        dir: PathBuf,
        /// Underlying filesystem error.
        source: std::io::Error,
    },
    /// Writing a container failed.
    Write {
        /// Container path we tried to write.
        path: PathBuf,
        /// Underlying filesystem error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for TraceStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStoreError::CreateDir { dir, source } => {
                write!(f, "--record-traces: create {}: {source}", dir.display())
            }
            TraceStoreError::Write { path, source } => {
                write!(f, "--record-traces: write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for TraceStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceStoreError::CreateDir { source, .. } | TraceStoreError::Write { source, .. } => {
                Some(source)
            }
        }
    }
}

/// Where a frozen trace's bytes actually came from — how replay's
/// fall-back-to-generation decisions become observable (and
/// assertable) instead of disappearing into stderr.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Generated in memory (mode [`TraceStoreMode::Off`]).
    Generated,
    /// Generated and persisted (mode [`TraceStoreMode::Record`]).
    Recorded,
    /// Decoded from a valid on-disk container.
    Replayed,
    /// Regenerated: no container under the spec's key.
    RegeneratedMissing,
    /// Regenerated: the container failed to read or validate
    /// (IO error, bad magic, truncation, checksum mismatch, ...).
    RegeneratedCorrupt,
    /// Regenerated: the container is valid but frozen at a different
    /// instruction budget than the experiment asked for.
    RegeneratedBudget,
}

/// A frozen trace plus where its bytes came from.
#[derive(Clone, Debug)]
pub struct Frozen {
    /// The shared immutable trace.
    pub trace: Arc<PackedTrace>,
    /// How the bytes were obtained.
    pub provenance: Provenance,
}

static MODE: OnceLock<TraceStoreMode> = OnceLock::new();

/// Configures the global store. Call at most once, before any
/// simulation; later calls (and configuration after first use) are
/// rejected so mid-run mode flips cannot mix provenances.
///
/// # Errors
///
/// Returns the already-active mode when the store was configured (or
/// defaulted by first use) before.
pub fn configure(mode: TraceStoreMode) -> Result<(), TraceStoreMode> {
    MODE.set(mode).map_err(|_| current().clone())
}

/// The active mode (defaults to [`TraceStoreMode::Off`] on first use).
pub fn current() -> &'static TraceStoreMode {
    MODE.get_or_init(TraceStoreMode::default)
}

fn container_path(dir: &Path, spec: &WorkloadSpec, instructions: u64) -> PathBuf {
    dir.join(format!("{}.acictrace", spec.store_key(instructions)))
}

/// Freezes one spec at the given budget, honoring the global store
/// mode. This is the only way experiment code should materialize a
/// workload: it keeps every path — in-memory grids, recording runs,
/// and replays of traces we didn't synthesize — behaviorally
/// identical.
///
/// # Errors
///
/// Fails only in [`TraceStoreMode::Record`], when the container (or
/// its directory) cannot be written; replay problems degrade to
/// regeneration instead (see [`freeze_with`]).
pub fn freeze(spec: &WorkloadSpec, instructions: u64) -> Result<Arc<PackedTrace>, TraceStoreError> {
    freeze_with(current(), spec, instructions).map(|f| f.trace)
}

/// [`freeze`] with an explicit mode instead of the process-global
/// one, reporting the trace's [`Provenance`]. Replay handles a
/// missing, corrupt, unreadable, or wrong-budget container by
/// regenerating from the spec — loudly on stderr, and visibly in the
/// returned provenance — because the generator is ground truth and
/// regeneration is bit-identical to a healthy replay.
///
/// # Errors
///
/// Fails only in [`TraceStoreMode::Record`], when the container (or
/// its directory) cannot be written.
pub fn freeze_with(
    mode: &TraceStoreMode,
    spec: &WorkloadSpec,
    instructions: u64,
) -> Result<Frozen, TraceStoreError> {
    match mode {
        TraceStoreMode::Off => Ok(Frozen {
            trace: Arc::new(spec.materialize(instructions)),
            provenance: Provenance::Generated,
        }),
        TraceStoreMode::Record(dir) => {
            let trace = spec.materialize(instructions);
            std::fs::create_dir_all(dir).map_err(|source| TraceStoreError::CreateDir {
                dir: dir.clone(),
                source,
            })?;
            let path = container_path(dir, spec, instructions);
            crate::fault::write_atomic(&path, &trace.to_bytes()).map_err(|source| {
                TraceStoreError::Write {
                    path: path.clone(),
                    source,
                }
            })?;
            Ok(Frozen {
                trace: Arc::new(trace),
                provenance: Provenance::Recorded,
            })
        }
        TraceStoreMode::Replay(dir) => {
            let path = container_path(dir, spec, instructions);
            let regenerate = |why: &str, provenance: Provenance| {
                eprintln!(
                    "[traces: {why} for '{}' ({}), regenerating]",
                    spec.label(),
                    path.display()
                );
                Ok(Frozen {
                    trace: Arc::new(spec.materialize(instructions)),
                    provenance,
                })
            };
            if !path.exists() {
                return regenerate("no container", Provenance::RegeneratedMissing);
            }
            let bytes = match crate::fault::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    return regenerate(
                        &format!("unreadable container ({e})"),
                        Provenance::RegeneratedCorrupt,
                    )
                }
            };
            let trace = match PackedTrace::from_bytes(&bytes) {
                Ok(t) => t,
                Err(e) => {
                    return regenerate(
                        &format!("invalid container ({e})"),
                        Provenance::RegeneratedCorrupt,
                    )
                }
            };
            if trace.len() != instructions {
                return regenerate(
                    &format!(
                        "budget mismatch ({} recorded vs {instructions} requested)",
                        trace.len()
                    ),
                    Provenance::RegeneratedBudget,
                );
            }
            Ok(Frozen {
                trace: Arc::new(trace),
                provenance: Provenance::Replayed,
            })
        }
    }
}

/// The CI trace-smoke check (`experiments --trace-smoke`): records a
/// trace per representative spec, replays it through the full
/// container round-trip, and demands the replayed [`SimReport`] be
/// **bit-identical** to the generator-backed run. Runs independently
/// of the global store mode (it drives [`freeze_with`] directly), so
/// it composes with any CLI configuration.
///
/// # Errors
///
/// Returns a description of the first divergence: container
/// round-trip mismatch, unexpected provenance, or any field of the
/// replayed report differing from the generated one.
pub fn trace_smoke(instructions: u64) -> Result<String, String> {
    use acic_sim::{IcacheOrg, SimConfig, SimReport, Simulator};
    use acic_workloads::AppProfile;

    let dir = std::env::temp_dir().join(format!("acic-trace-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let record = TraceStoreMode::Record(dir.clone());
    let replay = TraceStoreMode::Replay(dir.clone());
    let cells: Vec<(WorkloadSpec, SimConfig)> = vec![
        (
            WorkloadSpec::Single(AppProfile::web_search()),
            SimConfig::default().with_org(IcacheOrg::acic_default()),
        ),
        (
            WorkloadSpec::MultiTenant {
                profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
                quantum: instructions / 8,
            },
            SimConfig::default(),
        ),
    ];
    let mut out = format!("trace-smoke: {instructions} instructions/cell\n");
    for (spec, cfg) in &cells {
        let recorded = freeze_with(&record, spec, instructions).map_err(|e| e.to_string())?;
        let loaded = freeze_with(&replay, spec, instructions).map_err(|e| e.to_string())?;
        if loaded.provenance != Provenance::Replayed {
            return Err(format!(
                "expected a replayed container for '{}', got {:?}",
                spec.label(),
                loaded.provenance
            ));
        }
        if loaded.trace.as_ref() != recorded.trace.as_ref() {
            return Err(format!(
                "container round-trip diverged for '{}'",
                spec.label()
            ));
        }
        let generated: SimReport = Simulator::run(cfg, &spec.generator(instructions));
        let replayed: SimReport = Simulator::run(cfg, loaded.trace.as_ref());
        let (g, r) = (format!("{generated:?}"), format!("{replayed:?}"));
        if g != r {
            return Err(format!(
                "replayed report diverged from generated for '{}':\n  generated: {g}\n  replayed:  {r}",
                spec.label()
            ));
        }
        out.push_str(&format!(
            "  {}: {} instrs, {:.2} B/instr packed, replay bit-identical (cycles {}, L1i misses {})\n",
            spec.label(),
            loaded.trace.len(),
            loaded.trace.bytes_per_instr(),
            replayed.total_cycles,
            replayed.l1i.demand_misses,
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_trace::TraceSource;
    use acic_workloads::AppProfile;

    // The global mode is a process-wide singleton; tests here must
    // not configure it (other tests share the process). The
    // record/replay file cycle runs through `freeze_with`, which
    // takes the mode explicitly; the fallback matrix lives in
    // `tests/replay_fallback.rs`.

    #[test]
    fn default_mode_freezes_in_memory() {
        let spec = WorkloadSpec::Single(AppProfile::sibench());
        let a = freeze(&spec, 2_000).unwrap();
        let b = freeze(&spec, 2_000).unwrap();
        assert_eq!(a.len(), 2_000);
        assert!(a.iter().eq(b.iter()), "freezing is deterministic");
    }

    #[test]
    fn container_paths_embed_key_and_extension() {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let p = container_path(Path::new("/tmp/td"), &spec, 1_000);
        assert_eq!(p, PathBuf::from("/tmp/td/web-search-1000.acictrace"));
    }

    #[test]
    fn record_then_replay_reports_provenance() {
        let dir = std::env::temp_dir().join(format!("acic-ts-prov-{}", std::process::id()));
        let spec = WorkloadSpec::Single(AppProfile::sibench());
        let rec = freeze_with(&TraceStoreMode::Record(dir.clone()), &spec, 1_500).unwrap();
        assert_eq!(rec.provenance, Provenance::Recorded);
        let rep = freeze_with(&TraceStoreMode::Replay(dir.clone()), &spec, 1_500).unwrap();
        assert_eq!(rep.provenance, Provenance::Replayed);
        assert!(rec.trace.iter().eq(rep.trace.iter()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_write_failure_is_a_typed_error() {
        // A directory path that collides with an existing *file*
        // cannot be created.
        let blocker = std::env::temp_dir().join(format!("acic-ts-block-{}", std::process::id()));
        std::fs::write(&blocker, b"in the way").unwrap();
        let spec = WorkloadSpec::Single(AppProfile::sibench());
        let err = freeze_with(&TraceStoreMode::Record(blocker.clone()), &spec, 1_000)
            .expect_err("recording into a file must fail");
        assert!(matches!(err, TraceStoreError::CreateDir { .. }));
        assert!(err.to_string().contains("--record-traces"));
        std::fs::remove_file(&blocker).ok();
    }
}

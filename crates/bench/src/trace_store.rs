//! On-disk record/replay store for frozen workload traces.
//!
//! `experiments --record-traces <dir>` freezes every workload spec the
//! selected figures touch and writes each one as a `.acictrace`
//! container named by [`WorkloadSpec::store_key`];
//! `experiments --traces <dir>` replays those containers instead of
//! re-running the Markov walker — which also makes *externally*
//! recorded traces a first-class scenario: any valid container dropped
//! into the directory under the right key is picked up verbatim.
//!
//! The store is process-global (configured once from the CLI before
//! any simulation starts) because freezing happens deep inside the
//! grid scheduler, several layers below anything that could thread a
//! handle through. [`freeze`] is the single entry point every
//! experiment path uses to turn a spec into a shared
//! [`Arc<PackedTrace>`].

use acic_trace::PackedTrace;
use acic_workloads::WorkloadSpec;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// How [`freeze`] interacts with the filesystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum TraceStoreMode {
    /// Generate in memory only (the default).
    #[default]
    Off,
    /// Generate, then persist each frozen spec into the directory.
    Record(PathBuf),
    /// Replay containers from the directory; fall back to generation
    /// (with a note on stderr) for specs with no recorded file.
    Replay(PathBuf),
}

static MODE: OnceLock<TraceStoreMode> = OnceLock::new();

/// Configures the global store. Call at most once, before any
/// simulation; later calls (and configuration after first use) are
/// rejected so mid-run mode flips cannot mix provenances.
///
/// # Errors
///
/// Returns the already-active mode when the store was configured (or
/// defaulted by first use) before.
pub fn configure(mode: TraceStoreMode) -> Result<(), TraceStoreMode> {
    MODE.set(mode).map_err(|_| current().clone())
}

/// The active mode (defaults to [`TraceStoreMode::Off`] on first use).
pub fn current() -> &'static TraceStoreMode {
    MODE.get_or_init(TraceStoreMode::default)
}

fn container_path(dir: &Path, spec: &WorkloadSpec, instructions: u64) -> PathBuf {
    dir.join(format!("{}.acictrace", spec.store_key(instructions)))
}

/// Freezes one spec at the given budget, honoring the global store
/// mode. This is the only way experiment code should materialize a
/// workload: it keeps every path — in-memory grids, recording runs,
/// and replays of traces we didn't synthesize — behaviorally
/// identical.
///
/// # Panics
///
/// Panics when a recorded container exists but is corrupt or frozen
/// at a different instruction budget (replaying the wrong trace would
/// silently invalidate every number downstream), or when recording
/// cannot write the container.
pub fn freeze(spec: &WorkloadSpec, instructions: u64) -> Arc<PackedTrace> {
    match current() {
        TraceStoreMode::Off => Arc::new(spec.materialize(instructions)),
        TraceStoreMode::Record(dir) => {
            let trace = spec.materialize(instructions);
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("--record-traces: create {}: {e}", dir.display()));
            let path = container_path(dir, spec, instructions);
            trace
                .write_to(&path)
                .unwrap_or_else(|e| panic!("--record-traces: write {}: {e}", path.display()));
            Arc::new(trace)
        }
        TraceStoreMode::Replay(dir) => {
            let path = container_path(dir, spec, instructions);
            if !path.exists() {
                eprintln!(
                    "[traces: no container for '{}' ({}), generating]",
                    spec.label(),
                    path.display()
                );
                return Arc::new(spec.materialize(instructions));
            }
            let trace = PackedTrace::read_from(&path)
                .unwrap_or_else(|e| panic!("--traces: {}: {e}", path.display()));
            assert_eq!(
                trace.len(),
                instructions,
                "--traces: {} holds {} instructions but the experiment asked for {}",
                path.display(),
                trace.len(),
                instructions
            );
            Arc::new(trace)
        }
    }
}

/// The CI trace-smoke check (`experiments --trace-smoke`): records a
/// trace per representative spec, replays it through the full
/// container round-trip, and demands the replayed [`SimReport`] be
/// **bit-identical** to the generator-backed run. Runs independently
/// of the global store mode (it drives the container API directly),
/// so it composes with any CLI configuration.
///
/// # Errors
///
/// Returns a description of the first divergence: container
/// round-trip mismatch, or any field of the replayed report differing
/// from the generated one.
pub fn trace_smoke(instructions: u64) -> Result<String, String> {
    use acic_sim::{IcacheOrg, SimConfig, SimReport, Simulator};
    use acic_workloads::AppProfile;

    let dir = std::env::temp_dir().join(format!("acic-trace-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let cells: Vec<(WorkloadSpec, SimConfig)> = vec![
        (
            WorkloadSpec::Single(AppProfile::web_search()),
            SimConfig::default().with_org(IcacheOrg::acic_default()),
        ),
        (
            WorkloadSpec::MultiTenant {
                profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
                quantum: instructions / 8,
            },
            SimConfig::default(),
        ),
    ];
    let mut out = format!("trace-smoke: {instructions} instructions/cell\n");
    for (spec, cfg) in &cells {
        let frozen = spec.materialize(instructions);
        let path = container_path(&dir, spec, instructions);
        frozen
            .write_to(&path)
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        let loaded =
            PackedTrace::read_from(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        if loaded != frozen {
            return Err(format!(
                "container round-trip diverged for '{}'",
                spec.label()
            ));
        }
        let generated: SimReport = Simulator::run(cfg, &spec.generator(instructions));
        let replayed: SimReport = Simulator::run(cfg, &loaded);
        let (g, r) = (format!("{generated:?}"), format!("{replayed:?}"));
        if g != r {
            return Err(format!(
                "replayed report diverged from generated for '{}':\n  generated: {g}\n  replayed:  {r}",
                spec.label()
            ));
        }
        out.push_str(&format!(
            "  {}: {} instrs, {:.2} B/instr packed, replay bit-identical (cycles {}, L1i misses {})\n",
            spec.label(),
            loaded.len(),
            loaded.bytes_per_instr(),
            replayed.total_cycles,
            replayed.l1i.demand_misses,
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_trace::TraceSource;
    use acic_workloads::AppProfile;

    // The global mode is a process-wide singleton; tests here must
    // not configure it (other tests share the process). Exercise the
    // path logic and the default mode only — the record/replay file
    // cycle is covered end-to-end by `experiments --trace-smoke`.

    #[test]
    fn default_mode_freezes_in_memory() {
        let spec = WorkloadSpec::Single(AppProfile::sibench());
        let a = freeze(&spec, 2_000);
        let b = freeze(&spec, 2_000);
        assert_eq!(a.len(), 2_000);
        assert!(a.iter().eq(b.iter()), "freezing is deterministic");
    }

    #[test]
    fn container_paths_embed_key_and_extension() {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let p = container_path(Path::new("/tmp/td"), &spec, 1_000);
        assert_eq!(p, PathBuf::from("/tmp/td/web-search-1000.acictrace"));
    }
}

//! A dependency-free recursive-descent JSON reader.
//!
//! Covers exactly the subset the workspace's machine-readable
//! artifacts use (`BENCH_baseline.json`, `BENCH_delta.json`): objects,
//! arrays, strings with the common escapes, `f64` numbers, booleans
//! and `null`. The writers in `baseline.rs`/`delta.rs` must emit
//! *strict* JSON (no `+`-prefixed numbers) so external tooling can
//! read the committed files; this reader is deliberately the lenient
//! side of the pair.

/// A parsed JSON value (numbers as `f64`, objects as ordered pairs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a path of object keys.
    pub fn path(&self, keys: &[&str]) -> Option<&Json> {
        keys.iter().try_fold(self, |v, k| v.get(k))
    }

    /// Numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn str_val(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(
                            char::from_u32(code)
                                .unwrap_or('\u{FFFD}')
                                .encode_utf8(&mut buf)
                                .as_bytes(),
                        );
                    }
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                }
            }
            _ => out.push(c), // raw UTF-8 bytes pass through verbatim
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_baseline_shape() {
        let doc = Json::parse(
            r#"{
  "schema": "acic-throughput-baseline/v4",
  "instructions": 1000000,
  "orgs": { "lru": { "naive_ips": 136513348, "batched_over_naive": 1.37 } },
  "nested": { "arr": [1, 2.5, -3e2], "flag": true, "none": null }
}"#,
        )
        .expect("parses");
        assert_eq!(
            doc.path(&["orgs", "lru", "naive_ips"]).and_then(Json::num),
            Some(136513348.0)
        );
        assert_eq!(
            doc.get("schema").and_then(Json::str_val),
            Some("acic-throughput-baseline/v4")
        );
        assert_eq!(
            doc.path(&["nested", "arr"]),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-300.0)
            ]))
        );
        assert_eq!(doc.path(&["nested", "flag"]), Some(&Json::Bool(true)));
        assert_eq!(doc.path(&["nested", "none"]), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn strings_decode_escapes() {
        let v = Json::parse(r#""a\nb\t\"c\" A""#).unwrap();
        assert_eq!(v.str_val(), Some("a\nb\t\"c\" A"));
    }
}

//! Deterministic IO fault injection for the on-disk stores.
//!
//! Everything `acic-bench` persists — `.acictrace` containers
//! ([`crate::trace_store`]) and the resumable result journal
//! ([`crate::result_store`]) — performs its filesystem IO through the
//! two façades in this module, [`read`] and [`write_atomic`]. In
//! normal operation they are a thin veneer over `std::fs` that adds
//! the crash-safe write discipline (sibling temporary, fsync, atomic
//! rename, directory fsync). Under a [`FaultPlan`] installed with
//! [`with_faults`], each IO operation may instead fail or corrupt in
//! one of the ways real storage fails:
//!
//! * [`Fault::WriteEio`] / [`Fault::WriteEnospc`] — the write path
//!   errors before (EIO) or during (ENOSPC, leaving a stray partial
//!   temporary) the payload reaching disk.
//! * [`Fault::TornRename`] — the temporary is fully written but the
//!   process "dies" before the rename: the destination keeps its old
//!   content (or stays absent) and the caller sees an error.
//! * [`Fault::TruncateTmp`] — the worst-case non-atomic tear: a
//!   truncated prefix of the payload becomes visible at the final
//!   path. Readers must detect this via their checksums.
//! * [`Fault::BitFlipWrite`] — *silent* media corruption: one bit of
//!   the payload flips and the write still reports success. The read
//!   side must reject the corrupt bytes loudly.
//! * [`Fault::ReadEio`] / [`Fault::BitFlipRead`] — the read path
//!   errors, or returns the file's bytes with one bit flipped.
//!
//! Plans are deterministic: [`FaultPlan::seeded`] derives every
//! decision from (seed, operation index) via SplitMix64, so a failing
//! property case replays exactly; [`FaultPlan::script`] pins specific
//! faults to specific operations. The injector is thread-local —
//! concurrent tests cannot perturb each other — and the fault-facing
//! proptests in `tests/fault_injection.rs` assert the store-layer
//! invariant: **loud failure or bit-identical success, never silent
//! corruption**.

use std::cell::RefCell;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One injected IO misbehavior (see the module docs for the model
/// each variant implements).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Write fails before anything reaches disk.
    WriteEio,
    /// Write fails mid-payload (disk full); a partial temporary file
    /// is left behind, the destination is untouched.
    WriteEnospc,
    /// The process dies after writing the temporary but before the
    /// rename: destination unchanged, stray temporary left behind.
    TornRename,
    /// A truncated prefix (`keep_num / 256` of the payload) is
    /// renamed into the destination — a non-atomic tear made visible.
    TruncateTmp(u8),
    /// One bit of the payload (index taken modulo the payload length)
    /// flips and the write still reports success — silent corruption
    /// the *read* side must catch.
    BitFlipWrite(u32),
    /// Read fails with EIO.
    ReadEio,
    /// Read succeeds but one bit of the returned buffer is flipped.
    BitFlipRead(u32),
}

/// A deterministic schedule of [`Fault`]s over the sequence of IO
/// operations performed while the plan is installed.
#[derive(Clone, Debug)]
pub enum FaultPlan {
    /// Every IO operation faults independently with probability
    /// `density_pct`%; the fault kind and its parameters derive from
    /// `(seed, op_index)` alone.
    Seeded {
        /// Master seed; equal seeds replay equal fault sequences.
        seed: u64,
        /// Per-operation fault probability in percent (0–100).
        density_pct: u8,
    },
    /// Explicit per-operation faults: operation `i` suffers
    /// `faults[i]` (`None`, or past the end, means healthy).
    Script(Vec<Option<Fault>>),
}

impl FaultPlan {
    /// A seeded random plan (see [`FaultPlan::Seeded`]).
    pub fn seeded(seed: u64, density_pct: u8) -> FaultPlan {
        FaultPlan::Seeded { seed, density_pct }
    }

    /// A scripted plan (see [`FaultPlan::Script`]).
    pub fn script(faults: Vec<Option<Fault>>) -> FaultPlan {
        FaultPlan::Script(faults)
    }

    /// The fault (if any) for the `op`-th IO operation.
    fn decide(&self, op: u64) -> Option<Fault> {
        match self {
            FaultPlan::Script(faults) => faults.get(op as usize).copied().flatten(),
            FaultPlan::Seeded { seed, density_pct } => {
                let h = splitmix64(seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                if (h % 100) >= u64::from(*density_pct) {
                    return None;
                }
                let pick = (h >> 8) % 7;
                let param = (h >> 16) as u32;
                Some(match pick {
                    0 => Fault::WriteEio,
                    1 => Fault::WriteEnospc,
                    2 => Fault::TornRename,
                    3 => Fault::TruncateTmp((h >> 24) as u8),
                    4 => Fault::BitFlipWrite(param),
                    5 => Fault::ReadEio,
                    _ => Fault::BitFlipRead(param),
                })
            }
        }
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct Injector {
    plan: FaultPlan,
    next_op: u64,
    injected: u64,
}

thread_local! {
    static INJECTOR: RefCell<Option<Injector>> = const { RefCell::new(None) };
}

/// Runs `f` with `plan` governing every [`read`]/[`write_atomic`]
/// call **on this thread**, returning `f`'s result and the number of
/// faults actually injected. The previous injector (usually none) is
/// restored afterwards, panic or not.
pub fn with_faults<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> (R, u64) {
    struct Restore(Option<Injector>);
    impl Drop for Restore {
        fn drop(&mut self) {
            INJECTOR.with(|i| *i.borrow_mut() = self.0.take());
        }
    }
    let prior = INJECTOR.with(|i| {
        i.borrow_mut().replace(Injector {
            plan,
            next_op: 0,
            injected: 0,
        })
    });
    let restore = Restore(prior);
    let out = f();
    let injected = INJECTOR.with(|i| i.borrow().as_ref().map_or(0, |inj| inj.injected));
    drop(restore);
    (out, injected)
}

/// Consumes the next per-operation fault decision, if an injector is
/// installed on this thread.
fn take_fault() -> Option<Fault> {
    INJECTOR.with(|i| {
        let mut slot = i.borrow_mut();
        let inj = slot.as_mut()?;
        let fault = inj.plan.decide(inj.next_op);
        inj.next_op += 1;
        if fault.is_some() {
            inj.injected += 1;
        }
        fault
    })
}

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

fn flip_bit(bytes: &mut [u8], bit: u32) {
    if !bytes.is_empty() {
        let i = bit as usize % (bytes.len() * 8);
        bytes[i / 8] ^= 1 << (i % 8);
    }
}

/// The sibling temporary a [`write_atomic`] of `path` stages into.
/// Readers must treat `.tmp` files as garbage: a crashed (or
/// fault-injected) writer can leave one behind at any time.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads a whole file, honoring an installed fault plan.
///
/// # Errors
///
/// Propagates real filesystem errors and injected [`Fault::ReadEio`];
/// an injected [`Fault::BitFlipRead`] returns corrupted bytes
/// *successfully* — callers must validate what they read.
pub fn read(path: &Path) -> io::Result<Vec<u8>> {
    match take_fault() {
        Some(Fault::ReadEio) => Err(injected(io::ErrorKind::Other, "read EIO")),
        Some(Fault::BitFlipRead(bit)) => {
            let mut bytes = std::fs::read(path)?;
            flip_bit(&mut bytes, bit);
            Ok(bytes)
        }
        _ => std::fs::read(path),
    }
}

fn durable_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

fn rename_and_sync_dir(tmp: &Path, path: &Path) -> io::Result<()> {
    std::fs::rename(tmp, path)?;
    // Make the rename itself durable: fsync the containing directory
    // so a crash immediately after cannot resurrect the old entry.
    // Directories cannot be fsynced on every platform; best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes `bytes` to `path` crash-safely: staged into a sibling
/// [`tmp_path`], fsynced, atomically renamed over the destination,
/// directory fsynced. After a crash at any step the destination holds
/// either its previous content or the complete new content — never a
/// tear (outside an injected [`Fault::TruncateTmp`], which exists to
/// prove readers catch exactly that).
///
/// # Errors
///
/// Propagates real filesystem errors and injected write faults. On
/// error the destination is unchanged except under the two injected
/// tear/corruption faults documented on [`Fault`].
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    match take_fault() {
        Some(Fault::WriteEio) => Err(injected(io::ErrorKind::Other, "write EIO")),
        Some(Fault::WriteEnospc) => {
            // Half the payload lands in the temporary, then the disk
            // fills: destination untouched, stray .tmp left behind.
            let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
            Err(injected(io::ErrorKind::Other, "write ENOSPC"))
        }
        Some(Fault::TornRename) => {
            durable_write(&tmp, bytes)?;
            Err(injected(io::ErrorKind::Interrupted, "crash before rename"))
        }
        Some(Fault::TruncateTmp(keep_num)) => {
            let keep = bytes.len() * keep_num as usize / 256;
            durable_write(&tmp, &bytes[..keep])?;
            rename_and_sync_dir(&tmp, path)?;
            Err(injected(
                io::ErrorKind::Interrupted,
                "torn write reached the destination",
            ))
        }
        Some(Fault::BitFlipWrite(bit)) => {
            let mut corrupt = bytes.to_vec();
            flip_bit(&mut corrupt, bit);
            durable_write(&tmp, &corrupt)?;
            rename_and_sync_dir(&tmp, path)
        }
        _ => {
            durable_write(&tmp, bytes)?;
            rename_and_sync_dir(&tmp, path)
        }
    }
}

/// One injected *process-level* cell misbehavior — the hostile matrix
/// the supervision tier ([`crate::supervise`]) is tested against.
/// Unlike the IO [`Fault`]s above, these don't corrupt storage: they
/// make the cell's own execution hostile (panic, `abort()`, a stall
/// past the watchdog, self-SIGKILL, a bad exit status).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellFault {
    /// The cell panics (caught in-process by `catch_unwind`; kills a
    /// supervised child with the panic exit status).
    Panic,
    /// The cell calls `abort()` — un-catchable in-process, a SIGABRT
    /// death under supervision.
    Abort,
    /// The cell sleeps this long (soft-watchdog / hard-timeout food).
    Stall(Duration),
    /// The cell SIGKILLs its own process — the OOM-killer stand-in.
    Kill,
    /// The cell exits the whole process with this status.
    Exit(i32),
}

/// The scripted cell-fault environment variables, in the order
/// [`scripted_cell_fault`] consults them. Tests and smoke drivers
/// clear exactly this list to isolate child environments.
pub const CELL_FAULT_VARS: &[&str] = &[
    "ACIC_PANIC_CELL",
    "ACIC_ABORT_CELL",
    "ACIC_STALL_CELL",
    "ACIC_KILL_CELL",
    "ACIC_EXIT_CELL",
    "ACIC_FAULT_ATTEMPTS",
    "ACIC_SUPERVISE_ATTEMPT",
];

/// Parses one `"<config>:<spec>[:<param>]"` knob value against cell
/// `(c, a)`: the numeric fields, when the first two match the cell.
/// Pure for testability; tolerant of garbage (a malformed knob simply
/// never matches).
pub fn parse_cell_knob(raw: &str, c: usize, a: usize) -> Option<Vec<u64>> {
    let parts: Vec<u64> = raw.split(':').filter_map(|p| p.parse().ok()).collect();
    (parts.len() >= 2 && parts[0] == c as u64 && parts[1] == a as u64).then_some(parts)
}

/// Whether a scripted cell fault fires on supervision attempt
/// `attempt` under an `ACIC_FAULT_ATTEMPTS`-style gate: the fault
/// fires only on the first `gate` attempts (0-based `attempt < gate`),
/// so `ACIC_FAULT_ATTEMPTS=1` makes a fault *transient* — it kills
/// attempt 0 and lets the retry succeed. Unset (or garbage) means the
/// fault always fires: a *deterministic* failure. Pure for
/// testability.
pub fn cell_fault_armed(attempt: u32, gate: Option<&str>) -> bool {
    match gate.and_then(|g| g.parse::<u32>().ok()) {
        Some(k) => attempt < k,
        None => true,
    }
}

/// The supervision attempt index this process is running as:
/// `ACIC_SUPERVISE_ATTEMPT`, set by the supervisor on every child it
/// spawns; `0` in unsupervised processes.
pub fn supervise_attempt() -> u32 {
    std::env::var("ACIC_SUPERVISE_ATTEMPT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The scripted process-level fault (if any) for cell `(c, a)`,
/// honoring the attempt gate: `ACIC_PANIC_CELL` / `ACIC_ABORT_CELL` /
/// `ACIC_STALL_CELL` (PR 6's knobs, `"<config>:<spec>[:<millis>]"`)
/// plus `ACIC_KILL_CELL` (self-SIGKILL) and `ACIC_EXIT_CELL`
/// (`"<config>:<spec>:<status>"`). `ACIC_FAULT_ATTEMPTS=<k>` restricts
/// any of them to the first `k` supervision attempts (see
/// [`cell_fault_armed`]), which is how the hostile matrix scripts
/// *transient* failures.
pub fn scripted_cell_fault(c: usize, a: usize) -> Option<CellFault> {
    let gate = std::env::var("ACIC_FAULT_ATTEMPTS").ok();
    if !cell_fault_armed(supervise_attempt(), gate.as_deref()) {
        return None;
    }
    let knob = |var: &str| {
        std::env::var(var)
            .ok()
            .and_then(|r| parse_cell_knob(&r, c, a))
    };
    if knob("ACIC_PANIC_CELL").is_some() {
        return Some(CellFault::Panic);
    }
    if knob("ACIC_ABORT_CELL").is_some() {
        return Some(CellFault::Abort);
    }
    if let Some(parts) = knob("ACIC_STALL_CELL") {
        let millis = parts.get(2).copied().unwrap_or(60_000);
        return Some(CellFault::Stall(Duration::from_millis(millis)));
    }
    if knob("ACIC_KILL_CELL").is_some() {
        return Some(CellFault::Kill);
    }
    if let Some(parts) = knob("ACIC_EXIT_CELL") {
        let status = parts.get(2).copied().unwrap_or(7) as i32;
        return Some(CellFault::Exit(status));
    }
    None
}

/// FNV-1a 64 over `bytes`, continued from `h`; seed with
/// [`FNV_OFFSET`]. The stores use it for their line/container
/// checksums.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a initial state for [`fnv1a`].
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("acic-fault-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn healthy_write_then_read_round_trips() {
        let path = tdir("rt").join("a.bin");
        write_atomic(&path, b"hello fault layer").unwrap();
        assert_eq!(read(&path).unwrap(), b"hello fault layer");
        assert!(!tmp_path(&path).exists(), "temporary cleaned by rename");
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let plan = FaultPlan::seeded(42, 50);
        let a: Vec<_> = (0..64).map(|op| plan.decide(op)).collect();
        let b: Vec<_> = (0..64).map(|op| plan.decide(op)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(Option::is_some), "50% density injects");
        assert!(a.iter().any(Option::is_none), "50% density also passes");
        assert!(
            (0..64).all(|op| FaultPlan::seeded(42, 0).decide(op).is_none()),
            "zero density never faults"
        );
    }

    #[test]
    fn torn_rename_leaves_old_content() {
        let path = tdir("torn").join("j.bin");
        write_atomic(&path, b"old").unwrap();
        let (res, injected) = with_faults(FaultPlan::script(vec![Some(Fault::TornRename)]), || {
            write_atomic(&path, b"new")
        });
        assert!(res.is_err());
        assert_eq!(injected, 1);
        assert_eq!(std::fs::read(&path).unwrap(), b"old", "rename never ran");
        assert_eq!(std::fs::read(tmp_path(&path)).unwrap(), b"new", "stray tmp");
    }

    #[test]
    fn bit_flip_write_reports_success_with_corrupt_bytes() {
        let path = tdir("flip").join("j.bin");
        let (res, _) = with_faults(
            FaultPlan::script(vec![Some(Fault::BitFlipWrite(13))]),
            || write_atomic(&path, b"payload"),
        );
        assert!(res.is_ok(), "silent corruption reports success");
        assert_ne!(std::fs::read(&path).unwrap(), b"payload");
    }

    #[test]
    fn cell_knob_parsing_matches_only_its_cell() {
        assert_eq!(parse_cell_knob("0:5", 0, 5), Some(vec![0, 5]));
        assert_eq!(parse_cell_knob("0:5:30000", 0, 5), Some(vec![0, 5, 30000]));
        assert_eq!(parse_cell_knob("0:5", 0, 4), None, "other cell");
        assert_eq!(parse_cell_knob("0:5", 1, 5), None, "other config");
        assert_eq!(parse_cell_knob("garbage", 0, 0), None);
        assert_eq!(parse_cell_knob("3", 3, 0), None, "needs both coordinates");
    }

    #[test]
    fn fault_attempt_gate_scripts_transient_failures() {
        // Unset gate: deterministic — every attempt faults.
        assert!(cell_fault_armed(0, None));
        assert!(cell_fault_armed(5, None));
        // Gate of 1: transient — only attempt 0 faults, the retry
        // runs clean.
        assert!(cell_fault_armed(0, Some("1")));
        assert!(!cell_fault_armed(1, Some("1")));
        assert!(cell_fault_armed(1, Some("2")));
        assert!(!cell_fault_armed(2, Some("2")));
        // Garbage gate falls back to deterministic.
        assert!(cell_fault_armed(3, Some("always")));
    }

    #[test]
    fn injector_is_scoped_and_restored_on_panic() {
        let path = tdir("scope").join("x.bin");
        let caught = std::panic::catch_unwind(|| {
            with_faults(FaultPlan::script(vec![Some(Fault::WriteEio)]), || {
                panic!("boom")
            })
        });
        assert!(caught.is_err());
        // The injector from the panicked scope must not leak here.
        write_atomic(&path, b"fine").unwrap();
        assert_eq!(read(&path).unwrap(), b"fine");
    }
}

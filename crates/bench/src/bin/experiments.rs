//! Runs every experiment in sequence (the data behind EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p acic-bench --bin experiments              # all
//! cargo run --release -p acic-bench --bin experiments --list      # names only
//! cargo run --release -p acic-bench --bin experiments --only fig13_admit_rate
//! cargo run --release -p acic-bench --bin experiments --smoke     # tiny grid, all figures
//! cargo run --release -p acic-bench --bin experiments fig1        # substring filter
//! cargo run --release -p acic-bench --bin experiments --bench-delta  # perf vs baseline
//! ```
//!
//! `--only` matches one figure by exact name (and fails loudly on a
//! typo, unlike the substring filter); `--list` prints the runnable
//! names without simulating anything; `--smoke` runs every registered
//! figure on a tiny grid (50 k instructions per cell, honoring an
//! explicit `ACIC_EXP_INSTRUCTIONS` if smaller) so the figure wiring
//! is exercisable in seconds — CI runs exactly this.
//!
//! `--bench-delta` skips the figures entirely: it re-measures the
//! committed `BENCH_baseline.json` throughput cells and prints a JSON
//! report of percentage deltas, exiting non-zero on a missing/
//! malformed baseline or a non-finite delta. Combined with `--smoke`
//! it shrinks the budget to a CI-sized tripwire (deltas then are
//! noise; the job checks the harness, not the numbers).
//!
//! Record/replay:
//!
//! ```text
//! cargo run --release -p acic-bench --bin experiments -- --record-traces traces/ fig11
//! cargo run --release -p acic-bench --bin experiments -- --traces traces/ fig11
//! cargo run --release -p acic-bench --bin experiments -- --trace-smoke
//! ```
//!
//! `--record-traces <dir>` freezes every workload the selected
//! figures touch into `<dir>/<spec>-<budget>.acictrace` containers;
//! `--traces <dir>` replays those containers instead of re-running
//! the generator (specs with no recorded container fall back to
//! generation with a note) — drop in externally recorded traces under
//! the right key and they become first-class workloads. The two flags
//! are mutually exclusive. `--trace-smoke` runs the record → replay →
//! bit-identity check CI relies on and exits non-zero on the first
//! divergence.

type Experiment = (&'static str, fn() -> String);

fn all_experiments() -> Vec<Experiment> {
    vec![
        ("table1_storage", acic_bench::figures::table1_storage),
        ("table2_config", acic_bench::figures::table2_config),
        ("table3_mpki", acic_bench::figures::table3_mpki),
        ("table4_schemes", acic_bench::figures::table4_schemes),
        ("fig01a_reuse_hist", acic_bench::figures::fig01a_reuse_hist),
        ("fig01b_markov", acic_bench::figures::fig01b_markov),
        (
            "fig03a_ifilter_gap",
            acic_bench::figures::fig03a_ifilter_gap,
        ),
        (
            "fig03b_insert_delta",
            acic_bench::figures::fig03b_insert_delta,
        ),
        (
            "fig06_cshr_lifetime",
            acic_bench::figures::fig06_cshr_lifetime,
        ),
        ("fig10_speedup", acic_bench::figures::fig10_speedup),
        ("fig11_mpki", acic_bench::figures::fig11_mpki),
        ("fig12a_accuracy", acic_bench::figures::fig12a_accuracy),
        ("fig12b_random", acic_bench::figures::fig12b_random),
        ("fig13_admit_rate", acic_bench::figures::fig13_admit_rate),
        (
            "fig14_update_latency",
            acic_bench::figures::fig14_update_latency,
        ),
        ("fig15_sensitivity", acic_bench::figures::fig15_sensitivity),
        (
            "fig16_over_ifilter",
            acic_bench::figures::fig16_over_ifilter,
        ),
        ("fig17_ablation", acic_bench::figures::fig17_ablation),
        ("fig18_19_spec", acic_bench::figures::fig18_19_spec),
        (
            "fig20_21_entangling",
            acic_bench::figures::fig20_21_entangling,
        ),
        ("multi_tenant", acic_bench::figures::multi_tenant),
        ("sampling_error", acic_bench::figures::sampling_error),
        ("energy_summary", acic_bench::figures::energy_summary),
    ]
}

/// Instructions per cell in `--smoke` mode: small enough that the
/// whole figure suite runs in seconds, honoring an explicitly smaller
/// `ACIC_EXP_INSTRUCTIONS`.
const SMOKE_INSTRUCTIONS: u64 = 50_000;

/// Extracts `--flag <value>` from the argument list, returning the
/// value and removing both tokens.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires a directory argument");
        std::process::exit(2);
    }
    args.remove(pos);
    Some(args.remove(pos))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let all = all_experiments();

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &all {
            println!("{name}");
        }
        return;
    }

    if args.iter().any(|a| a == "--trace-smoke") {
        match acic_bench::trace_store::trace_smoke(SMOKE_INSTRUCTIONS) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("trace-smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let record = take_flag_value(&mut args, "--record-traces");
    let replay = take_flag_value(&mut args, "--traces");
    match (record, replay) {
        (Some(_), Some(_)) => {
            eprintln!("--record-traces and --traces are mutually exclusive");
            std::process::exit(2);
        }
        (Some(dir), None) => {
            eprintln!("[recording frozen traces into {dir}]");
            acic_bench::trace_store::configure(acic_bench::trace_store::TraceStoreMode::Record(
                dir.into(),
            ))
            .expect("trace store configured before first use");
        }
        (None, Some(dir)) => {
            eprintln!("[replaying recorded traces from {dir}]");
            acic_bench::trace_store::configure(acic_bench::trace_store::TraceStoreMode::Replay(
                dir.into(),
            ))
            .expect("trace store configured before first use");
        }
        (None, None) => {}
    }

    if args.iter().any(|a| a == "--bench-delta") {
        let smoke = args.iter().any(|a| a == "--smoke");
        match acic_bench::delta::bench_delta(smoke) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("bench-delta failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--smoke") {
        let budget = std::env::var("ACIC_EXP_INSTRUCTIONS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(u64::MAX)
            .min(SMOKE_INSTRUCTIONS);
        // The figures read the budget through the environment; pin it
        // before any simulation starts (single-threaded here, workers
        // only spawn inside figures).
        std::env::set_var("ACIC_EXP_INSTRUCTIONS", budget.to_string());
        eprintln!("[smoke: every figure at {budget} instructions/cell]");
    }

    let selected: Vec<Experiment> = if let Some(pos) = args.iter().position(|a| a == "--only") {
        let Some(wanted) = args.get(pos + 1) else {
            eprintln!("--only requires a figure name (see --list)");
            std::process::exit(2);
        };
        match all.iter().find(|(name, _)| name == wanted) {
            Some(&exp) => vec![exp],
            None => {
                eprintln!("unknown figure '{wanted}'; runnable figures:");
                for (name, _) in &all {
                    eprintln!("  {name}");
                }
                std::process::exit(2);
            }
        }
    } else {
        // Legacy positional substring filter (empty = everything;
        // flags are not filters).
        let filter = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_default();
        all.into_iter()
            .filter(|(name, _)| filter.is_empty() || name.contains(&filter))
            .collect()
    };

    for (name, f) in selected {
        let start = std::time::Instant::now();
        println!("==== {name} ====");
        println!("{}", f());
        eprintln!("[{name} took {:.1}s]", start.elapsed().as_secs_f32());
    }
}

//! Runs every experiment in sequence (the data behind EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p acic-bench --bin experiments              # all
//! cargo run --release -p acic-bench --bin experiments --list      # names only
//! cargo run --release -p acic-bench --bin experiments --only fig13_admit_rate
//! cargo run --release -p acic-bench --bin experiments --smoke     # tiny grid, all figures
//! cargo run --release -p acic-bench --bin experiments fig1        # substring filter
//! cargo run --release -p acic-bench --bin experiments --bench-delta  # perf vs baseline
//! cargo run --release -p acic-bench --bin experiments -- --window-threads 4 fig11_mpki
//! cargo run --release -p acic-bench --bin experiments -- --window-smoke
//! ```
//!
//! `--only` matches one figure by exact name (and fails loudly on a
//! typo, unlike the substring filter); `--list` prints the runnable
//! names without simulating anything; `--smoke` runs every registered
//! figure on a tiny grid (50 k instructions per cell, honoring an
//! explicit `ACIC_EXP_INSTRUCTIONS` if smaller) so the figure wiring
//! is exercisable in seconds — CI runs exactly this.
//!
//! `--window-threads <n>` fans each sampled grid cell's detailed
//! windows across `n` workers (`Engine::run_windowed`) instead of
//! running the serial adaptive engine; grid-level parallelism is
//! divided down so grid × window threads stay within the single
//! `ACIC_BENCH_THREADS` budget. `0` is an explicit "serial engine".
//! The two modes run different sampling structures, so their results
//! journal under different `--results` keys; the worker count itself
//! is not part of the key (windowed output is bit-identical across
//! worker counts). `--window-smoke` runs the 1-worker-vs-2-worker
//! bit-identity check CI relies on and exits non-zero on divergence.
//!
//! `--profile-cell <figure>:<cell-substring>` runs the named figure
//! until the first grid cell whose label (`config <c> '<org>' x spec
//! '<spec>'`) contains the substring, then re-simulates exactly that
//! cell in a tight loop (`ACIC_PROFILE_ITERS` iterations, default 50)
//! with minimal stderr chatter and exits — the shape `perf record` /
//! flamegraph tooling wants, instead of a whole sweep where the
//! interesting cell is a sliver of the profile. It cannot be combined
//! with `--only` (it selects its own figure) or `--supervise` (the
//! profiler must see the simulation in this process).
//!
//! `--bench-delta` skips the figures entirely: it re-measures the
//! committed `BENCH_baseline.json` throughput cells and prints a JSON
//! report of percentage deltas, exiting non-zero on a missing/
//! malformed baseline or a non-finite delta. Combined with `--smoke`
//! it shrinks the budget to a CI-sized tripwire (deltas then are
//! noise; the job checks the harness, not the numbers).
//!
//! Record/replay and resume:
//!
//! ```text
//! cargo run --release -p acic-bench --bin experiments -- --record-traces traces/ fig11
//! cargo run --release -p acic-bench --bin experiments -- --traces traces/ fig11
//! cargo run --release -p acic-bench --bin experiments -- --trace-smoke
//! cargo run --release -p acic-bench --bin experiments -- --results results/ fig11
//! cargo run --release -p acic-bench --bin experiments -- --results-smoke
//! ```
//!
//! `--record-traces <dir>` freezes every workload the selected
//! figures touch into `<dir>/<spec>-<budget>.acictrace` containers;
//! `--traces <dir>` replays those containers instead of re-running
//! the generator (specs whose container is missing or unusable fall
//! back to generation with a note) — drop in externally recorded
//! traces under the right key and they become first-class workloads.
//! The two flags are mutually exclusive. `--trace-smoke` runs the
//! record → replay → bit-identity check CI relies on and exits
//! non-zero on the first divergence.
//!
//! `--results <dir>` journals every finished grid cell into
//! `<dir>/results.jsonl`; an interrupted (or repeated) run replays
//! finished cells from the journal and simulates only the rest, with
//! output bit-identical to an uninterrupted run. `--results-smoke`
//! runs the kill-and-resume round trip CI relies on.
//!
//! Adaptive design-space exploration (DESIGN.md §10):
//!
//! ```text
//! cargo run --release -p acic-bench --bin experiments -- --dse
//! cargo run --release -p acic-bench --bin experiments -- --dse --dse-space space.json \
//!     --dse-report dse.jsonl --results results/
//! cargo run --release -p acic-bench --bin experiments -- --dse-smoke
//! ```
//!
//! `--dse` skips the figures and sweeps a design space through the
//! CI-pruned fidelity ladder: the built-in ~870-cell cache-geometry
//! space by default, or the axes file given with `--dse-space`
//! (`--dse --smoke` sweeps the tiny built-in smoke space over a
//! two-rung ladder instead). `--dse-report <file>` writes the
//! JSON-lines provenance report (per config: pruned-at, refined-to,
//! final confidence intervals); `--results <dir>` makes the sweep
//! resumable per cell. `--dse-smoke` runs the in-process
//! tear-and-resume round trip CI relies on and exits non-zero on the
//! first violated invariant.
//!
//! Failure handling: figures run in keep-going mode — a panicking
//! figure (including a grid with failing cells, reported through the
//! structured [`acic_bench::runner::GridError`]) is recorded, every
//! other selected figure still runs, and the process exits non-zero
//! after printing a failure summary. `--fail-fast` stops at the first
//! failure instead; `--keep-going` is accepted for symmetry (it is
//! the default). `ACIC_CELL_TIMEOUT_SECS=<secs>` arms a soft per-cell
//! watchdog that fails wedged cells instead of hanging the sweep.
//!
//! Process supervision (DESIGN.md §9):
//!
//! ```text
//! cargo run --release -p acic-bench --bin experiments -- --supervise fig11_mpki
//! cargo run --release -p acic-bench --bin experiments -- --supervise \
//!     --crash-reports crash-reports/ --results results/ fig11_mpki
//! cargo run --release -p acic-bench --bin experiments -- --supervise-smoke
//! ```
//!
//! `--supervise` runs every grid/DSE cell in its own child process
//! (the binary self-execs with the hidden `--run-cell <journal-key>`
//! / `--run-cell-out <dir>` flags): with it, the per-cell watchdog
//! becomes a *hard* timeout (the wedged child is SIGKILLed), an
//! `abort()`/OOM/signal death costs one attempt of one cell instead
//! of the campaign, and dead children are retried — transient
//! failures (timeout, signal, spawn failure) up to
//! `ACIC_SUPERVISE_RETRIES` attempts, deterministic ones (panic,
//! `abort()`, non-zero exit) once to confirm — with capped
//! exponential backoff (base `ACIC_SUPERVISE_BACKOFF_MS`) and
//! deterministic seeded jitter. Every retried or failed cell leaves a
//! crash report (exit evidence, stderr tail, retry history) under
//! `--crash-reports <dir>` (default: `<results>/crash-reports`, or
//! `./crash-reports`). Output and `--results` journals are
//! byte-identical to the in-process path; where spawning is
//! unavailable the run degrades to in-process with one warning.
//! `--supervise-smoke` drives the scripted hostile matrix
//! (kill/stall/panic cells) through the supervisor and exits non-zero
//! on the first violated invariant.
//!
//! Exit codes: `0` — success; `1` — one or more figures/cells failed;
//! `2` — usage error. A `--run-cell` child additionally uses `3` —
//! target cell not found in the selected figures, `4` — the child
//! could not journal its result, and `101` — the cell panicked.

use std::panic::{catch_unwind, AssertUnwindSafe};

type Experiment = (&'static str, fn() -> String);

fn all_experiments() -> Vec<Experiment> {
    vec![
        ("table1_storage", acic_bench::figures::table1_storage),
        ("table2_config", acic_bench::figures::table2_config),
        ("table3_mpki", acic_bench::figures::table3_mpki),
        ("table4_schemes", acic_bench::figures::table4_schemes),
        ("fig01a_reuse_hist", acic_bench::figures::fig01a_reuse_hist),
        ("fig01b_markov", acic_bench::figures::fig01b_markov),
        (
            "fig03a_ifilter_gap",
            acic_bench::figures::fig03a_ifilter_gap,
        ),
        (
            "fig03b_insert_delta",
            acic_bench::figures::fig03b_insert_delta,
        ),
        (
            "fig06_cshr_lifetime",
            acic_bench::figures::fig06_cshr_lifetime,
        ),
        ("fig10_speedup", acic_bench::figures::fig10_speedup),
        ("fig11_mpki", acic_bench::figures::fig11_mpki),
        ("fig12a_accuracy", acic_bench::figures::fig12a_accuracy),
        ("fig12b_random", acic_bench::figures::fig12b_random),
        ("fig13_admit_rate", acic_bench::figures::fig13_admit_rate),
        (
            "fig14_update_latency",
            acic_bench::figures::fig14_update_latency,
        ),
        ("fig15_sensitivity", acic_bench::figures::fig15_sensitivity),
        (
            "fig16_over_ifilter",
            acic_bench::figures::fig16_over_ifilter,
        ),
        ("fig17_ablation", acic_bench::figures::fig17_ablation),
        ("fig18_19_spec", acic_bench::figures::fig18_19_spec),
        (
            "fig20_21_entangling",
            acic_bench::figures::fig20_21_entangling,
        ),
        ("multi_tenant", acic_bench::figures::multi_tenant),
        ("sampling_error", acic_bench::figures::sampling_error),
        ("energy_summary", acic_bench::figures::energy_summary),
    ]
}

/// Instructions per cell in `--smoke` mode: small enough that the
/// whole figure suite runs in seconds, honoring an explicitly smaller
/// `ACIC_EXP_INSTRUCTIONS`.
const SMOKE_INSTRUCTIONS: u64 = 50_000;

/// Extracts `--flag <value>` from the argument list, returning the
/// value and removing both tokens. A flag with no value — at the end
/// of the line, or followed by another `--` option — is an error (it
/// must never leak through to the figure-name substring filter).
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(pos);
    match args.get(pos) {
        None => Err(format!("{flag} requires a value")),
        Some(next) if next.starts_with("--") => Err(format!(
            "{flag} requires a value, but the next argument is the option '{next}'"
        )),
        Some(_) => Ok(Some(args.remove(pos))),
    }
}

/// Removes a boolean `--switch`, reporting whether it was present.
fn take_switch(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

/// Parsed command line (see the module docs for flag semantics).
#[derive(Debug, Default, PartialEq)]
struct Cli {
    list: bool,
    trace_smoke: bool,
    results_smoke: bool,
    window_smoke: bool,
    dse_smoke: bool,
    supervise_smoke: bool,
    dse: bool,
    bench_delta: bool,
    smoke: bool,
    fail_fast: bool,
    supervise: bool,
    record: Option<String>,
    replay: Option<String>,
    results: Option<String>,
    only: Option<String>,
    dse_space: Option<String>,
    dse_report: Option<String>,
    crash_reports: Option<String>,
    run_cell: Option<String>,
    run_cell_out: Option<String>,
    window_threads: Option<usize>,
    /// `--profile-cell <figure>:<cell-substring>`: run one figure
    /// until the first grid cell whose label contains the substring,
    /// then re-simulate that cell in a tight loop for profilers.
    profile_cell: Option<(String, String)>,
    filter: String,
}

fn parse_cli(mut args: Vec<String>) -> Result<Cli, String> {
    let record = take_flag_value(&mut args, "--record-traces")?;
    let replay = take_flag_value(&mut args, "--traces")?;
    let results = take_flag_value(&mut args, "--results")?;
    let only = take_flag_value(&mut args, "--only")?;
    let dse_space = take_flag_value(&mut args, "--dse-space")?;
    let dse_report = take_flag_value(&mut args, "--dse-report")?;
    let crash_reports = take_flag_value(&mut args, "--crash-reports")?;
    let run_cell = take_flag_value(&mut args, "--run-cell")?;
    let run_cell_out = take_flag_value(&mut args, "--run-cell-out")?;
    let window_threads = match take_flag_value(&mut args, "--window-threads")? {
        None => None,
        Some(raw) => Some(raw.parse::<usize>().map_err(|_| {
            format!("--window-threads requires a non-negative integer, got '{raw}'")
        })?),
    };
    let profile_cell = match take_flag_value(&mut args, "--profile-cell")? {
        None => None,
        Some(raw) => match raw.split_once(':') {
            Some((fig, cell)) if !fig.is_empty() && !cell.is_empty() => {
                Some((fig.to_string(), cell.to_string()))
            }
            _ => {
                return Err(format!(
                    "--profile-cell requires '<figure>:<cell-substring>', got '{raw}'"
                ))
            }
        },
    };
    if record.is_some() && replay.is_some() {
        return Err("--record-traces and --traces are mutually exclusive".into());
    }
    let dse = take_switch(&mut args, "--dse");
    if (dse_space.is_some() || dse_report.is_some()) && !dse {
        return Err("--dse-space/--dse-report only make sense with --dse".into());
    }
    let supervise = take_switch(&mut args, "--supervise");
    if crash_reports.is_some() && !supervise {
        return Err("--crash-reports only makes sense with --supervise".into());
    }
    if profile_cell.is_some() && (supervise || only.is_some()) {
        return Err(
            "--profile-cell selects its own figure and runs in-process; \
             it cannot be combined with --only or --supervise"
                .into(),
        );
    }
    if run_cell.is_some() != run_cell_out.is_some() {
        return Err("--run-cell and --run-cell-out must be given together".into());
    }
    let cli = Cli {
        list: take_switch(&mut args, "--list"),
        trace_smoke: take_switch(&mut args, "--trace-smoke"),
        results_smoke: take_switch(&mut args, "--results-smoke"),
        window_smoke: take_switch(&mut args, "--window-smoke"),
        dse_smoke: take_switch(&mut args, "--dse-smoke"),
        supervise_smoke: take_switch(&mut args, "--supervise-smoke"),
        dse,
        bench_delta: take_switch(&mut args, "--bench-delta"),
        smoke: take_switch(&mut args, "--smoke"),
        fail_fast: take_switch(&mut args, "--fail-fast"),
        supervise,
        record,
        replay,
        results,
        only,
        dse_space,
        dse_report,
        crash_reports,
        run_cell,
        run_cell_out,
        window_threads,
        profile_cell,
        filter: String::new(),
    };
    // --keep-going is the default; accept and discard it.
    take_switch(&mut args, "--keep-going");
    if let Some(unknown) = args.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option '{unknown}'"));
    }
    let filter = args.first().cloned().unwrap_or_default();
    Ok(Cli { filter, ..cli })
}

/// The `--dse` path: resolve the space (axes file, or the built-in
/// geometry sweep — the tiny smoke space under `--smoke`), sweep it
/// through the fidelity ladder, optionally write the JSON-lines
/// provenance report, and render a human summary.
fn run_dse_cli(cli: &Cli) -> Result<String, String> {
    use acic_bench::dse;
    use acic_sim::SampleSchedule;

    let space = match &cli.dse_space {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read space file '{path}': {e}"))?;
            dse::parse_space(&text)?
        }
        None if cli.smoke => dse::smoke_space(),
        None => dse::geometry_space(),
    };
    let opts = if cli.smoke {
        dse::DseOptions {
            ladder: dse::Ladder::new(120_000, 2, SampleSchedule::Full),
            ..dse::DseOptions::default()
        }
    } else {
        dse::DseOptions::default()
    };
    eprintln!(
        "[dse: space '{}', {} configs x {} specs, {} rungs to {} instructions/cell]",
        space.name,
        space.configs.len(),
        space.specs.len(),
        opts.ladder.rungs.len(),
        opts.ladder.full_budget()
    );
    let start = std::time::Instant::now();
    let run = dse::run_dse(&space, &opts)?;
    let wall = start.elapsed().as_secs_f64();
    if let Some(path) = &cli.dse_report {
        std::fs::write(path, run.jsonl())
            .map_err(|e| format!("cannot write report '{path}': {e}"))?;
        eprintln!("[dse: provenance report written to {path}]");
    }

    let mut out = String::new();
    for s in &run.rungs {
        out.push_str(&format!(
            "rung {}: budget {}, {} configs ({} cells replayed, {} computed), \
             pruned {}, settled {}, alive {}\n",
            s.rung, s.budget, s.active, s.replayed, s.computed, s.pruned, s.settled, s.alive_after
        ));
    }
    let survivors = run.survivors();
    let frontier = run.final_frontier();
    out.push_str(&format!(
        "survivors: {} of {} configs ({} on the final frontier) in {wall:.1}s\n",
        survivors.len(),
        run.outcomes.len(),
        frontier.len()
    ));
    for &i in &frontier {
        let o = &run.outcomes[i];
        let per_spec: Vec<String> = o
            .reports
            .iter()
            .map(|r| format!("{}: ipc {:.3}, mpki {:.2}", r.app, r.ipc(), r.l1i_mpki()))
            .collect();
        out.push_str(&format!("  {} — {}\n", o.label, per_spec.join("; ")));
    }
    Ok(out)
}

fn main() {
    // The supervisor re-execs this argv (minus supervision flags) for
    // each child, so keep the raw form around.
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(raw_args.clone()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let (Some(key), Some(out_dir)) = (&cli.run_cell, &cli.run_cell_out) {
        // Child mode: this process runs exactly one cell and journals
        // it to the private per-attempt store. The figure/DSE code
        // below detects the target by journal key and exits through
        // `run_child_cell`; falling out the bottom means the key
        // matched nothing (exit 3).
        acic_bench::supervise::set_child_target(key.clone(), out_dir.into());
    }
    let all = all_experiments();

    if cli.list {
        for (name, _) in &all {
            println!("{name}");
        }
        return;
    }

    // Failed cells and figures are reported structurally at the end
    // of the run; keep each panic to one stderr line instead of the
    // default multi-line hook output.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        let loc = info
            .location()
            .map(|l| format!(" at {}:{}", l.file(), l.line()))
            .unwrap_or_default();
        eprintln!("[panic{loc}] {}", msg.trim_end());
    }));

    if cli.trace_smoke {
        match acic_bench::trace_store::trace_smoke(SMOKE_INSTRUCTIONS) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("trace-smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cli.results_smoke {
        match acic_bench::result_store::results_smoke() {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("results-smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cli.window_smoke {
        match acic_bench::window_smoke::window_smoke() {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("window-smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cli.dse_smoke {
        match acic_bench::dse::dse_smoke() {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("dse-smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cli.supervise_smoke {
        match acic_bench::supervise::supervise_smoke() {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("supervise-smoke failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(n) = cli.window_threads {
        // The runner reads this through the environment
        // (acic_bench::runner::window_threads); pin it before any
        // figure spawns workers. 0 is an explicit "serial engine".
        std::env::set_var("ACIC_WINDOW_THREADS", n.to_string());
        if n >= 1 {
            eprintln!("[window-parallel: {n} workers per sampled cell]");
        }
    }

    match (&cli.record, &cli.replay) {
        (Some(dir), None) => {
            eprintln!("[recording frozen traces into {dir}]");
            acic_bench::trace_store::configure(acic_bench::trace_store::TraceStoreMode::Record(
                dir.into(),
            ))
            .expect("trace store configured before first use");
        }
        (None, Some(dir)) => {
            eprintln!("[replaying recorded traces from {dir}]");
            acic_bench::trace_store::configure(acic_bench::trace_store::TraceStoreMode::Replay(
                dir.into(),
            ))
            .expect("trace store configured before first use");
        }
        _ => {}
    }

    if let Some(dir) = &cli.results {
        eprintln!("[resumable results in {dir}]");
        if let Err(e) = acic_bench::result_store::configure(std::path::Path::new(dir)) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }

    if cli.supervise {
        let crash_dir = cli
            .crash_reports
            .clone()
            .or_else(|| cli.results.as_ref().map(|r| format!("{r}/crash-reports")))
            .unwrap_or_else(|| "crash-reports".into());
        match acic_bench::supervise::configure(std::path::Path::new(&crash_dir), &raw_args) {
            Ok(ctx) => eprintln!(
                "[supervise: one child process per cell, crash reports in {}]",
                ctx.crash_dir.display()
            ),
            Err(e) => eprintln!("[warning: supervision unavailable ({e}); running in-process]"),
        }
    }

    if cli.dse {
        match run_dse_cli(&cli) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("dse failed: {e}");
                std::process::exit(1);
            }
        }
        if acic_bench::supervise::child_target().is_some() {
            // A --run-cell child that got here swept the whole ladder
            // without meeting its target key.
            eprintln!("run-cell target not found in the DSE sweep");
            std::process::exit(3);
        }
        return;
    }

    if cli.bench_delta {
        match acic_bench::delta::bench_delta(cli.smoke) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("bench-delta failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cli.smoke {
        let budget = std::env::var("ACIC_EXP_INSTRUCTIONS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(u64::MAX)
            .min(SMOKE_INSTRUCTIONS);
        // The figures read the budget through the environment; pin it
        // before any simulation starts (single-threaded here, workers
        // only spawn inside figures).
        std::env::set_var("ACIC_EXP_INSTRUCTIONS", budget.to_string());
        eprintln!("[smoke: every figure at {budget} instructions/cell]");
    }

    let selected: Vec<Experiment> = if let Some((fig, cell)) = &cli.profile_cell {
        // Arm the runner-side interception before the figure runs:
        // the first grid cell whose label contains `cell` re-simulates
        // in a tight loop and the process exits from inside it.
        acic_bench::runner::set_profile_cell(cell.clone());
        eprintln!("[profile-cell: figure '{fig}', first cell whose label contains '{cell}']");
        match all.iter().find(|(name, _)| name == fig) {
            Some(&exp) => vec![exp],
            None => {
                eprintln!("unknown figure '{fig}' in --profile-cell; runnable figures:");
                for (name, _) in &all {
                    eprintln!("  {name}");
                }
                std::process::exit(2);
            }
        }
    } else if let Some(wanted) = &cli.only {
        match all.iter().find(|(name, _)| name == wanted) {
            Some(&exp) => vec![exp],
            None => {
                eprintln!("unknown figure '{wanted}'; runnable figures:");
                for (name, _) in &all {
                    eprintln!("  {name}");
                }
                std::process::exit(2);
            }
        }
    } else {
        // Legacy positional substring filter (empty = everything).
        all.into_iter()
            .filter(|(name, _)| cli.filter.is_empty() || name.contains(&cli.filter))
            .collect()
    };

    // Keep-going figure loop: one failing figure must not cost the
    // rest of the sweep (its grid cells already journaled to
    // --results are kept either way).
    let mut failures: Vec<(&'static str, String)> = Vec::new();
    for (name, f) in selected {
        let start = std::time::Instant::now();
        println!("==== {name} ====");
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(text) => {
                println!("{text}");
                eprintln!("[{name} took {:.1}s]", start.elapsed().as_secs_f32());
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                eprintln!(
                    "[{name} FAILED after {:.1}s]",
                    start.elapsed().as_secs_f32()
                );
                failures.push((name, msg));
                if cli.fail_fast {
                    break;
                }
            }
        }
    }
    if acic_bench::supervise::child_target().is_some() {
        // A --run-cell child exits through `run_child_cell` the moment
        // its grid reaches the target; completing the figure loop
        // means the key matched no cell of the selected figures.
        eprintln!("run-cell target not found in the selected figures");
        std::process::exit(3);
    }
    if !failures.is_empty() {
        eprintln!("==== failure summary ====");
        eprintln!("{} figure(s) failed:", failures.len());
        for (name, msg) in &failures {
            eprintln!("--- {name} ---");
            for line in msg.trim_end().lines() {
                eprintln!("  {line}");
            }
        }
        std::process::exit(1);
    }
    if cli.profile_cell.is_some() {
        // `run_profile_cell` exits the process on a match; completing
        // the figure loop means no cell label contained the substring.
        eprintln!("profile-cell target matched no cell of the selected figure");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_values_are_extracted_and_removed() {
        let cli = parse_cli(argv(&["--record-traces", "td", "fig1"])).unwrap();
        assert_eq!(cli.record.as_deref(), Some("td"));
        assert_eq!(cli.filter, "fig1");
    }

    #[test]
    fn trailing_flag_without_value_is_an_error_not_a_filter() {
        let err = parse_cli(argv(&["--record-traces"])).unwrap_err();
        assert!(err.contains("--record-traces requires a value"), "{err}");
        let err = parse_cli(argv(&["fig1", "--results"])).unwrap_err();
        assert!(err.contains("--results requires a value"), "{err}");
    }

    #[test]
    fn flag_consuming_another_option_is_an_error() {
        // Historically `--record-traces --smoke` silently recorded
        // into a directory literally named `--smoke`.
        let err = parse_cli(argv(&["--record-traces", "--smoke"])).unwrap_err();
        assert!(err.contains("the option '--smoke'"), "{err}");
    }

    #[test]
    fn record_and_replay_are_mutually_exclusive() {
        let err = parse_cli(argv(&["--record-traces", "a", "--traces", "b"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn unknown_options_are_rejected_not_ignored() {
        let err = parse_cli(argv(&["--keep-gonig"])).unwrap_err();
        assert!(err.contains("unknown option '--keep-gonig'"), "{err}");
    }

    #[test]
    fn switches_and_filters_parse_together() {
        let cli = parse_cli(argv(&[
            "--smoke",
            "--fail-fast",
            "--keep-going",
            "--results",
            "rd",
            "table",
        ]))
        .unwrap();
        assert!(cli.smoke && cli.fail_fast);
        assert_eq!(cli.results.as_deref(), Some("rd"));
        assert_eq!(cli.filter, "table");
        assert!(!cli.list && !cli.bench_delta);
    }

    #[test]
    fn window_threads_parse() {
        let cli = parse_cli(argv(&["--window-threads", "4", "fig11"])).unwrap();
        assert_eq!(cli.window_threads, Some(4));
        assert_eq!(cli.filter, "fig11");
        let cli = parse_cli(argv(&["--window-threads", "0"])).unwrap();
        assert_eq!(cli.window_threads, Some(0), "explicit serial");
        assert_eq!(
            parse_cli(argv(&[])).unwrap().window_threads,
            None,
            "absent by default"
        );
        let err = parse_cli(argv(&["--window-threads", "many"])).unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
        let err = parse_cli(argv(&["--window-threads"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err = parse_cli(argv(&["--window-threads", "--smoke"])).unwrap_err();
        assert!(err.contains("the option '--smoke'"), "{err}");
    }

    #[test]
    fn window_smoke_switch_parses() {
        let cli = parse_cli(argv(&["--window-smoke"])).unwrap();
        assert!(cli.window_smoke);
        assert!(!parse_cli(argv(&["--smoke"])).unwrap().window_smoke);
    }

    #[test]
    fn dse_flags_parse() {
        let cli = parse_cli(argv(&[
            "--dse",
            "--dse-space",
            "space.json",
            "--dse-report",
            "out.jsonl",
        ]))
        .unwrap();
        assert!(cli.dse);
        assert_eq!(cli.dse_space.as_deref(), Some("space.json"));
        assert_eq!(cli.dse_report.as_deref(), Some("out.jsonl"));

        let cli = parse_cli(argv(&["--dse", "--smoke"])).unwrap();
        assert!(cli.dse && cli.smoke && cli.dse_space.is_none());

        let cli = parse_cli(argv(&["--dse-smoke"])).unwrap();
        assert!(cli.dse_smoke && !cli.dse);

        let err = parse_cli(argv(&["--dse-space", "s.json"])).unwrap_err();
        assert!(err.contains("only make sense with --dse"), "{err}");
        let err = parse_cli(argv(&["--dse-report", "r.jsonl"])).unwrap_err();
        assert!(err.contains("only make sense with --dse"), "{err}");
        let err = parse_cli(argv(&["--dse", "--dse-space"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn supervise_flags_parse() {
        let cli = parse_cli(argv(&["--supervise", "--crash-reports", "cr", "fig11"])).unwrap();
        assert!(cli.supervise);
        assert_eq!(cli.crash_reports.as_deref(), Some("cr"));
        assert_eq!(cli.filter, "fig11");

        let cli = parse_cli(argv(&["--supervise-smoke"])).unwrap();
        assert!(cli.supervise_smoke && !cli.supervise);

        let err = parse_cli(argv(&["--crash-reports", "cr"])).unwrap_err();
        assert!(err.contains("only makes sense with --supervise"), "{err}");
        let err = parse_cli(argv(&["--supervise", "--crash-reports"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn run_cell_flags_must_pair_up() {
        let cli = parse_cli(argv(&["--run-cell", "k", "--run-cell-out", "d"])).unwrap();
        assert_eq!(cli.run_cell.as_deref(), Some("k"));
        assert_eq!(cli.run_cell_out.as_deref(), Some("d"));

        let err = parse_cli(argv(&["--run-cell", "k"])).unwrap_err();
        assert!(err.contains("must be given together"), "{err}");
        let err = parse_cli(argv(&["--run-cell-out", "d"])).unwrap_err();
        assert!(err.contains("must be given together"), "{err}");
    }

    #[test]
    fn profile_cell_parses_figure_and_substring() {
        let cli = parse_cli(argv(&["--profile-cell", "fig11_mpki:ACIC"])).unwrap();
        assert_eq!(cli.profile_cell, Some(("fig11_mpki".into(), "ACIC".into())));

        let err = parse_cli(argv(&["--profile-cell", "fig11_mpki"])).unwrap_err();
        assert!(err.contains("<figure>:<cell-substring>"), "{err}");
        let err = parse_cli(argv(&["--profile-cell", ":ACIC"])).unwrap_err();
        assert!(err.contains("<figure>:<cell-substring>"), "{err}");
        let err = parse_cli(argv(&["--profile-cell", "fig11_mpki:"])).unwrap_err();
        assert!(err.contains("<figure>:<cell-substring>"), "{err}");
        let err = parse_cli(argv(&["--profile-cell"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");

        let err = parse_cli(argv(&["--profile-cell", "f:c", "--only", "fig11_mpki"])).unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
        let err = parse_cli(argv(&["--profile-cell", "f:c", "--supervise"])).unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
    }

    #[test]
    fn only_takes_an_exact_name() {
        let cli = parse_cli(argv(&["--only", "fig11_mpki"])).unwrap();
        assert_eq!(cli.only.as_deref(), Some("fig11_mpki"));
        assert!(parse_cli(argv(&["--only"])).is_err());
    }

    #[test]
    fn every_registered_name_is_unique() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}

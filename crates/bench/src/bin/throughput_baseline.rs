//! Writes the machine-readable simulator-throughput baseline
//! (`BENCH_baseline.json`) consumed by future performance PRs.
//!
//! Run: `cargo run --release -p acic-bench --bin throughput_baseline`
//! Scale with `ACIC_BASELINE_INSTRUCTIONS` (default 1 M).

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let json = acic_bench::baseline::measure_baseline();
    std::fs::write(&path, &json).expect("write baseline file");
    println!("{json}");
    eprintln!("wrote {path}");
}

//! Writes the machine-readable simulator-throughput baseline
//! (`BENCH_baseline.json`) consumed by future performance PRs.
//!
//! Run: `cargo run --release -p acic-bench --bin throughput_baseline`
//! Scale with `ACIC_BASELINE_INSTRUCTIONS` (default 1 M).

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    // The `vs_prior` reference: an explicit `ACIC_BASELINE_PATH` (the
    // same override the bench-delta harness honors), else the file
    // being regenerated — so rewriting a baseline in place records
    // its own trajectory.
    let prior_path = std::env::var("ACIC_BASELINE_PATH").unwrap_or_else(|_| path.clone());
    let prior = std::fs::read_to_string(&prior_path).ok();
    let json = acic_bench::baseline::measure_baseline_with_prior(prior.as_deref());
    std::fs::write(&path, &json).expect("write baseline file");
    println!("{json}");
    eprintln!("wrote {path} (vs_prior reference: {prior_path})");
}

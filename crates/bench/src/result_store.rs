//! Resumable on-disk store for finished experiment cells.
//!
//! `experiments --results <dir>` persists every computed
//! [`SimReport`] into a checksummed JSON-lines journal
//! (`results.jsonl`) keyed by [`cell_key`] — the cell's full identity
//! `(spec store_key × config hash)`, where the store key embeds the
//! instruction budget and the config hash covers the organization,
//! prefetcher, fidelity schedule, and every other [`SimConfig`]
//! field. A repeated or interrupted sweep replays finished cells from
//! disk and simulates only the rest, exactly like the trace store
//! replays frozen traces ([`crate::trace_store`]); the ROADMAP's DSE
//! driver sits on this store.
//!
//! **Journal format** (`acic-results/v2`). Line 1 is the schema
//! header `{"schema":"acic-results/v2"}`; every further line is one
//! cell: `{"key":K,"rung":G,"crc":C,"report":R}` where `G` is the
//! cell's fidelity rung on the DSE ladder (`null` for plain grid
//! cells, a decimal-string rung index for [`dse_cell_key`] cells) and
//! `C` is the FNV-1a 64 hash (16 hex digits) of `K`, a zero byte, the
//! serialized `G`, a zero byte, and the serialized `R`. v1 journals
//! (no rung field, two-part CRC) are rejected by the schema header —
//! loudly, never misread as v2.
//! Reports serialize every `u64` as a decimal *string* (the workspace
//! JSON reader models numbers as `f64`, which is lossy above 2^53)
//! and every `f64` through its shortest round-trip form (non-finite
//! values as the strings `"NaN"`/`"inf"`/`"-inf"`), so decoding is
//! bit-exact — pinned by the round-trip tests below.
//!
//! **Failure model.** The journal is rewritten whole through
//! [`crate::fault::write_atomic`] (sibling tmp + fsync + rename +
//! directory fsync) on every [`ResultStore::put`], so a crash leaves
//! either the previous journal or the new one, never a tear at the
//! final path. Reading drops any line that fails to parse or
//! checksum — loudly, on stderr — and the affected cells simply
//! recompute (deterministically, so resume can lose wall-clock but
//! never correctness). A failed journal write keeps the entry in
//! memory, warns, and self-heals on the next successful put. The
//! fault-injection proptests (`tests/fault_injection.rs`) pin the
//! store invariant: loud failure or bit-identical success, never
//! silent corruption, and a resumed sweep never loses or
//! double-counts a completed cell.
//!
//! **Single-writer contract under `--supervise`.** The shared journal
//! has exactly one writer: the parent. A `--run-cell` child journals
//! its one cell into a *private* per-attempt store
//! ([`crate::supervise::run_child_cell`]) that the parent re-reads
//! after the child exits and then re-puts into the shared journal
//! itself — children never append to (or even open for write) the
//! shared `results.jsonl`, so concurrent cell completion cannot race
//! the whole-file atomic rewrite, and the journal bytes stay
//! independent of completion order (the `BTreeMap` rewrite sorts by
//! key).

use crate::json::Json;
use acic_cache::CacheStats;
use acic_core::{AcicStats, CshrStats};
use acic_sim::branch::btb::BtbStats;
use acic_sim::branch::tage::TageStats;
use acic_sim::{BranchStats, PrefetchStats, SampledStats, SimConfig, SimReport};
use acic_types::stats::Ratio;
use acic_workloads::WorkloadSpec;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Journal schema tag; bump on any encoding change so an old journal
/// is rejected loudly instead of decoded wrong. v2 added the
/// fidelity-rung field (and folded it into the line CRC).
pub const SCHEMA: &str = "acic-results/v2";

const JOURNAL_NAME: &str = "results.jsonl";

/// Why a result store could not be opened. Once open, the store
/// never fails a sweep: read problems degrade to recomputation and
/// write problems degrade to in-memory retention, both with stderr
/// warnings.
#[derive(Debug)]
pub enum ResultStoreError {
    /// Creating the store directory or reading the journal failed.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying filesystem error.
        source: std::io::Error,
    },
    /// The journal's schema header is missing or names a different
    /// version — refusing to guess at an incompatible encoding.
    Schema {
        /// Journal path.
        path: PathBuf,
        /// What the header actually said.
        found: String,
    },
}

impl std::fmt::Display for ResultStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultStoreError::Io { path, source } => {
                write!(f, "--results: {}: {source}", path.display())
            }
            ResultStoreError::Schema { path, found } => write!(
                f,
                "--results: {}: journal schema {found:?} is not {SCHEMA:?}; \
                 refusing to reuse an incompatible journal",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ResultStoreError {}

/// One journal entry: the report plus the fidelity rung it was
/// computed at (`None` for plain grid cells).
#[derive(Clone, Debug)]
struct Entry {
    rung: Option<u32>,
    report: SimReport,
}

/// The resumable cell store: an in-memory map mirrored to the
/// on-disk journal on every insert.
#[derive(Debug)]
pub struct ResultStore {
    journal: PathBuf,
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl ResultStore {
    /// Opens (or creates) the store under `dir`, loading every intact
    /// journal entry. Corrupt or torn lines are dropped with a
    /// warning — their cells recompute.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created, the journal cannot
    /// be read (existing but unreadable), or the journal belongs to a
    /// different schema version.
    pub fn open(dir: &Path) -> Result<ResultStore, ResultStoreError> {
        std::fs::create_dir_all(dir).map_err(|source| ResultStoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let journal = dir.join(JOURNAL_NAME);
        let mut entries = BTreeMap::new();
        if journal.exists() {
            let bytes = crate::fault::read(&journal).map_err(|source| ResultStoreError::Io {
                path: journal.clone(),
                source,
            })?;
            let text = String::from_utf8_lossy(&bytes);
            let mut lines = text.lines().enumerate();
            match lines.next() {
                None => {} // empty journal: treat as fresh
                Some((_, header)) => {
                    let found = Json::parse(header)
                        .ok()
                        .and_then(|h| h.get("schema").and_then(Json::str_val).map(String::from))
                        .unwrap_or_else(|| header.chars().take(64).collect());
                    if found != SCHEMA {
                        return Err(ResultStoreError::Schema {
                            path: journal,
                            found,
                        });
                    }
                }
            }
            for (lineno, line) in lines {
                if line.trim().is_empty() {
                    continue;
                }
                match decode_entry(line) {
                    Ok((key, entry)) => {
                        entries.insert(key, entry);
                    }
                    Err(e) => eprintln!(
                        "[results: dropping corrupt journal line {} ({e}); \
                         the cell will recompute]",
                        lineno + 1
                    ),
                }
            }
        }
        Ok(ResultStore {
            journal,
            entries: Mutex::new(entries),
        })
    }

    /// The journal path (diagnostics and tests).
    pub fn journal_path(&self) -> &Path {
        &self.journal
    }

    /// Finished cells currently known (on disk or retained in
    /// memory after a failed write).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether no finished cells are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored report for a cell, if that cell already finished.
    pub fn get(&self, key: &str) -> Option<SimReport> {
        self.entries
            .lock()
            .unwrap()
            .get(key)
            .map(|e| e.report.clone())
    }

    /// The stored report plus its fidelity rung (`None` for plain
    /// grid cells), if that cell already finished.
    pub fn get_with_rung(&self, key: &str) -> Option<(Option<u32>, SimReport)> {
        self.entries
            .lock()
            .unwrap()
            .get(key)
            .map(|e| (e.rung, e.report.clone()))
    }

    /// Records a finished cell and rewrites the journal atomically.
    /// On a write failure the entry is kept in memory (the warning is
    /// the caller's to print — the sweep itself must go on) and the
    /// next successful put persists it too.
    ///
    /// # Errors
    ///
    /// Propagates the journal write failure.
    pub fn put(&self, key: &str, report: &SimReport) -> std::io::Result<()> {
        self.put_entry(key, None, report)
    }

    /// [`ResultStore::put`] for a DSE-ladder cell, stamping the
    /// fidelity rung the report was computed at. The rung rides in
    /// the journal line (CRC-covered) so a resumed sweep knows not
    /// just *that* a cell finished but *at which fidelity*.
    ///
    /// # Errors
    ///
    /// Propagates the journal write failure.
    pub fn put_rung(&self, key: &str, rung: u32, report: &SimReport) -> std::io::Result<()> {
        self.put_entry(key, Some(rung), report)
    }

    fn put_entry(&self, key: &str, rung: Option<u32>, report: &SimReport) -> std::io::Result<()> {
        let mut entries = self.entries.lock().unwrap();
        entries.insert(
            key.to_string(),
            Entry {
                rung,
                report: report.clone(),
            },
        );
        let mut out = String::new();
        out.push_str("{\"schema\":\"");
        out.push_str(SCHEMA);
        out.push_str("\"}\n");
        for (k, e) in entries.iter() {
            out.push_str(&encode_entry(k, e.rung, &e.report));
            out.push('\n');
        }
        crate::fault::write_atomic(&self.journal, out.as_bytes())
    }
}

static STORE: OnceLock<Arc<ResultStore>> = OnceLock::new();

/// Opens the process-global store (the `--results <dir>` singleton
/// the [`crate::Runner`] constructors default to). Call at most once,
/// before any simulation.
///
/// # Errors
///
/// Propagates [`ResultStore::open`] failures; a second call returns
/// an IO error of kind [`std::io::ErrorKind::AlreadyExists`].
pub fn configure(dir: &Path) -> Result<(), ResultStoreError> {
    let store = Arc::new(ResultStore::open(dir)?);
    STORE.set(store).map_err(|_| ResultStoreError::Io {
        path: dir.to_path_buf(),
        source: std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "result store already configured",
        ),
    })
}

/// The process-global store, when `--results` configured one.
pub fn active() -> Option<Arc<ResultStore>> {
    STORE.get().cloned()
}

/// The journal key of one grid cell: the spec's on-disk identity
/// (which embeds the instruction budget) crossed with a hash of the
/// *entire* simulator configuration — organization, prefetcher,
/// fidelity schedule, oracle flags — so no two cells that could
/// produce different reports ever share a key. The config hash goes
/// through `Debug` formatting; [`SCHEMA`] guards against the
/// rendering drifting across versions.
pub fn cell_key(spec: &WorkloadSpec, instructions: u64, cfg: &SimConfig) -> String {
    let cfg_hash = crate::fault::fnv1a(crate::fault::FNV_OFFSET, format!("{cfg:?}").as_bytes());
    format!("{}-c{cfg_hash:016x}", spec.store_key(instructions))
}

/// [`cell_key`] for cells simulated through the window-parallel
/// engine (`Engine::run_windowed`): the serial key plus a `-w` mode
/// suffix, because windowed execution runs a *different* sampling
/// structure (independent mirror-replayed windows) than the serial
/// adaptive engine, so the two modes must never share a journal
/// entry.
///
/// The worker count is deliberately **not** part of the key: the
/// windowed report is bit-identical for every worker count (pinned by
/// `tests/window_parallel.rs`), so a journal written under
/// `--window-threads 4` replays correctly under `--window-threads 2`.
pub fn windowed_cell_key(spec: &WorkloadSpec, instructions: u64, cfg: &SimConfig) -> String {
    format!("{}-w", cell_key(spec, instructions, cfg))
}

/// [`cell_key`] for one rung of the DSE fidelity ladder: the serial
/// key at the **full** per-cell budget plus an `-r<rung>` suffix.
///
/// The full budget (not the rung's truncated budget) is deliberate:
/// a rung simulates a *prefix view* of the one frozen full-budget
/// trace (`acic_trace::Truncated`), which for multi-tenant specs is
/// **not** the same stream a fresh generation at the smaller budget
/// would produce (`split_budget` depends on the total). Keying rungs
/// by `cell_key(spec, rung_budget, cfg)` would let a ladder cell
/// masquerade as — or replay — a genuine small-budget freeze; the
/// rung suffix on the full-budget key makes the fidelity explicit
/// and collision-free across rungs, the serial grid, and the `-w`
/// windowed mode.
pub fn dse_cell_key(
    spec: &WorkloadSpec,
    full_instructions: u64,
    cfg: &SimConfig,
    rung: u32,
) -> String {
    format!("{}-r{rung}", cell_key(spec, full_instructions, cfg))
}

fn rung_json(rung: Option<u32>) -> String {
    match rung {
        None => "null".into(),
        Some(r) => format!("\"{r}\""),
    }
}

fn line_crc(key: &str, rung: &str, report_json: &str) -> u64 {
    let h = crate::fault::fnv1a(crate::fault::FNV_OFFSET, key.as_bytes());
    let h = crate::fault::fnv1a(h, &[0]);
    let h = crate::fault::fnv1a(h, rung.as_bytes());
    let h = crate::fault::fnv1a(h, &[0]);
    crate::fault::fnv1a(h, report_json.as_bytes())
}

fn encode_entry(key: &str, rung: Option<u32>, report: &SimReport) -> String {
    let r = report_to_json(report);
    let g = rung_json(rung);
    format!(
        "{{\"key\":{},\"rung\":{g},\"crc\":\"{:016x}\",\"report\":{r}}}",
        esc(key),
        line_crc(key, &g, &r)
    )
}

fn decode_entry(line: &str) -> Result<(String, Entry), String> {
    // The CRC is computed over the serialized report substring, so
    // re-extract it verbatim rather than re-encoding the parse.
    let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let key = doc
        .get("key")
        .and_then(Json::str_val)
        .ok_or("missing key")?;
    let rung = match doc.get("rung") {
        None => return Err("missing rung".into()),
        Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.parse::<u32>().map_err(|e| format!("bad rung: {e}"))?),
        Some(_) => return Err("rung: expected null or string".into()),
    };
    let crc = doc
        .get("crc")
        .and_then(Json::str_val)
        .ok_or("missing crc")?;
    let crc = u64::from_str_radix(crc, 16).map_err(|e| format!("bad crc: {e}"))?;
    let marker = "\"report\":";
    let at = line.find(marker).ok_or("missing report")?;
    let report_json = line[at + marker.len()..]
        .trim_end()
        .strip_suffix('}')
        .ok_or("unterminated entry")?;
    if line_crc(key, &rung_json(rung), report_json) != crc {
        return Err("checksum mismatch".into());
    }
    let report = report_from_json(doc.get("report").ok_or("missing report")?)?;
    Ok((key.to_string(), Entry { rung, report }))
}

// ---- SimReport <-> JSON (bit-exact, see the module docs) ----

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn ju(v: u64) -> String {
    format!("\"{v}\"")
}

fn jf(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".into()
    } else if v == f64::INFINITY {
        "\"inf\"".into()
    } else if v == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else {
        format!("{v:?}")
    }
}

fn jcache(c: &CacheStats) -> String {
    format!(
        "[{},{},{},{},{},{},{},{},{}]",
        ju(c.demand_accesses),
        ju(c.demand_misses),
        ju(c.prefetch_accesses),
        ju(c.prefetch_misses),
        ju(c.demand_fills),
        ju(c.prefetch_fills),
        ju(c.evictions),
        ju(c.bypasses),
        ju(c.flushed_lines),
    )
}

fn jratio(r: &Ratio) -> String {
    format!("[{},{}]", ju(r.numerator()), ju(r.denominator()))
}

/// Serializes a report for the journal (compact single line).
pub fn report_to_json(r: &SimReport) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    out.push_str(&format!("\"app\":{},", esc(&r.app)));
    out.push_str(&format!("\"org\":{},", esc(&r.org)));
    out.push_str(&format!("\"ti\":{},", ju(r.total_instructions)));
    out.push_str(&format!("\"tc\":{},", ju(r.total_cycles)));
    out.push_str(&format!("\"mi\":{},", ju(r.measured_instructions)));
    out.push_str(&format!("\"mc\":{},", ju(r.measured_cycles)));
    out.push_str(&format!("\"l1i\":{},", jcache(&r.l1i)));
    out.push_str(&format!("\"l1d\":{},", jcache(&r.l1d)));
    out.push_str(&format!("\"l2\":{},", jcache(&r.l2)));
    out.push_str(&format!("\"l3\":{},", jcache(&r.l3)));
    out.push_str(&format!("\"dram\":{},", ju(r.dram_accesses)));
    out.push_str(&format!(
        "\"br\":[{},{},{},{},{},{}],",
        ju(r.branch.mispredicts),
        ju(r.branch.tage.predictions),
        ju(r.branch.tage.mispredictions),
        ju(r.branch.btb.lookups),
        ju(r.branch.btb.misses),
        ju(r.branch.btb.wrong_target),
    ));
    out.push_str(&format!(
        "\"pf\":[{},{}],",
        ju(r.prefetch.issued),
        ju(r.prefetch.filtered)
    ));
    out.push_str(&format!("\"cs\":{},", ju(r.context_switches)));
    match &r.acic {
        None => out.push_str("\"acic\":null,"),
        Some(a) => {
            let acc: Vec<String> = a.accuracy.iter().map(jratio).collect();
            let deltas: Vec<String> = a.insert_delta.iter().map(|&d| ju(d)).collect();
            out.push_str(&format!(
                "\"acic\":{{\"d\":{},\"a\":{},\"b\":{},\"f\":{},\"acc\":[{}],\"oa\":{},\"id\":[{}]}},",
                ju(a.decisions),
                ju(a.admitted),
                ju(a.bypassed),
                ju(a.free_admissions),
                acc.join(","),
                jratio(&a.oracle_admits),
                deltas.join(","),
            ));
        }
    }
    match &r.cshr {
        None => out.push_str("\"cshr\":null,"),
        Some(c) => out.push_str(&format!(
            "\"cshr\":[{},{},{},{}],",
            ju(c.inserted),
            ju(c.victim_first),
            ju(c.contender_first),
            ju(c.evicted_unresolved),
        )),
    }
    match &r.cshr_lifetimes {
        None => out.push_str("\"life\":null,"),
        Some(l) => {
            let vals: Vec<String> = l.iter().map(|&v| jf(v)).collect();
            out.push_str(&format!("\"life\":[{}],", vals.join(",")));
        }
    }
    match &r.sampled {
        None => out.push_str("\"sampled\":null,"),
        Some(s) => out.push_str(&format!(
            "\"sampled\":[{},{},{},{},{},{},{},{},{},{}],",
            ju(s.windows),
            ju(s.detailed_instructions),
            ju(s.warmup_instructions),
            ju(s.fastforward_instructions),
            jf(s.ipc_mean),
            jf(s.ipc_ci95),
            jf(s.mpki_mean),
            jf(s.mpki_ci95),
            jf(s.est_total_cycles),
            jf(s.est_total_misses),
        )),
    }
    let wi: Vec<String> = r.window_ipc.iter().map(|&v| jf(v)).collect();
    let wm: Vec<String> = r.window_mpki.iter().map(|&v| jf(v)).collect();
    out.push_str(&format!("\"wins\":[[{}],[{}]]", wi.join(","), wm.join(",")));
    out.push('}');
    out
}

fn s_str(j: Option<&Json>, what: &str) -> Result<String, String> {
    j.and_then(Json::str_val)
        .map(String::from)
        .ok_or_else(|| format!("{what}: expected string"))
}

fn s_u64(j: Option<&Json>, what: &str) -> Result<u64, String> {
    j.and_then(Json::str_val)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{what}: expected u64 string"))
}

fn s_f64(j: Option<&Json>, what: &str) -> Result<f64, String> {
    match j {
        Some(Json::Num(n)) => Ok(*n),
        Some(Json::Str(s)) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => Err(format!("{what}: bad f64 string {s:?}")),
        },
        _ => Err(format!("{what}: expected f64")),
    }
}

fn s_arr<'a>(j: Option<&'a Json>, len: usize, what: &str) -> Result<&'a [Json], String> {
    match j {
        Some(Json::Arr(items)) if items.len() == len => Ok(items),
        Some(Json::Arr(items)) => Err(format!("{what}: expected {len} items, got {}", items.len())),
        _ => Err(format!("{what}: expected array")),
    }
}

fn s_cache(j: Option<&Json>, what: &str) -> Result<CacheStats, String> {
    let a = s_arr(j, 9, what)?;
    let g = |i: usize| s_u64(Some(&a[i]), what);
    Ok(CacheStats {
        demand_accesses: g(0)?,
        demand_misses: g(1)?,
        prefetch_accesses: g(2)?,
        prefetch_misses: g(3)?,
        demand_fills: g(4)?,
        prefetch_fills: g(5)?,
        evictions: g(6)?,
        bypasses: g(7)?,
        flushed_lines: g(8)?,
    })
}

fn s_ratio(j: Option<&Json>, what: &str) -> Result<Ratio, String> {
    let a = s_arr(j, 2, what)?;
    Ok(Ratio::from_parts(
        s_u64(Some(&a[0]), what)?,
        s_u64(Some(&a[1]), what)?,
    ))
}

/// Decodes a report serialized by [`report_to_json`].
///
/// # Errors
///
/// Describes the first missing or ill-typed field.
pub fn report_from_json(doc: &Json) -> Result<SimReport, String> {
    let br = s_arr(doc.get("br"), 6, "br")?;
    let pf = s_arr(doc.get("pf"), 2, "pf")?;
    let acic = match doc.get("acic") {
        None => return Err("missing acic".into()),
        Some(Json::Null) => None,
        Some(a) => {
            let acc_items = s_arr(
                a.get("acc"),
                acic_core::acic::ACCURACY_BOUNDS.len(),
                "acic.acc",
            )?;
            let mut accuracy = [Ratio::default(); acic_core::acic::ACCURACY_BOUNDS.len()];
            for (slot, item) in accuracy.iter_mut().zip(acc_items) {
                *slot = s_ratio(Some(item), "acic.acc")?;
            }
            let delta_items = s_arr(a.get("id"), 11, "acic.id")?;
            let mut insert_delta = [0u64; 11];
            for (slot, item) in insert_delta.iter_mut().zip(delta_items) {
                *slot = s_u64(Some(item), "acic.id")?;
            }
            Some(AcicStats {
                decisions: s_u64(a.get("d"), "acic.d")?,
                admitted: s_u64(a.get("a"), "acic.a")?,
                bypassed: s_u64(a.get("b"), "acic.b")?,
                free_admissions: s_u64(a.get("f"), "acic.f")?,
                accuracy,
                oracle_admits: s_ratio(a.get("oa"), "acic.oa")?,
                insert_delta,
            })
        }
    };
    let cshr = match doc.get("cshr") {
        None => return Err("missing cshr".into()),
        Some(Json::Null) => None,
        Some(c) => {
            let a = s_arr(Some(c), 4, "cshr")?;
            Some(CshrStats {
                inserted: s_u64(Some(&a[0]), "cshr")?,
                victim_first: s_u64(Some(&a[1]), "cshr")?,
                contender_first: s_u64(Some(&a[2]), "cshr")?,
                evicted_unresolved: s_u64(Some(&a[3]), "cshr")?,
            })
        }
    };
    let cshr_lifetimes = match doc.get("life") {
        None => return Err("missing life".into()),
        Some(Json::Null) => None,
        Some(l) => {
            let a = s_arr(Some(l), acic_core::cshr::LIFETIME_BUCKETS, "life")?;
            let mut out = [0.0; acic_core::cshr::LIFETIME_BUCKETS];
            for (slot, item) in out.iter_mut().zip(a) {
                *slot = s_f64(Some(item), "life")?;
            }
            Some(out)
        }
    };
    let sampled = match doc.get("sampled") {
        None => return Err("missing sampled".into()),
        Some(Json::Null) => None,
        Some(s) => {
            let a = s_arr(Some(s), 10, "sampled")?;
            Some(SampledStats {
                windows: s_u64(Some(&a[0]), "sampled")?,
                detailed_instructions: s_u64(Some(&a[1]), "sampled")?,
                warmup_instructions: s_u64(Some(&a[2]), "sampled")?,
                fastforward_instructions: s_u64(Some(&a[3]), "sampled")?,
                ipc_mean: s_f64(Some(&a[4]), "sampled")?,
                ipc_ci95: s_f64(Some(&a[5]), "sampled")?,
                mpki_mean: s_f64(Some(&a[6]), "sampled")?,
                mpki_ci95: s_f64(Some(&a[7]), "sampled")?,
                est_total_cycles: s_f64(Some(&a[8]), "sampled")?,
                est_total_misses: s_f64(Some(&a[9]), "sampled")?,
            })
        }
    };
    let wins = match doc.get("wins") {
        None => return Err("missing wins".into()),
        Some(Json::Arr(a)) if a.len() == 2 => {
            let mut out: Vec<Vec<f64>> = Vec::with_capacity(2);
            for part in a {
                match part {
                    Json::Arr(vals) => out.push(
                        vals.iter()
                            .map(|v| s_f64(Some(v), "wins"))
                            .collect::<Result<Vec<f64>, _>>()?,
                    ),
                    _ => return Err("wins: expected two float arrays".into()),
                }
            }
            out
        }
        Some(_) => return Err("wins: expected two float arrays".into()),
    };
    let mut wins = wins.into_iter();
    Ok(SimReport {
        app: s_str(doc.get("app"), "app")?,
        org: s_str(doc.get("org"), "org")?,
        total_instructions: s_u64(doc.get("ti"), "ti")?,
        total_cycles: s_u64(doc.get("tc"), "tc")?,
        measured_instructions: s_u64(doc.get("mi"), "mi")?,
        measured_cycles: s_u64(doc.get("mc"), "mc")?,
        l1i: s_cache(doc.get("l1i"), "l1i")?,
        l1d: s_cache(doc.get("l1d"), "l1d")?,
        l2: s_cache(doc.get("l2"), "l2")?,
        l3: s_cache(doc.get("l3"), "l3")?,
        dram_accesses: s_u64(doc.get("dram"), "dram")?,
        branch: BranchStats {
            mispredicts: s_u64(Some(&br[0]), "br")?,
            tage: TageStats {
                predictions: s_u64(Some(&br[1]), "br")?,
                mispredictions: s_u64(Some(&br[2]), "br")?,
            },
            btb: BtbStats {
                lookups: s_u64(Some(&br[3]), "br")?,
                misses: s_u64(Some(&br[4]), "br")?,
                wrong_target: s_u64(Some(&br[5]), "br")?,
            },
        },
        prefetch: PrefetchStats {
            issued: s_u64(Some(&pf[0]), "pf")?,
            filtered: s_u64(Some(&pf[1]), "pf")?,
        },
        context_switches: s_u64(doc.get("cs"), "cs")?,
        acic,
        cshr,
        cshr_lifetimes,
        sampled,
        window_ipc: wins.next().expect("wins has two arrays"),
        window_mpki: wins.next().expect("wins has two arrays"),
    })
}

/// The CI kill-and-resume check (`experiments --results-smoke`): runs
/// a small grid against a fresh store, tears the journal mid-file (a
/// kill while rewriting would at worst leave the *previous* journal —
/// this is strictly harsher), reopens, and reruns. The resumed grid
/// must be bit-identical to an uninterrupted reference run, the torn
/// journal must cost only recomputation, and a third run must replay
/// every cell without simulating anything.
///
/// # Errors
///
/// Describes the first violated invariant.
pub fn results_smoke() -> Result<String, String> {
    use crate::runner::Runner;
    use acic_sim::IcacheOrg;
    use acic_workloads::AppProfile;

    let dir = std::env::temp_dir().join(format!("acic-results-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let instructions = 20_000;
    let configs = vec![
        SimConfig::default(),
        SimConfig::default().with_org(IcacheOrg::acic_default()),
    ];
    let specs = vec![
        WorkloadSpec::Single(AppProfile::web_search()),
        WorkloadSpec::Single(AppProfile::tpc_c()),
    ];
    let cells = (configs.len() * specs.len()) as u64;
    let mut runner = Runner::new();
    runner.instructions = instructions;
    runner.store = None;
    let reference = runner
        .try_run_grid(&configs, &specs)
        .map_err(|e| e.to_string())?;

    runner.store = Some(Arc::new(
        ResultStore::open(&dir).map_err(|e| e.to_string())?,
    ));
    let first = runner
        .try_run_grid(&configs, &specs)
        .map_err(|e| e.to_string())?;
    if first.computed != cells {
        return Err(format!(
            "fresh store: expected {cells} computed cells, got {}",
            first.computed
        ));
    }

    // Tear the journal at 60% — mid-line, after several entries.
    let journal = dir.join(JOURNAL_NAME);
    let bytes = std::fs::read(&journal).map_err(|e| e.to_string())?;
    std::fs::write(&journal, &bytes[..bytes.len() * 3 / 5]).map_err(|e| e.to_string())?;

    runner.store = Some(Arc::new(
        ResultStore::open(&dir).map_err(|e| e.to_string())?,
    ));
    let resumed = runner
        .try_run_grid(&configs, &specs)
        .map_err(|e| e.to_string())?;
    if resumed.computed == 0 || resumed.computed == cells {
        return Err(format!(
            "torn journal: expected a partial recompute, got {} of {cells}",
            resumed.computed
        ));
    }
    if format!("{:?}", resumed.grid) != format!("{:?}", reference.grid) {
        return Err("resumed grid diverged from the uninterrupted run".into());
    }

    runner.store = Some(Arc::new(
        ResultStore::open(&dir).map_err(|e| e.to_string())?,
    ));
    let third = runner
        .try_run_grid(&configs, &specs)
        .map_err(|e| e.to_string())?;
    if third.computed != 0 || third.replayed != cells {
        return Err(format!(
            "healed store: expected {cells} replayed / 0 computed, got {} / {}",
            third.replayed, third.computed
        ));
    }
    if format!("{:?}", third.grid) != format!("{:?}", reference.grid) {
        return Err("replayed grid diverged from the uninterrupted run".into());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "results-smoke: {cells} cells; torn journal kept {} cells, resume recomputed {}, \
         final replay bit-identical\n",
        cells - resumed.computed,
        resumed.computed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_sim::{IcacheOrg, Simulator};
    use acic_workloads::AppProfile;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("acic-results-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_report(org: IcacheOrg) -> SimReport {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let cfg = SimConfig {
            attach_oracle: true,
            ..SimConfig::default()
        }
        .with_org(org);
        Simulator::run(&cfg, &spec.generator(4_000))
    }

    #[test]
    fn report_json_round_trip_is_bit_exact() {
        // An ACIC run exercises every optional block except sampled.
        for report in [
            sample_report(IcacheOrg::acic_default()),
            sample_report(IcacheOrg::Lru),
        ] {
            let json = report_to_json(&report);
            let back = report_from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(format!("{report:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn report_json_handles_extreme_values() {
        let report = SimReport {
            app: "weird \"name\"\n".into(),
            org: "x\\y".into(),
            total_instructions: u64::MAX,
            total_cycles: (1 << 53) + 1, // above f64's exact-integer range
            sampled: Some(SampledStats {
                windows: 3,
                ipc_mean: f64::NAN,
                ipc_ci95: f64::INFINITY,
                mpki_mean: f64::NEG_INFINITY,
                mpki_ci95: 0.1 + 0.2, // not exactly 0.3
                ..SampledStats::default()
            }),
            cshr_lifetimes: Some([0.125; acic_core::cshr::LIFETIME_BUCKETS]),
            ..SimReport::default()
        };
        let json = report_to_json(&report);
        let back = report_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(format!("{report:?}"), format!("{back:?}"));
        assert_eq!(back.total_cycles, (1 << 53) + 1, "u64 exactness above 2^53");
    }

    #[test]
    fn store_round_trips_entries_across_reopen() {
        let dir = tdir("reopen");
        let report = sample_report(IcacheOrg::acic_default());
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.put("cell-a", &report).unwrap();
        store.put("cell-b", &report).unwrap();
        drop(store);
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        let back = store.get("cell-a").expect("persisted");
        assert_eq!(format!("{back:?}"), format!("{report:?}"));
        assert!(store.get("cell-missing").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_dropped_not_decoded() {
        let dir = tdir("corrupt");
        let report = sample_report(IcacheOrg::Lru);
        let store = ResultStore::open(&dir).unwrap();
        store.put("good", &report).unwrap();
        store.put("flipped", &report).unwrap();
        drop(store);
        // Flip one digit inside the *flipped* entry's report payload:
        // its CRC must now reject the line.
        let journal = dir.join(JOURNAL_NAME);
        let text = std::fs::read_to_string(&journal).unwrap();
        let target = text
            .lines()
            .find(|l| l.contains("\"flipped\""))
            .unwrap()
            .to_string();
        let tampered = {
            let at = target.find("\"report\":").unwrap() + 20;
            let mut bytes = target.clone().into_bytes();
            let digit = (at..bytes.len())
                .find(|&i| bytes[i].is_ascii_digit())
                .unwrap();
            bytes[digit] = if bytes[digit] == b'9' { b'8' } else { b'9' };
            String::from_utf8(bytes).unwrap()
        };
        std::fs::write(&journal, text.replace(&target, &tampered)).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.get("flipped").is_none(), "tampered line dropped");
        assert!(store.get("good").is_some(), "healthy line survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_is_a_typed_error() {
        let dir = tdir("schema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_NAME), "{\"schema\":\"acic-results/v0\"}\n").unwrap();
        let err = ResultStore::open(&dir).expect_err("schema mismatch");
        assert!(matches!(err, ResultStoreError::Schema { .. }));
        assert!(err.to_string().contains("acic-results/v0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_journal_is_rejected_loudly_not_misread() {
        // A well-formed v1 journal: schema header plus an entry in
        // the old three-field shape (no rung, two-part CRC). The only
        // acceptable outcome is the typed Schema error — decoding the
        // line under v2 rules would at best drop it silently and at
        // worst misattribute a fidelity.
        let dir = tdir("v1compat");
        std::fs::create_dir_all(&dir).unwrap();
        let report = sample_report(IcacheOrg::Lru);
        let r = report_to_json(&report);
        let v1_crc = {
            let h = crate::fault::fnv1a(crate::fault::FNV_OFFSET, b"cell-a");
            let h = crate::fault::fnv1a(h, &[0]);
            crate::fault::fnv1a(h, r.as_bytes())
        };
        std::fs::write(
            dir.join(JOURNAL_NAME),
            format!(
                "{{\"schema\":\"acic-results/v1\"}}\n\
                 {{\"key\":\"cell-a\",\"crc\":\"{v1_crc:016x}\",\"report\":{r}}}\n"
            ),
        )
        .unwrap();
        let err = ResultStore::open(&dir).expect_err("v1 journal must not open as v2");
        assert!(matches!(err, ResultStoreError::Schema { .. }));
        assert!(err.to_string().contains("acic-results/v1"));
        assert!(err.to_string().contains("refusing"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rung_round_trips_and_is_crc_covered() {
        let dir = tdir("rung");
        let report = sample_report(IcacheOrg::Lru);
        let store = ResultStore::open(&dir).unwrap();
        store.put("plain", &report).unwrap();
        store.put_rung("laddered", 2, &report).unwrap();
        drop(store);
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.get_with_rung("plain").unwrap().0, None);
        assert_eq!(store.get_with_rung("laddered").unwrap().0, Some(2));
        drop(store);
        // Tampering with the rung alone must fail the CRC: fidelity
        // provenance is integrity-protected, not advisory.
        let journal = dir.join(JOURNAL_NAME);
        let text = std::fs::read_to_string(&journal).unwrap();
        let tampered = text.replace("\"rung\":\"2\"", "\"rung\":\"1\"");
        assert_ne!(text, tampered, "fixture must contain the rung field");
        std::fs::write(&journal, tampered).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.get("laddered").is_none(), "tampered rung dropped");
        assert!(store.get("plain").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dse_cell_keys_separate_rungs_modes_and_the_base_key() {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let cfg = SimConfig::default();
        let base = cell_key(&spec, 20_000, &cfg);
        let r0 = dse_cell_key(&spec, 20_000, &cfg, 0);
        let r1 = dse_cell_key(&spec, 20_000, &cfg, 1);
        assert_eq!(r0, format!("{base}-r0"));
        assert_ne!(r0, r1);
        assert_ne!(r0, base);
        assert_ne!(r0, windowed_cell_key(&spec, 20_000, &cfg));
        // Rung keys embed the FULL budget: a rung never collides with
        // a genuine small-budget cell.
        assert_ne!(r0, dse_cell_key(&spec, 1_250, &cfg, 0));
    }

    #[test]
    fn cell_keys_separate_configs_and_budgets() {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let lru = SimConfig::default();
        let acic = SimConfig::default().with_org(IcacheOrg::acic_default());
        let a = cell_key(&spec, 1_000, &lru);
        let b = cell_key(&spec, 1_000, &acic);
        let c = cell_key(&spec, 2_000, &lru);
        assert_ne!(a, b, "config hash separates organizations");
        assert_ne!(a, c, "store key separates budgets");
        assert_eq!(a, cell_key(&spec, 1_000, &SimConfig::default()));
    }

    #[test]
    fn windowed_cell_keys_separate_the_mode_but_not_the_worker_count() {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let cfg = SimConfig::default();
        let serial = cell_key(&spec, 1_000, &cfg);
        let windowed = windowed_cell_key(&spec, 1_000, &cfg);
        assert_ne!(serial, windowed, "modes never share a journal entry");
        assert_eq!(windowed, format!("{serial}-w"));
        // No worker-count parameter exists: the same key serves every
        // `--window-threads` value, because the windowed report is
        // bit-identical across worker counts.
    }
}
